"""Cross-view utilities: the commuting square of Figure 10.

The paper's central correctness statement relates the two views::

        Ic ────⟦·⟧────▶ ⟦Ic⟧
        │                 │
      c-chase           chase          (Figure 10)
        │                 │
        ▼                 ▼
        Jc ────⟦·⟧────▶ ⟦Jc⟧  ∼  Ja

Corollary 20: the semantics of the concrete chase result is
homomorphically equivalent to the abstract chase result.  This module
checks that square on concrete inputs, and provides concrete-level
solution checking by delegating to the abstract semantics.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.abstract_view.abstract_chase import AbstractChaseResult, abstract_chase
from repro.abstract_view.abstract_instance import AbstractInstance
from repro.abstract_view.hom import (
    homomorphically_equivalent,
)
from repro.abstract_view.semantics import semantics
from repro.abstract_view.solution import is_solution
from repro.concrete.cchase import CChaseResult, c_chase
from repro.concrete.concrete_instance import ConcreteInstance
from repro.dependencies.mapping import DataExchangeSetting

__all__ = [
    "concrete_is_solution",
    "CorrespondenceReport",
    "verify_correspondence",
]


def concrete_is_solution(
    source: ConcreteInstance,
    target: ConcreteInstance,
    setting: DataExchangeSetting,
) -> bool:
    """``(Ic, Jc) |= Σ+st ∪ Σ+eg`` decided through the semantics.

    A concrete pair satisfies the lifted dependencies exactly when the
    abstract pair ``(⟦Ic⟧, ⟦Jc⟧)`` satisfies the non-temporal ones on
    every snapshot — which is what the abstract view decides exactly.
    """
    return is_solution(semantics(source), semantics(target), setting)


@dataclass
class CorrespondenceReport:
    """Everything produced while checking the Figure 10 square once."""

    concrete_result: CChaseResult
    abstract_result: AbstractChaseResult
    both_failed: bool
    equivalent: bool
    concrete_semantics: AbstractInstance | None = None

    @property
    def holds(self) -> bool:
        """The square commutes: both chases fail together, or both succeed
        with homomorphically equivalent results."""
        return self.both_failed or self.equivalent


def verify_correspondence(
    source: ConcreteInstance,
    setting: DataExchangeSetting,
    normalization: str = "conjunction",
    engine: str = "delta",
    shards: int = 1,
    executor: str = "serial",
    incremental: bool = True,
    workers: int | None = None,
    cchase_incremental=None,
) -> CorrespondenceReport:
    """Run both chases on one source and check Corollary 20.

    * both fail → the square commutes (no solution exists, Theorem 19(2));
    * both succeed → check ``⟦Jc⟧ ∼ chase(⟦Ic⟧)``;
    * one fails and the other does not → the square is broken (this would
      falsify the implementation, and the report says so).

    *engine* selects the chase engine mode for both procedures
    (``"delta"`` semi-naive rounds or ``"rescan"``);
    *shards*/*executor*/*incremental* configure the abstract chase's
    region scheduler.  The correspondence is renaming-invariant, so
    sharded null namespaces do not affect the verdict, and the
    incremental schedule is byte-identical anyway.

    *cchase_incremental* is the c-chase's fragment-level normalization
    replay (see :func:`repro.concrete.cchase.c_chase`): a previous run's
    replay state — e.g. ``report.concrete_result.replay_state`` from an
    earlier verification of an overlapping source — or ``True`` to start
    recording one; byte-identical either way.
    """
    concrete_result = c_chase(
        source,
        setting,
        normalization=normalization,  # type: ignore[arg-type]
        engine=engine,  # type: ignore[arg-type]
        incremental=cchase_incremental,
    )
    abstract_result = abstract_chase(
        semantics(source),
        setting,
        engine=engine,  # type: ignore[arg-type]
        shards=shards,
        executor=executor,
        incremental=incremental,
        workers=workers,
    )
    if abstract_result.error is not None:
        # A shard *raised* (as opposed to the chase failing): that is not
        # a correspondence verdict — surface it instead of misreporting
        # a violation or a joint failure.
        raise abstract_result.error

    if concrete_result.failed or abstract_result.failed:
        both = concrete_result.failed and abstract_result.failed
        return CorrespondenceReport(
            concrete_result=concrete_result,
            abstract_result=abstract_result,
            both_failed=both,
            equivalent=False,
        )

    concrete_semantics = semantics(concrete_result.target)
    equivalent = homomorphically_equivalent(
        concrete_semantics, abstract_result.target
    )
    return CorrespondenceReport(
        concrete_result=concrete_result,
        abstract_result=abstract_result,
        both_failed=False,
        equivalent=equivalent,
        concrete_semantics=concrete_semantics,
    )
