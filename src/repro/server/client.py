"""A thin client for the chase service, on :mod:`http.client`.

One persistent HTTP/1.1 connection (the server speaks keep-alive), JSON
both ways, transparent reconnects where that is safe (see
:meth:`ServerClient.request`).  Every POST body travels in the
versioned request envelope (``{"v": 1, ...}``); deltas use the
canonical :class:`~repro.deltas.SourceDelta` codec.  Any non-2xx
response raises :class:`ClientError` carrying the server's error
message and status — the calling code never parses envelopes.

Used by ``python -m repro client``, the integration tests and the
server benchmark; scripting against a daemon looks like::

    client = ServerClient(port=8765)
    client.create("hr", setting_json, source_json)
    diff = client.delta("hr", add=[fact_json, ...])
    answers = client.query("hr", "answer(N) :- employee(N, D)")
"""

from __future__ import annotations

import http.client
import json
from typing import Any

from repro.server.protocol import PROTOCOL_VERSION

__all__ = ["ClientError", "ServerClient"]


class ClientError(Exception):
    """A non-2xx response from the server."""

    def __init__(self, message: str, status: int):
        super().__init__(message)
        self.status = status


class ServerClient:
    """A persistent-connection JSON client for one repro daemon."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8765, timeout: float = 300.0):
        self.host = host
        self.port = port
        self.timeout = timeout
        self._connection: http.client.HTTPConnection | None = None

    def close(self) -> None:
        if self._connection is not None:
            self._connection.close()
            self._connection = None

    def __enter__(self) -> "ServerClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- transport ---------------------------------------------------------

    def _request_once(self, method: str, path: str, payload: dict | None) -> dict:
        if self._connection is None:
            self._connection = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        body = None
        headers = {}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        self._connection.request(method, path, body=body, headers=headers)
        response = self._connection.getresponse()
        raw = response.read()
        try:
            decoded = json.loads(raw) if raw else {}
        except json.JSONDecodeError as exc:
            raise ClientError(
                f"server returned non-JSON response: {raw[:200]!r}", response.status
            ) from exc
        if response.status >= 400:
            message = decoded.get("error", raw.decode("utf-8", "replace"))
            raise ClientError(message, response.status)
        return decoded

    def request(self, method: str, path: str, payload: dict | None = None) -> dict:
        """One round-trip, with transparent reconnects where safe.

        A failure on a *reused* keep-alive socket gets one reconnect
        for any method — the daemon idles connections out, and a
        request on a dead socket was never processed.  A failure on a
        *fresh* connection (including the reconnect attempt itself) is
        retried only for idempotent GETs: that is the daemon-restart-
        mid-action window, and a non-idempotent request may have been
        applied before the socket died, so replaying it could double-
        apply a delta.
        """
        attempts = 0
        while True:
            reused = self._connection is not None
            try:
                return self._request_once(method, path, payload)
            except (ConnectionError, http.client.HTTPException, OSError):
                self.close()
                attempts += 1
                if attempts > 2 or not (reused or method == "GET"):
                    raise

    def post(self, path: str, fields: dict) -> dict:
        """POST *fields* wrapped in the versioned request envelope."""
        return self.request("POST", path, {"v": PROTOCOL_VERSION, **fields})

    # -- endpoints ---------------------------------------------------------

    def healthz(self) -> dict:
        return self.request("GET", "/healthz")

    def stats(self) -> dict:
        return self.request("GET", "/stats")

    def sessions(self) -> list[dict]:
        return self.request("GET", "/sessions")["sessions"]

    def create(
        self,
        name: str,
        setting: dict,
        source: dict,
        replace: bool = False,
    ) -> dict:
        return self.post(
            "/sessions",
            {"name": name, "setting": setting, "source": source, "replace": replace},
        )

    def info(self, name: str) -> dict:
        return self.request("GET", f"/sessions/{name}")

    def target(self, name: str) -> dict:
        return self.request("GET", f"/sessions/{name}/target")

    def source(self, name: str) -> dict:
        return self.request("GET", f"/sessions/{name}/source")

    def delta(
        self,
        name: str,
        add: list[dict] | None = None,
        remove: list[dict] | None = None,
    ) -> dict:
        """Apply a source delta (canonical ``SourceDelta`` codec)."""
        return self.post(
            f"/sessions/{name}/delta",
            {"delta": {"add": add or [], "remove": remove or []}},
        )

    def events(
        self,
        name: str,
        events: list,
        mapping: dict | None = None,
    ) -> dict:
        """Ingest an event batch (the first batch must carry *mapping*)."""
        fields: dict = {"events": events}
        if mapping is not None:
            fields["mapping"] = mapping
        return self.post(f"/sessions/{name}/events", fields)

    def query(self, name: str, query: str, engine: str = "indexed") -> dict:
        return self.post(
            f"/sessions/{name}/query", {"query": query, "engine": engine}
        )

    def abstract(
        self,
        name: str,
        shards: int = 1,
        executor: str = "serial",
        incremental: bool = True,
    ) -> dict:
        return self.post(
            f"/sessions/{name}/abstract",
            {"shards": shards, "executor": executor, "incremental": incremental},
        )

    def snapshot(self, name: str) -> dict:
        return self.post(f"/sessions/{name}/snapshot", {})

    def load(self, name: str) -> dict:
        return self.post(f"/sessions/{name}/load", {})

    def evict(self, name: str, snapshot: bool = False) -> dict:
        suffix = "?snapshot=1" if snapshot else ""
        return self.request("DELETE", f"/sessions/{name}{suffix}")


def fact_json(relation: str, data: list[Any], interval: str) -> dict:
    """Convenience for scripting: the wire form of one concrete fact."""
    return {"relation": relation, "data": data, "interval": interval}
