"""The asyncio HTTP/JSON front-end of the chase service.

Stdlib-only by constraint: a hand-rolled HTTP/1.1 server on
:func:`asyncio.start_server` (keep-alive connections, Content-Length
bodies, JSON in both directions).  The event loop only parses and
routes; every handler body runs on the default thread-pool executor, so
a long chase never blocks health checks or other sessions — ordering
*within* a session comes from the session's own lock, not from the
loop.

Error discipline: anything wrong with the *request* is a 4xx —
:class:`~repro.server.protocol.ProtocolError` carries its status,
library :class:`~repro.errors.ReproError`\\ s (parse errors, schema
violations) map to 400, an unknown session to 404, a failing chase to
409.  Only a genuine server-side defect produces a 500.

Every POST body is read through the versioned request envelope
(``{"v": 1, ...}``; bodies without ``"v"`` are the legacy PR 9 dialect
— see :func:`~repro.server.protocol.unwrap_envelope`); unknown
versions are a 400 before any routing happens.

Endpoints (full reference with examples in ``docs/server.md``)::

    GET    /healthz                      liveness + session count
    GET    /stats                        cache/pool/session statistics
    GET    /sessions                     list sessions
    POST   /sessions                     create {name, setting, source[, replace]}
    GET    /sessions/{name}              session info
    DELETE /sessions/{name}[?snapshot=1] evict (optionally snapshot first)
    GET    /sessions/{name}/target       the maintained target instance
    GET    /sessions/{name}/source       the cumulative source instance
    POST   /sessions/{name}/delta        {delta: {add, remove}} → target diff
    POST   /sessions/{name}/events       {events: [...][, mapping]} → ingest + diff
    POST   /sessions/{name}/query        {query[, engine]} → certain answers
    POST   /sessions/{name}/abstract     {shards[, executor]} → sharded abstract chase
    POST   /sessions/{name}/snapshot     persist to the spool directory
    POST   /sessions/{name}/load         rebuild from the spool directory
"""

from __future__ import annotations

import asyncio
import json
import re
import threading
from typing import Any, Callable

from repro.errors import ReproError
from repro.server.protocol import ProtocolError
from repro.server.sessions import SessionManager

__all__ = ["ReproServer", "ServerThread", "serve"]

#: Refuse request bodies beyond this size (64 MiB) with a 413.
MAX_BODY_BYTES = 64 * 1024 * 1024

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    500: "Internal Server Error",
}

_SESSION_PATH = re.compile(
    r"^/sessions/(?P<name>[A-Za-z0-9][A-Za-z0-9._-]{0,63})"
    r"(?P<rest>/(?:target|source|delta|events|query|abstract|snapshot|load))?$"
)


class _Request:
    __slots__ = ("method", "path", "query", "payload")

    def __init__(self, method: str, path: str, query: dict, payload: dict):
        self.method = method
        self.path = path
        self.query = query
        self.payload = payload


def _parse_query_string(raw: str) -> dict[str, str]:
    out: dict[str, str] = {}
    for piece in raw.split("&"):
        if not piece:
            continue
        key, _, value = piece.partition("=")
        out[key] = value
    return out


class ReproServer:
    """The daemon: a :class:`SessionManager` behind an HTTP listener."""

    def __init__(
        self,
        manager: SessionManager | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        workers: int | None = None,
        snapshot_dir=None,
        cache_entries: int = 64,
    ):
        self.manager = manager or SessionManager(
            cache_entries=cache_entries,
            workers=workers,
            snapshot_dir=snapshot_dir,
        )
        self.host = host
        self.port = port
        self._server: asyncio.base_events.Server | None = None
        self._connections: set[asyncio.Task] = set()

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        """Bind the listener; ``self.port`` holds the real port after."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    async def aclose(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        self._connections.clear()
        self.manager.close()

    # -- connection handling ----------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        try:
            while True:
                keep_alive = await self._handle_one(reader, writer)
                if not keep_alive:
                    break
        except (
            asyncio.IncompleteReadError,
            asyncio.CancelledError,
            ConnectionError,
            asyncio.LimitOverrunError,
        ):
            pass
        finally:
            # No wait_closed here: the transport closes on the loop's
            # schedule, and awaiting it would leave a cancelled handler
            # pending at shutdown.
            if task is not None:
                self._connections.discard(task)
            writer.close()

    async def _handle_one(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> bool:
        request_line = await reader.readline()
        if not request_line or not request_line.strip():
            return False
        try:
            method, raw_path, _version = (
                request_line.decode("ascii").strip().split(" ", 2)
            )
        except (UnicodeDecodeError, ValueError):
            await self._respond(writer, 400, {"error": "malformed request line"})
            return False
        headers: dict[str, str] = {}
        while True:
            line = await reader.readline()
            if not line or line in (b"\r\n", b"\n"):
                break
            key, _, value = line.decode("latin-1").partition(":")
            headers[key.strip().lower()] = value.strip()
        keep_alive = headers.get("connection", "keep-alive").lower() != "close"
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            await self._respond(writer, 400, {"error": "bad Content-Length"})
            return False
        if length > MAX_BODY_BYTES:
            await self._respond(
                writer, 413, {"error": f"request body over {MAX_BODY_BYTES} bytes"}
            )
            return False
        body = await reader.readexactly(length) if length else b""
        payload: dict = {}
        if body:
            try:
                payload = json.loads(body)
            except json.JSONDecodeError as exc:
                await self._respond(writer, 400, {"error": f"invalid JSON body: {exc}"})
                return keep_alive
            if not isinstance(payload, dict):
                await self._respond(
                    writer, 400, {"error": "request body must be a JSON object"}
                )
                return keep_alive
        path, _, query_string = raw_path.partition("?")
        request = _Request(
            method.upper(), path, _parse_query_string(query_string), payload
        )
        status, response = await self._dispatch(request)
        await self._respond(writer, status, response)
        return keep_alive

    async def _respond(
        self, writer: asyncio.StreamWriter, status: int, payload: dict
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        reason = _REASONS.get(status, "OK")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            "\r\n"
        ).encode("ascii")
        writer.write(head + body)
        await writer.drain()

    # -- routing -----------------------------------------------------------

    async def _dispatch(self, request: _Request) -> tuple[int, dict]:
        try:
            handler, kwargs = self._route(request)
        except ProtocolError as exc:
            return exc.status, {"error": str(exc)}
        loop = asyncio.get_running_loop()
        try:
            result = await loop.run_in_executor(None, lambda: handler(**kwargs))
            return 200, result if isinstance(result, dict) else {"result": result}
        except ProtocolError as exc:
            return exc.status, {"error": str(exc)}
        except ReproError as exc:
            return 400, {"error": str(exc)}
        except Exception as exc:  # noqa: BLE001 - the 500 boundary
            return 500, {"error": f"internal error: {type(exc).__name__}: {exc}"}

    def _route(self, request: _Request) -> tuple[Callable[..., Any], dict]:
        manager = self.manager
        method, path = request.method, request.path
        if path == "/healthz":
            if method != "GET":
                raise ProtocolError("use GET /healthz", status=405)
            return (
                lambda: {"status": "ok", "sessions": len(manager.names())},
                {},
            )
        if path == "/stats":
            if method != "GET":
                raise ProtocolError("use GET /stats", status=405)
            return manager.stats, {}
        if path == "/sessions":
            if method == "GET":
                return lambda: {"sessions": manager.list_sessions()}, {}
            if method == "POST":
                from repro.server.protocol import unwrap_envelope

                _version, payload = unwrap_envelope(request.payload)
                if "setting" not in payload or "source" not in payload:
                    raise ProtocolError(
                        "session creation needs 'name', 'setting' and 'source'"
                    )
                return manager.create, {
                    "name": payload.get("name", ""),
                    "setting_json": payload["setting"],
                    "source_json": payload["source"],
                    "replace": bool(payload.get("replace", False)),
                }
            raise ProtocolError("use GET or POST on /sessions", status=405)
        match = _SESSION_PATH.match(path)
        if match is None:
            raise ProtocolError(f"no such endpoint: {path}", status=404)
        name = match.group("name")
        rest = (match.group("rest") or "").lstrip("/")
        if not rest:
            if method == "GET":
                return manager.info, {"name": name}
            if method == "DELETE":
                snapshot = request.query.get("snapshot", "") in ("1", "true", "yes")
                return manager.evict, {"name": name, "snapshot": snapshot}
            raise ProtocolError(
                "use GET or DELETE on /sessions/{name}", status=405
            )
        if rest in ("target", "source"):
            if method != "GET":
                raise ProtocolError(f"use GET on /sessions/{{name}}/{rest}", status=405)
            handler = manager.target_json if rest == "target" else manager.source_json
            return handler, {"name": name}
        if method != "POST":
            raise ProtocolError(f"use POST on /sessions/{{name}}/{rest}", status=405)
        from repro.server.protocol import unwrap_envelope

        version, payload = unwrap_envelope(request.payload)
        if rest == "delta":
            from repro.server.protocol import delta_from_payload

            return manager.delta, {
                "name": name,
                "delta": delta_from_payload(version, payload),
                "legacy": version is None,
            }
        if rest == "events":
            from repro.server.protocol import require_list

            mapping = payload.get("mapping")
            if mapping is not None and not isinstance(mapping, dict):
                raise ProtocolError("request field 'mapping' must be an object")
            return manager.events, {
                "name": name,
                "events": require_list(payload, "events"),
                "mapping_json": mapping,
            }
        if rest == "query":
            from repro.server.protocol import require_str

            return manager.query, {
                "name": name,
                "query_text": require_str(payload, "query"),
                "engine": payload.get("engine", "indexed"),
            }
        if rest == "abstract":
            return manager.abstract, {
                "name": name,
                "shards": payload.get("shards", 1),
                "executor": payload.get("executor", "serial"),
                "incremental": bool(payload.get("incremental", True)),
            }
        if rest == "snapshot":
            return manager.snapshot, {"name": name}
        if rest == "load":
            return manager.load, {"name": name}
        raise ProtocolError(f"no such endpoint: {path}", status=404)


# ---------------------------------------------------------------------------
# Entry points: blocking serve() for the CLI, ServerThread for tests/benchmarks
# ---------------------------------------------------------------------------


def serve(
    host: str = "127.0.0.1",
    port: int = 8765,
    workers: int | None = None,
    snapshot_dir=None,
    cache_entries: int = 64,
) -> None:
    """Run the daemon in the foreground until interrupted (the CLI path)."""

    async def _run() -> None:
        server = ReproServer(
            host=host,
            port=port,
            workers=workers,
            snapshot_dir=snapshot_dir,
            cache_entries=cache_entries,
        )
        await server.start()
        print(f"repro server listening on http://{host}:{server.port}", flush=True)
        try:
            await server.serve_forever()
        finally:
            await server.aclose()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        pass


class ServerThread:
    """A daemon running on a background thread, for tests and benchmarks.

    Context-manager usage::

        with ServerThread(snapshot_dir=tmp) as server:
            client = ServerClient(port=server.port)
            ...

    The thread owns its own event loop; ``__exit__`` stops the loop,
    joins the thread, and shuts the manager (worker pool included).
    """

    def __init__(self, **kwargs):
        self._kwargs = kwargs
        self._ready = threading.Event()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._startup_error: BaseException | None = None
        self.server: ReproServer | None = None
        self.port: int = 0

    @property
    def manager(self) -> SessionManager:
        assert self.server is not None
        return self.server.manager

    def __enter__(self) -> "ServerThread":
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("server thread failed to start in 30s")
        if self._startup_error is not None:
            raise RuntimeError("server failed to bind") from self._startup_error
        return self

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        server = ReproServer(**self._kwargs)
        try:
            loop.run_until_complete(server.start())
        except BaseException as exc:  # noqa: BLE001 - reported to the caller
            self._startup_error = exc
            self._ready.set()
            loop.close()
            return
        self.server = server
        self.port = server.port
        self._ready.set()
        try:
            loop.run_forever()
        finally:
            loop.run_until_complete(server.aclose())
            loop.close()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def stop(self) -> None:
        if self._loop is not None and self._loop.is_running():
            self._loop.call_soon_threadsafe(self._loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=30)
            self._thread = None
