"""Chase-as-a-service: the resident repro daemon and its client.

``python -m repro serve`` keeps chased targets and replay ledgers
resident between requests, so a stream of source deltas costs
incremental replay instead of from-scratch chases, repeated queries hit
the session's answer ledger, and identical re-chases are served from a
content-addressed cache.  See ``docs/server.md`` for the operator
guide and the endpoint reference.
"""

from repro.server.app import ReproServer, ServerThread, serve
from repro.server.cache import CachedChase, ChaseCache
from repro.server.client import ClientError, ServerClient
from repro.server.protocol import ProtocolError
from repro.server.sessions import Session, SessionManager, UnknownSessionError

__all__ = [
    "CachedChase",
    "ChaseCache",
    "ClientError",
    "ProtocolError",
    "ReproServer",
    "ServerClient",
    "ServerThread",
    "Session",
    "SessionManager",
    "UnknownSessionError",
    "serve",
]
