"""Request/response vocabulary of the chase service.

The wire format is the JSON codec of :mod:`repro.serialize.jsonio` —
facts, instances and settings travel exactly as they do in the CLI's
files — wrapped in **one versioned request envelope**.  A POST body is
either::

    {"v": 1, ...fields...}

or, for backward compatibility, the bare ``{...fields...}`` object PR 9
clients send (treated as the legacy pre-envelope dialect).  Unknown
versions are a 400; :func:`unwrap_envelope` is the single place that
rule lives.  This module holds the pieces both sides of the wire share:
payload validation that turns malformed requests into
:class:`ProtocolError` (an HTTP 4xx, never a 5xx), fact-list decoding,
source-delta decoding onto :class:`repro.deltas.SourceDelta`, and the
target-diff encoding every delta response uses.

A target **diff** travels as the :class:`~repro.deltas.SourceDelta`
codec (``{"add": [...], "remove": [...]}``, facts in canonical
:meth:`ConcreteFact.sort_key` order) on versioned requests; legacy
requests still receive the pre-envelope ``{"added": [...],
"removed": [...]}`` shape from :func:`diff_to_json`.
"""

from __future__ import annotations

import re
from typing import Any, Iterable, Sequence

from repro.concrete.concrete_fact import ConcreteFact
from repro.concrete.concrete_instance import ConcreteInstance
from repro.deltas import SourceDelta
from repro.errors import DeltaError
from repro.serialize.jsonio import concrete_fact_from_json, concrete_fact_to_json

__all__ = [
    "PROTOCOL_VERSION",
    "ProtocolError",
    "SESSION_NAME_PATTERN",
    "check_session_name",
    "delta_from_payload",
    "diff_to_json",
    "facts_from_json",
    "instance_diff",
    "require_list",
    "require_str",
    "unwrap_envelope",
]

#: The one request-envelope version this server speaks.
PROTOCOL_VERSION = 1

#: Session names are path components (URLs, snapshot file names) and are
#: validated on both sides of the wire.
SESSION_NAME_PATTERN = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")


class ProtocolError(Exception):
    """A malformed or unsatisfiable request; maps to an HTTP 4xx."""

    def __init__(self, message: str, status: int = 400):
        super().__init__(message)
        self.status = status


def check_session_name(name: object) -> str:
    if not isinstance(name, str) or not SESSION_NAME_PATTERN.match(name):
        raise ProtocolError(
            "session name must be 1-64 characters of [A-Za-z0-9._-] "
            "starting with an alphanumeric, got "
            f"{name!r}"
        )
    return name


def require_str(payload: dict, key: str, default: str | None = None) -> str:
    value = payload.get(key, default)
    if not isinstance(value, str) or not value:
        raise ProtocolError(f"request field {key!r} must be a non-empty string")
    return value


def require_list(payload: dict, key: str, default: "list | None" = None) -> list:
    if key not in payload:
        if default is not None:
            return default
        raise ProtocolError(f"request field {key!r} is required")
    value = payload[key]
    if not isinstance(value, list):
        raise ProtocolError(f"request field {key!r} must be a list")
    return value


def unwrap_envelope(payload: dict) -> tuple[int | None, dict]:
    """Split a request body into ``(version, fields)``.

    A body carrying ``"v"`` must carry :data:`PROTOCOL_VERSION`; any
    other value — including non-integers — is a 400, so a future client
    never has a v2 request misread as v1.  A body without ``"v"`` is
    the legacy pre-envelope dialect: version ``None``, fields as-is.
    """
    if "v" not in payload:
        return None, payload
    version = payload["v"]
    if not isinstance(version, int) or isinstance(version, bool):
        raise ProtocolError(f"envelope field 'v' must be an integer, got {version!r}")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            f"unsupported protocol version {version} "
            f"(this server speaks v{PROTOCOL_VERSION})"
        )
    fields = {key: value for key, value in payload.items() if key != "v"}
    return version, fields


def delta_from_payload(version: int | None, payload: dict) -> SourceDelta:
    """Decode a delta request body into a :class:`SourceDelta`.

    Versioned bodies carry the canonical codec under ``"delta"``;
    legacy bodies carry bare top-level ``add``/``remove`` fact lists.
    Either way a malformed delta (bad fact, duplicate, fact on both
    sides) is a 400 via :class:`ProtocolError`.
    """
    try:
        if version is not None:
            if "delta" not in payload:
                raise ProtocolError(
                    "a versioned delta request carries the delta under "
                    "the 'delta' field"
                )
            unknown = set(payload) - {"delta"}
            if unknown:
                raise ProtocolError(
                    f"unknown delta request field(s) {sorted(unknown)!r}"
                )
            return SourceDelta.from_json(payload["delta"])
        return SourceDelta(
            add=tuple(facts_from_json(require_list(payload, "add", []), "add")),
            remove=tuple(
                facts_from_json(require_list(payload, "remove", []), "remove")
            ),
        )
    except DeltaError as exc:
        raise ProtocolError(str(exc)) from exc


def facts_from_json(items: Sequence[Any], what: str) -> list[ConcreteFact]:
    """Decode a fact list, reporting the offending index on failure."""
    facts = []
    for index, item in enumerate(items):
        if not isinstance(item, dict):
            raise ProtocolError(f"{what}[{index}] must be a fact object")
        try:
            facts.append(concrete_fact_from_json(item))
        except Exception as exc:  # parse errors come in several types
            raise ProtocolError(f"{what}[{index}] is not a valid fact: {exc}") from exc
    return facts


def instance_diff(
    old: ConcreteInstance, new: ConcreteInstance
) -> tuple[list[ConcreteFact], list[ConcreteFact]]:
    """``(added, removed)`` between two targets, in canonical order.

    Instance iteration is already content-sorted, so the diff of two
    byte-identical instances is empty and the diff between any two is
    deterministic regardless of how either was built.
    """
    added = [item for item in new if item not in old]
    removed = [item for item in old if item not in new]
    return added, removed


def diff_to_json(
    added: Iterable[ConcreteFact], removed: Iterable[ConcreteFact]
) -> dict[str, Any]:
    return {
        "added": [concrete_fact_to_json(item) for item in added],
        "removed": [concrete_fact_to_json(item) for item in removed],
    }
