"""Request/response vocabulary of the chase service.

The wire format is the JSON codec of :mod:`repro.serialize.jsonio` —
facts, instances and settings travel exactly as they do in the CLI's
files — wrapped in small request envelopes.  This module holds the
pieces both sides of the wire share: payload validation that turns
malformed requests into :class:`ProtocolError` (an HTTP 4xx, never a
5xx), fact-list decoding, and the target-diff encoding every delta
response uses.

A target **diff** is two fact lists, both in the instance's canonical
iteration order (relation-major, then :meth:`ConcreteFact.sort_key`), so
two byte-identical targets always diff to byte-identical JSON::

    {"added": [{"relation": …, "data": […], "interval": "[2, 5)"}, …],
     "removed": […]}
"""

from __future__ import annotations

import re
from typing import Any, Iterable, Sequence

from repro.concrete.concrete_fact import ConcreteFact
from repro.concrete.concrete_instance import ConcreteInstance
from repro.serialize.jsonio import concrete_fact_from_json, concrete_fact_to_json

__all__ = [
    "ProtocolError",
    "SESSION_NAME_PATTERN",
    "check_session_name",
    "diff_to_json",
    "facts_from_json",
    "instance_diff",
    "require_list",
    "require_str",
]

#: Session names are path components (URLs, snapshot file names) and are
#: validated on both sides of the wire.
SESSION_NAME_PATTERN = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")


class ProtocolError(Exception):
    """A malformed or unsatisfiable request; maps to an HTTP 4xx."""

    def __init__(self, message: str, status: int = 400):
        super().__init__(message)
        self.status = status


def check_session_name(name: object) -> str:
    if not isinstance(name, str) or not SESSION_NAME_PATTERN.match(name):
        raise ProtocolError(
            "session name must be 1-64 characters of [A-Za-z0-9._-] "
            "starting with an alphanumeric, got "
            f"{name!r}"
        )
    return name


def require_str(payload: dict, key: str, default: str | None = None) -> str:
    value = payload.get(key, default)
    if not isinstance(value, str) or not value:
        raise ProtocolError(f"request field {key!r} must be a non-empty string")
    return value


def require_list(payload: dict, key: str, default: "list | None" = None) -> list:
    if key not in payload:
        if default is not None:
            return default
        raise ProtocolError(f"request field {key!r} is required")
    value = payload[key]
    if not isinstance(value, list):
        raise ProtocolError(f"request field {key!r} must be a list")
    return value


def facts_from_json(items: Sequence[Any], what: str) -> list[ConcreteFact]:
    """Decode a fact list, reporting the offending index on failure."""
    facts = []
    for index, item in enumerate(items):
        if not isinstance(item, dict):
            raise ProtocolError(f"{what}[{index}] must be a fact object")
        try:
            facts.append(concrete_fact_from_json(item))
        except Exception as exc:  # parse errors come in several types
            raise ProtocolError(f"{what}[{index}] is not a valid fact: {exc}") from exc
    return facts


def instance_diff(
    old: ConcreteInstance, new: ConcreteInstance
) -> tuple[list[ConcreteFact], list[ConcreteFact]]:
    """``(added, removed)`` between two targets, in canonical order.

    Instance iteration is already content-sorted, so the diff of two
    byte-identical instances is empty and the diff between any two is
    deterministic regardless of how either was built.
    """
    added = [item for item in new if item not in old]
    removed = [item for item in old if item not in new]
    return added, removed


def diff_to_json(
    added: Iterable[ConcreteFact], removed: Iterable[ConcreteFact]
) -> dict[str, Any]:
    return {
        "added": [concrete_fact_to_json(item) for item in added],
        "removed": [concrete_fact_to_json(item) for item in removed],
    }
