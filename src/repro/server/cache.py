"""The content-addressed chase cache.

Keyed by :func:`repro.serialize.digest.chase_request_digest` — a
salt-free sha256 of the canonical JSON of (setting, source instance,
chase parameters) — so *identical re-chases are O(1)*: any session, on
any day, submitting inputs whose canonical serialization matches an
earlier chase gets the recorded outcome back without touching a worker.
The identity-only digest discipline (TDX005) is what makes the key
stable across processes.

Entries store the chase outcome as **pickled bytes** (target +
:class:`~repro.concrete.cchase.CChaseReplayState`), not live objects:
a hit materializes an independent object graph per session, so two
sessions served from one entry can never alias each other's replay
ledgers or mutate a shared target.  The canonical JSON rendering of the
target is kept alongside so serving a hit does not even re-serialize.

Failed chases cache too — failure is as content-determined as success,
and a repeated doomed request should consume zero chase work.
"""

from __future__ import annotations

import pickle
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any

from repro.concrete.cchase import CChaseReplayState, CChaseResult
from repro.concrete.concrete_instance import ConcreteInstance
from repro.serialize.jsonio import concrete_instance_to_json

__all__ = ["CachedChase", "ChaseCache"]


@dataclass(frozen=True)
class CachedChase:
    """One recorded chase outcome, content-addressed by *digest*."""

    digest: str
    payload: bytes = field(repr=False)
    target_json: dict = field(repr=False)
    facts: int
    steps: int
    failed: bool
    failure: str | None

    @classmethod
    def from_result(cls, digest: str, result: CChaseResult) -> "CachedChase":
        return cls(
            digest=digest,
            payload=pickle.dumps((result.target, result.replay_state)),
            target_json=concrete_instance_to_json(result.target),
            facts=len(result.target),
            steps=len(result.trace),
            failed=result.failed,
            failure=str(result.failure) if result.failure is not None else None,
        )

    def materialize(self) -> tuple[ConcreteInstance, CChaseReplayState | None]:
        """A fresh (target, replay state) object graph for one consumer."""
        return pickle.loads(self.payload)


class ChaseCache:
    """A bounded LRU of :class:`CachedChase` entries, thread-safe.

    ``max_entries`` bounds memory; eviction is least-recently-*used*
    (a hit refreshes the entry).  All methods are safe to call from the
    server's handler threads.
    """

    def __init__(self, max_entries: int = 64):
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self._entries: "OrderedDict[str, CachedChase]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, digest: str) -> CachedChase | None:
        with self._lock:
            entry = self._entries.get(digest)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(digest)
            self.hits += 1
            return entry

    def put(self, entry: CachedChase) -> None:
        with self._lock:
            self._entries[entry.digest] = entry
            self._entries.move_to_end(entry.digest)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1

    def stats(self) -> dict[str, Any]:
        with self._lock:
            return {
                "entries": len(self._entries),
                "max_entries": self.max_entries,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }
