"""Named sessions: warm chased state, resident between requests.

A **session** is the unit of residency: it owns the cumulative source
instance, the chased target, the c-chase's
:class:`~repro.concrete.cchase.CChaseReplayState` (normalization
group/fragment plans), and a :class:`~repro.query.QueryLog` whose
answer ledger is signed by the maintained target's facts.  Requests
mutate the source by *deltas*; the chase that follows replays every
ledger the delta left intact, and the response is the target *diff* —
never the whole target, never a from-scratch chase when the ledgers
apply.

In front of the chase sits the :class:`~repro.server.cache.ChaseCache`:
every chase this manager runs is keyed by the content digest of its
(setting, cumulative source), so an identical re-chase — a second
session created from the same inputs, or a delta that returns a session
to a previous state — is served from the cache without any chase work.

Locking: the manager's lock guards the session map and the process
pool; each session's lock serializes its own chase/query/snapshot work.
Different sessions therefore proceed concurrently (the HTTP front-end
runs handlers on a thread pool), while one session's requests are
strictly ordered — which is what makes its replay ledgers coherent.

Snapshots are pickles (live fact/ledger objects) written only under the
manager's spool directory and loaded only from there — the server-side
mirror of the CLI's ``--norm-log`` trust boundary: never point the
spool at a directory untrusted writers can reach.
"""

from __future__ import annotations

import pickle
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.concrete.cchase import CChaseReplayState, c_chase
from repro.concrete.concrete_instance import ConcreteInstance
from repro.deltas import SourceDelta
from repro.dependencies.mapping import DataExchangeSetting
from repro.errors import DeltaError, EventError, ReproError
from repro.events import EventLog, EventMapping, FollowCursor
from repro.query import ConjunctiveQuery, QueryLog, UnionQuery
from repro.query.naive_eval import naive_evaluate_concrete
from repro.relational.terms import term_sort_key
from repro.serialize.digest import chase_request_digest, instance_digest
from repro.serialize.jsonio import (
    concrete_instance_to_json,
    setting_from_json,
    setting_to_json,
    term_to_json,
)
from repro.server.cache import CachedChase, ChaseCache
from repro.server.protocol import (
    ProtocolError,
    check_session_name,
    diff_to_json,
    instance_diff,
)

__all__ = ["Session", "SessionManager", "SessionSnapshot", "UnknownSessionError"]

#: Bumped when the pickled snapshot layout changes.
#: 2: the snapshot carries the session's event log (PR 10).
SNAPSHOT_FORMAT = 2


class UnknownSessionError(ProtocolError):
    def __init__(self, name: str):
        super().__init__(f"no session named {name!r}", status=404)


@dataclass
class SessionSnapshot:
    """The pickled on-disk form of one evicted/persisted session."""

    format: int
    name: str
    setting_json: dict
    source: ConcreteInstance
    target: ConcreteInstance
    replay_state: CChaseReplayState | None
    query_log: QueryLog
    stats: dict[str, int]
    event_log: EventLog | None = None


@dataclass
class Session:
    """One resident exchange: setting, cumulative source, chased target."""

    name: str
    setting: DataExchangeSetting
    setting_json: dict
    source: ConcreteInstance
    target: ConcreteInstance
    replay_state: CChaseReplayState | None = None
    query_log: QueryLog = field(default_factory=QueryLog)
    stats: dict[str, int] = field(
        default_factory=lambda: {
            "chases": 0,
            "cache_hits": 0,
            "deltas": 0,
            "events": 0,
            "queries": 0,
            "queries_replayed": 0,
        }
    )
    #: Set by the first /events request; the cursor tracks how much of
    #: the log this session's source already reflects.
    event_log: EventLog | None = None
    event_cursor: FollowCursor | None = field(default=None, repr=False)
    lock: threading.RLock = field(default_factory=threading.RLock, repr=False)

    def info(self) -> dict[str, Any]:
        out = {
            "name": self.name,
            "source_facts": len(self.source),
            "target_facts": len(self.target),
            "source_digest": instance_digest(self.source),
            "stats": dict(self.stats),
        }
        if self.event_log is not None:
            out["event_log"] = {
                "events": len(self.event_log),
                "horizon": self.event_log.horizon,
                "generation": self.event_log.generation,
            }
        return out


def _answers_to_json(answers) -> list[dict[str, Any]]:
    """A TemporalAnswerSet as JSON rows, deterministically ordered."""
    rows = sorted(
        answers,
        key=lambda item: tuple(term_sort_key(value) for value in item[0]),
    )
    return [
        {
            "row": [term_to_json(value) for value in row],
            "support": str(support),
        }
        for row, support in rows
    ]


class SessionManager:
    """The daemon's resident state: sessions, cache, warm worker pool."""

    def __init__(
        self,
        cache_entries: int = 64,
        workers: int | None = None,
        snapshot_dir: "str | Path | None" = None,
    ):
        self.cache = ChaseCache(max_entries=cache_entries)
        self.workers = workers
        self.snapshot_dir = Path(snapshot_dir) if snapshot_dir else None
        self._sessions: dict[str, Session] = {}
        self._lock = threading.Lock()
        self._pool = None

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Release the worker pool (sessions die with the process)."""
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown()

    def pool(self):
        """The shared warm ``ProcessPoolExecutor``, created on first use.

        Per-daemon rather than per-request on purpose: process startup
        and module import dominate small sharded chases, so the whole
        point of a resident server is that every request after the
        first finds the workers already up (PR 4's warm-pool detection
        reuses the shard-codec wire path for user-supplied pools).
        """
        with self._lock:
            if self._pool is None:
                from concurrent.futures import ProcessPoolExecutor

                self._pool = ProcessPoolExecutor(max_workers=self.workers)
            return self._pool

    # -- session map -------------------------------------------------------

    def _get(self, name: str) -> Session:
        with self._lock:
            session = self._sessions.get(name)
        if session is None:
            raise UnknownSessionError(name)
        return session

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._sessions)

    def list_sessions(self) -> list[dict[str, Any]]:
        with self._lock:
            sessions = list(self._sessions.values())
        return [session.info() for session in sorted(sessions, key=lambda s: s.name)]

    def stats(self) -> dict[str, Any]:
        return {
            "sessions": self.names(),
            "cache": self.cache.stats(),
            "workers": self.workers,
            "pool_started": self._pool is not None,
        }

    # -- the chase front door ---------------------------------------------

    def _chase(
        self,
        session: Session,
        source: ConcreteInstance,
        incremental: "CChaseReplayState | bool",
    ) -> tuple[ConcreteInstance, CChaseReplayState | None, dict[str, Any]]:
        """Chase *source*, cache-first.  Raises 409 on chase failure.

        The cache is consulted before any work: a digest hit
        materializes the recorded (target, replay state) and the chase
        machinery is never touched.  A miss runs the c-chase with the
        session's replay state attached — so even misses replay every
        normalization group the delta left unchanged — and the outcome
        (success or failure) is recorded under its digest.
        """
        digest = chase_request_digest(session.setting, source)
        cached = self.cache.get(digest)
        if cached is None:
            result = c_chase(source, session.setting, incremental=incremental)
            cached = CachedChase.from_result(digest, result)
            self.cache.put(cached)
            hit = False
        else:
            hit = True
            session.stats["cache_hits"] += 1
        session.stats["chases"] += 1
        if cached.failed:
            raise ProtocolError(f"chase failed: {cached.failure}", status=409)
        target, replay_state = cached.materialize()
        meta = {
            "digest": digest,
            "cached": hit,
            "target_facts": cached.facts,
            "chase_steps": cached.steps,
        }
        return target, replay_state, meta

    # -- operations --------------------------------------------------------

    def create(
        self,
        name: str,
        setting_json: dict,
        source_json: dict,
        replace: bool = False,
    ) -> dict[str, Any]:
        check_session_name(name)
        try:
            setting = setting_from_json(setting_json)
        except ReproError as exc:
            raise ProtocolError(f"invalid setting: {exc}") from exc
        try:
            from repro.serialize.jsonio import concrete_instance_from_json

            source = concrete_instance_from_json(source_json)
        except ReproError as exc:
            raise ProtocolError(f"invalid source instance: {exc}") from exc
        with self._lock:
            if name in self._sessions and not replace:
                raise ProtocolError(
                    f"session {name!r} already exists (pass replace=true "
                    "to rebuild it)",
                    status=409,
                )
        probe = Session(
            name=name,
            setting=setting,
            setting_json=setting_to_json(setting),
            source=source,
            target=ConcreteInstance(),
        )
        target, replay_state, meta = self._chase(probe, source, incremental=True)
        probe.target = target
        probe.replay_state = replay_state
        with self._lock:
            self._sessions[name] = probe
        return {"session": probe.info(), **meta}

    def _apply_delta(
        self, session: Session, delta: SourceDelta
    ) -> tuple[SourceDelta, dict[str, Any]]:
        """Apply *delta* to the session's source and re-chase (locked by
        the caller).  Returns the *target* diff as a delta plus the
        chase metadata; the session is untouched if anything fails.
        """
        try:
            source = delta.applied_to(session.source)
        except DeltaError as exc:
            raise ProtocolError(str(exc)) from exc
        incremental = (
            session.replay_state if session.replay_state is not None else True
        )
        target, replay_state, meta = self._chase(session, source, incremental)
        target_diff = SourceDelta.between(session.target, target)
        session.source = source
        session.target = target
        session.replay_state = replay_state
        return target_diff, meta

    def delta(
        self,
        name: str,
        delta: SourceDelta,
        legacy: bool = False,
    ) -> dict[str, Any]:
        """Apply a source delta; respond with the *target* diff.

        Strict by design (via :meth:`SourceDelta.apply`): removing an
        absent fact or adding a duplicate is a 400 — silently absorbing
        either would let a client's view of the cumulative source drift
        from the server's, and the byte-identity guarantee (server
        target ≡ from-scratch chase of the cumulative source) is only
        meaningful when both sides agree on what that source is.

        *legacy* selects the response dialect: pre-envelope clients get
        the old ``{"added": ..., "removed": ...}`` diff shape,
        versioned clients get the canonical :class:`SourceDelta` codec.
        """
        session = self._get(name)
        with session.lock:
            target_diff, meta = self._apply_delta(session, delta)
            session.stats["deltas"] += 1
            diff_json = (
                diff_to_json(target_diff.add, target_diff.remove)
                if legacy
                else target_diff.to_json()
            )
            return {
                "session": session.name,
                "source_facts": len(session.source),
                "diff": diff_json,
                **meta,
            }

    def events(
        self,
        name: str,
        events: list,
        mapping_json: dict | None = None,
    ) -> dict[str, Any]:
        """Ingest an event batch; compile, apply, chase, diff.

        The first batch must carry (or the session must already have)
        an event mapping; later batches may repeat it verbatim but may
        not change it.  Ingestion is atomic — a bad batch is a 400 and
        the session's log, source and target are untouched.  The
        response's ``diff`` is the *target* diff in the canonical
        :class:`SourceDelta` codec; a batch that changes nothing (all
        duplicates, or changes cancelling out) reports ``chased: false``
        and an empty diff without running any chase.
        """
        session = self._get(name)
        with session.lock:
            if session.event_log is None:
                if mapping_json is None:
                    raise ProtocolError(
                        "the first events request for a session must carry "
                        "a 'mapping' (entity/relationship rules; see "
                        "docs/server.md)"
                    )
                try:
                    session.event_log = EventLog(EventMapping.from_json(mapping_json))
                except EventError as exc:
                    raise ProtocolError(f"invalid event mapping: {exc}") from exc
                session.event_cursor = session.event_log.follow()
            elif (
                mapping_json is not None
                and mapping_json != session.event_log.mapping.to_json()
            ):
                raise ProtocolError(
                    f"session {name!r} already follows an event log with a "
                    "different mapping",
                    status=409,
                )
            try:
                report = session.event_log.ingest(events)
            except EventError as exc:
                raise ProtocolError(str(exc)) from exc
            assert session.event_cursor is not None
            # Peek now, advance only after the apply lands: if the chase
            # fails the cursor stays pending and the next batch (even an
            # empty one) retries the same delta.
            source_delta = session.event_cursor.peek()
            session.stats["events"] = session.stats.get("events", 0) + 1
            response: dict[str, Any] = {
                "session": session.name,
                "ingest": report.to_json(),
                "applied": {
                    "add": len(source_delta.add),
                    "remove": len(source_delta.remove),
                },
            }
            if source_delta.is_empty:
                session.event_cursor.advance()
                response.update(
                    {
                        "source_facts": len(session.source),
                        "chased": False,
                        "diff": SourceDelta.empty().to_json(),
                    }
                )
                return response
            target_diff, meta = self._apply_delta(session, source_delta)
            session.event_cursor.advance()
            response.update(
                {
                    "source_facts": len(session.source),
                    "chased": True,
                    "diff": target_diff.to_json(),
                    **meta,
                }
            )
            return response

    def query(
        self,
        name: str,
        query_text: str,
        engine: str = "indexed",
    ) -> dict[str, Any]:
        """Certain answers against the maintained target, ledger-first.

        The session's target *is* the chased solution, so no chase runs
        here at all; evaluation goes through the session's
        :class:`QueryLog`, whose answer ledger is signed by the target
        facts of each disjunct's body relations — a repeated query
        against an unchanged target replays in O(1).
        """
        if engine not in ("indexed", "scan"):
            raise ProtocolError(
                f"unknown engine {engine!r}: expected 'indexed' or 'scan'"
            )
        session = self._get(name)
        rules = [rule for rule in query_text.split(";") if rule.strip()]
        if not rules:
            raise ProtocolError("empty query")
        try:
            query: ConjunctiveQuery | UnionQuery
            if len(rules) == 1:
                query = ConjunctiveQuery.parse(rules[0])
            else:
                query = UnionQuery.of(*rules)
        except ReproError as exc:
            raise ProtocolError(f"invalid query: {exc}") from exc
        with session.lock:
            log = session.query_log if engine == "indexed" else None
            mark = log.answers.counters() if log is not None else (0, 0)
            answers = naive_evaluate_concrete(
                query, session.target, engine=engine, log=log
            ).to_temporal()
            replayed, evaluated = (
                log.answers.delta_since(mark) if log is not None else (0, 0)
            )
            session.stats["queries"] += 1
            session.stats["queries_replayed"] += 1 if replayed and not evaluated else 0
            return {
                "session": session.name,
                "engine": engine,
                "answers": _answers_to_json(answers),
                "replayed": replayed,
                "evaluated": evaluated,
            }

    def abstract(
        self,
        name: str,
        shards: int = 1,
        executor: str = "serial",
        incremental: bool = True,
    ) -> dict[str, Any]:
        """A sharded abstract chase of the session's source, warm-pooled.

        ``executor="processes"`` reuses the daemon's shared
        :class:`ProcessPoolExecutor` (see :meth:`pool`), so repeated
        requests never pay worker startup.
        """
        if executor not in ("serial", "threads", "processes"):
            raise ProtocolError(f"unknown executor {executor!r}")
        if not isinstance(shards, int) or shards < 1:
            raise ProtocolError(f"shards must be a positive integer, got {shards!r}")
        session = self._get(name)
        from repro.abstract_view import abstract_chase, semantics

        runner = self.pool() if executor == "processes" else executor
        with session.lock:
            result = abstract_chase(
                semantics(session.source),
                session.setting,
                shards=shards,
                executor=runner,
                incremental=incremental,
            )
        if result.error is not None:
            raise result.error
        if result.failed:
            raise ProtocolError(f"chase failed: {result.failure}", status=409)
        totals = result.reuse_totals()
        return {
            "session": session.name,
            "regions": len(result.region_results),
            "templates": len(result.unwrap().templates),
            "replayed_matches": totals.replayed_matches,
            "live_matches": totals.live_matches,
            "shards": [
                {
                    "shard": report.shard,
                    "regions": report.regions,
                    "nulls": report.nulls_issued,
                    "ms": round(report.seconds * 1000.0, 3),
                    "remote": report.remote,
                }
                for report in result.shard_reports
            ],
        }

    def target_json(self, name: str) -> dict[str, Any]:
        session = self._get(name)
        with session.lock:
            return concrete_instance_to_json(session.target)

    def source_json(self, name: str) -> dict[str, Any]:
        session = self._get(name)
        with session.lock:
            return concrete_instance_to_json(session.source)

    def info(self, name: str) -> dict[str, Any]:
        return self._get(name).info()

    # -- persistence -------------------------------------------------------

    def _snapshot_path(self, name: str) -> Path:
        if self.snapshot_dir is None:
            raise ProtocolError(
                "this server has no snapshot directory (start it with "
                "--snapshot-dir to enable session persistence)",
                status=409,
            )
        return self.snapshot_dir / f"{name}.session"

    def snapshot(self, name: str) -> dict[str, Any]:
        """Persist the session to the spool directory (session stays live)."""
        session = self._get(name)
        path = self._snapshot_path(name)
        with session.lock:
            payload = SessionSnapshot(
                format=SNAPSHOT_FORMAT,
                name=session.name,
                setting_json=session.setting_json,
                source=session.source,
                target=session.target,
                replay_state=session.replay_state,
                query_log=session.query_log,
                stats=dict(session.stats),
                event_log=session.event_log,
            )
            path.parent.mkdir(parents=True, exist_ok=True)
            with open(path, "wb") as handle:
                pickle.dump(payload, handle)
        return {"session": name, "path": str(path)}

    def load(self, name: str) -> dict[str, Any]:
        """Rebuild an evicted session from its snapshot, warm state intact."""
        check_session_name(name)
        path = self._snapshot_path(name)
        if not path.exists():
            raise ProtocolError(f"no snapshot for session {name!r}", status=404)
        try:
            with open(path, "rb") as handle:
                payload = pickle.load(handle)
        except Exception as exc:
            raise ProtocolError(
                f"cannot read snapshot for {name!r}: {exc}", status=409
            ) from exc
        if (
            not isinstance(payload, SessionSnapshot)
            or payload.format != SNAPSHOT_FORMAT
            or payload.name != name
        ):
            raise ProtocolError(
                f"snapshot for {name!r} is not a compatible session snapshot",
                status=409,
            )
        session = Session(
            name=name,
            setting=setting_from_json(payload.setting_json),
            setting_json=payload.setting_json,
            source=payload.source,
            target=payload.target,
            replay_state=payload.replay_state,
            query_log=payload.query_log,
            stats=dict(payload.stats),
            event_log=payload.event_log,
        )
        if session.event_log is not None:
            # The snapshotted source already reflects the whole log;
            # fast-forward a fresh cursor so the next batch diffs
            # against the right baseline (cursors are derived state and
            # are never pickled).
            session.event_cursor = session.event_log.follow()
            session.event_cursor.advance()
        with self._lock:
            self._sessions[name] = session
        return {"session": session.info(), "path": str(path)}

    def evict(self, name: str, snapshot: bool = False) -> dict[str, Any]:
        """Drop a session from memory, optionally snapshotting it first."""
        result: dict[str, Any] = {"session": name, "snapshotted": snapshot}
        if snapshot:
            result.update(self.snapshot(name))
            result["snapshotted"] = True
        with self._lock:
            if self._sessions.pop(name, None) is None:
                raise UnknownSessionError(name)
        return result
