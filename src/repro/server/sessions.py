"""Named sessions: warm chased state, resident between requests.

A **session** is the unit of residency: it owns the cumulative source
instance, the chased target, the c-chase's
:class:`~repro.concrete.cchase.CChaseReplayState` (normalization
group/fragment plans), and a :class:`~repro.query.QueryLog` whose
answer ledger is signed by the maintained target's facts.  Requests
mutate the source by *deltas*; the chase that follows replays every
ledger the delta left intact, and the response is the target *diff* —
never the whole target, never a from-scratch chase when the ledgers
apply.

In front of the chase sits the :class:`~repro.server.cache.ChaseCache`:
every chase this manager runs is keyed by the content digest of its
(setting, cumulative source), so an identical re-chase — a second
session created from the same inputs, or a delta that returns a session
to a previous state — is served from the cache without any chase work.

Locking: the manager's lock guards the session map and the process
pool; each session's lock serializes its own chase/query/snapshot work.
Different sessions therefore proceed concurrently (the HTTP front-end
runs handlers on a thread pool), while one session's requests are
strictly ordered — which is what makes its replay ledgers coherent.

Snapshots are pickles (live fact/ledger objects) written only under the
manager's spool directory and loaded only from there — the server-side
mirror of the CLI's ``--norm-log`` trust boundary: never point the
spool at a directory untrusted writers can reach.
"""

from __future__ import annotations

import pickle
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.concrete.cchase import CChaseReplayState, c_chase
from repro.concrete.concrete_instance import ConcreteInstance
from repro.dependencies.mapping import DataExchangeSetting
from repro.errors import ReproError
from repro.query import ConjunctiveQuery, QueryLog, UnionQuery
from repro.query.naive_eval import naive_evaluate_concrete
from repro.relational.terms import term_sort_key
from repro.serialize.digest import chase_request_digest, instance_digest
from repro.serialize.jsonio import (
    concrete_instance_to_json,
    setting_from_json,
    setting_to_json,
    term_to_json,
)
from repro.server.cache import CachedChase, ChaseCache
from repro.server.protocol import (
    ProtocolError,
    check_session_name,
    diff_to_json,
    instance_diff,
)

__all__ = ["Session", "SessionManager", "SessionSnapshot", "UnknownSessionError"]

#: Bumped when the pickled snapshot layout changes.
SNAPSHOT_FORMAT = 1


class UnknownSessionError(ProtocolError):
    def __init__(self, name: str):
        super().__init__(f"no session named {name!r}", status=404)


@dataclass
class SessionSnapshot:
    """The pickled on-disk form of one evicted/persisted session."""

    format: int
    name: str
    setting_json: dict
    source: ConcreteInstance
    target: ConcreteInstance
    replay_state: CChaseReplayState | None
    query_log: QueryLog
    stats: dict[str, int]


@dataclass
class Session:
    """One resident exchange: setting, cumulative source, chased target."""

    name: str
    setting: DataExchangeSetting
    setting_json: dict
    source: ConcreteInstance
    target: ConcreteInstance
    replay_state: CChaseReplayState | None = None
    query_log: QueryLog = field(default_factory=QueryLog)
    stats: dict[str, int] = field(
        default_factory=lambda: {
            "chases": 0,
            "cache_hits": 0,
            "deltas": 0,
            "queries": 0,
            "queries_replayed": 0,
        }
    )
    lock: threading.RLock = field(default_factory=threading.RLock, repr=False)

    def info(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "source_facts": len(self.source),
            "target_facts": len(self.target),
            "source_digest": instance_digest(self.source),
            "stats": dict(self.stats),
        }


def _answers_to_json(answers) -> list[dict[str, Any]]:
    """A TemporalAnswerSet as JSON rows, deterministically ordered."""
    rows = sorted(
        answers,
        key=lambda item: tuple(term_sort_key(value) for value in item[0]),
    )
    return [
        {
            "row": [term_to_json(value) for value in row],
            "support": str(support),
        }
        for row, support in rows
    ]


class SessionManager:
    """The daemon's resident state: sessions, cache, warm worker pool."""

    def __init__(
        self,
        cache_entries: int = 64,
        workers: int | None = None,
        snapshot_dir: "str | Path | None" = None,
    ):
        self.cache = ChaseCache(max_entries=cache_entries)
        self.workers = workers
        self.snapshot_dir = Path(snapshot_dir) if snapshot_dir else None
        self._sessions: dict[str, Session] = {}
        self._lock = threading.Lock()
        self._pool = None

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Release the worker pool (sessions die with the process)."""
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown()

    def pool(self):
        """The shared warm ``ProcessPoolExecutor``, created on first use.

        Per-daemon rather than per-request on purpose: process startup
        and module import dominate small sharded chases, so the whole
        point of a resident server is that every request after the
        first finds the workers already up (PR 4's warm-pool detection
        reuses the shard-codec wire path for user-supplied pools).
        """
        with self._lock:
            if self._pool is None:
                from concurrent.futures import ProcessPoolExecutor

                self._pool = ProcessPoolExecutor(max_workers=self.workers)
            return self._pool

    # -- session map -------------------------------------------------------

    def _get(self, name: str) -> Session:
        with self._lock:
            session = self._sessions.get(name)
        if session is None:
            raise UnknownSessionError(name)
        return session

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._sessions)

    def list_sessions(self) -> list[dict[str, Any]]:
        with self._lock:
            sessions = list(self._sessions.values())
        return [session.info() for session in sorted(sessions, key=lambda s: s.name)]

    def stats(self) -> dict[str, Any]:
        return {
            "sessions": self.names(),
            "cache": self.cache.stats(),
            "workers": self.workers,
            "pool_started": self._pool is not None,
        }

    # -- the chase front door ---------------------------------------------

    def _chase(
        self,
        session: Session,
        source: ConcreteInstance,
        incremental: "CChaseReplayState | bool",
    ) -> tuple[ConcreteInstance, CChaseReplayState | None, dict[str, Any]]:
        """Chase *source*, cache-first.  Raises 409 on chase failure.

        The cache is consulted before any work: a digest hit
        materializes the recorded (target, replay state) and the chase
        machinery is never touched.  A miss runs the c-chase with the
        session's replay state attached — so even misses replay every
        normalization group the delta left unchanged — and the outcome
        (success or failure) is recorded under its digest.
        """
        digest = chase_request_digest(session.setting, source)
        cached = self.cache.get(digest)
        if cached is None:
            result = c_chase(source, session.setting, incremental=incremental)
            cached = CachedChase.from_result(digest, result)
            self.cache.put(cached)
            hit = False
        else:
            hit = True
            session.stats["cache_hits"] += 1
        session.stats["chases"] += 1
        if cached.failed:
            raise ProtocolError(f"chase failed: {cached.failure}", status=409)
        target, replay_state = cached.materialize()
        meta = {
            "digest": digest,
            "cached": hit,
            "target_facts": cached.facts,
            "chase_steps": cached.steps,
        }
        return target, replay_state, meta

    # -- operations --------------------------------------------------------

    def create(
        self,
        name: str,
        setting_json: dict,
        source_json: dict,
        replace: bool = False,
    ) -> dict[str, Any]:
        check_session_name(name)
        try:
            setting = setting_from_json(setting_json)
        except ReproError as exc:
            raise ProtocolError(f"invalid setting: {exc}") from exc
        try:
            from repro.serialize.jsonio import concrete_instance_from_json

            source = concrete_instance_from_json(source_json)
        except ReproError as exc:
            raise ProtocolError(f"invalid source instance: {exc}") from exc
        with self._lock:
            if name in self._sessions and not replace:
                raise ProtocolError(
                    f"session {name!r} already exists (pass replace=true "
                    "to rebuild it)",
                    status=409,
                )
        probe = Session(
            name=name,
            setting=setting,
            setting_json=setting_to_json(setting),
            source=source,
            target=ConcreteInstance(),
        )
        target, replay_state, meta = self._chase(probe, source, incremental=True)
        probe.target = target
        probe.replay_state = replay_state
        with self._lock:
            self._sessions[name] = probe
        return {"session": probe.info(), **meta}

    def delta(
        self,
        name: str,
        add: list,
        remove: list,
    ) -> dict[str, Any]:
        """Apply a source delta; respond with the *target* diff.

        Strict by design: removing an absent fact or adding a duplicate
        is a 400 — silently absorbing either would let a client's view
        of the cumulative source drift from the server's, and the
        byte-identity guarantee (server target ≡ from-scratch chase of
        the cumulative source) is only meaningful when both sides agree
        on what that source is.
        """
        session = self._get(name)
        with session.lock:
            source = session.source.copy()
            for item in remove:
                if not source.discard(item):
                    raise ProtocolError(
                        f"cannot remove absent source fact {item}"
                    )
            for item in add:
                if not source.add(item):
                    raise ProtocolError(
                        f"source fact {item} is already present"
                    )
            incremental = (
                session.replay_state if session.replay_state is not None else True
            )
            target, replay_state, meta = self._chase(session, source, incremental)
            added, removed = instance_diff(session.target, target)
            session.source = source
            session.target = target
            session.replay_state = replay_state
            session.stats["deltas"] += 1
            return {
                "session": session.name,
                "source_facts": len(source),
                "diff": diff_to_json(added, removed),
                **meta,
            }

    def query(
        self,
        name: str,
        query_text: str,
        engine: str = "indexed",
    ) -> dict[str, Any]:
        """Certain answers against the maintained target, ledger-first.

        The session's target *is* the chased solution, so no chase runs
        here at all; evaluation goes through the session's
        :class:`QueryLog`, whose answer ledger is signed by the target
        facts of each disjunct's body relations — a repeated query
        against an unchanged target replays in O(1).
        """
        if engine not in ("indexed", "scan"):
            raise ProtocolError(
                f"unknown engine {engine!r}: expected 'indexed' or 'scan'"
            )
        session = self._get(name)
        rules = [rule for rule in query_text.split(";") if rule.strip()]
        if not rules:
            raise ProtocolError("empty query")
        try:
            query: ConjunctiveQuery | UnionQuery
            if len(rules) == 1:
                query = ConjunctiveQuery.parse(rules[0])
            else:
                query = UnionQuery.of(*rules)
        except ReproError as exc:
            raise ProtocolError(f"invalid query: {exc}") from exc
        with session.lock:
            log = session.query_log if engine == "indexed" else None
            mark = log.answers.counters() if log is not None else (0, 0)
            answers = naive_evaluate_concrete(
                query, session.target, engine=engine, log=log
            ).to_temporal()
            replayed, evaluated = (
                log.answers.delta_since(mark) if log is not None else (0, 0)
            )
            session.stats["queries"] += 1
            session.stats["queries_replayed"] += 1 if replayed and not evaluated else 0
            return {
                "session": session.name,
                "engine": engine,
                "answers": _answers_to_json(answers),
                "replayed": replayed,
                "evaluated": evaluated,
            }

    def abstract(
        self,
        name: str,
        shards: int = 1,
        executor: str = "serial",
        incremental: bool = True,
    ) -> dict[str, Any]:
        """A sharded abstract chase of the session's source, warm-pooled.

        ``executor="processes"`` reuses the daemon's shared
        :class:`ProcessPoolExecutor` (see :meth:`pool`), so repeated
        requests never pay worker startup.
        """
        if executor not in ("serial", "threads", "processes"):
            raise ProtocolError(f"unknown executor {executor!r}")
        if not isinstance(shards, int) or shards < 1:
            raise ProtocolError(f"shards must be a positive integer, got {shards!r}")
        session = self._get(name)
        from repro.abstract_view import abstract_chase, semantics

        runner = self.pool() if executor == "processes" else executor
        with session.lock:
            result = abstract_chase(
                semantics(session.source),
                session.setting,
                shards=shards,
                executor=runner,
                incremental=incremental,
            )
        if result.error is not None:
            raise result.error
        if result.failed:
            raise ProtocolError(f"chase failed: {result.failure}", status=409)
        totals = result.reuse_totals()
        return {
            "session": session.name,
            "regions": len(result.region_results),
            "templates": len(result.unwrap().templates),
            "replayed_matches": totals.replayed_matches,
            "live_matches": totals.live_matches,
            "shards": [
                {
                    "shard": report.shard,
                    "regions": report.regions,
                    "nulls": report.nulls_issued,
                    "ms": round(report.seconds * 1000.0, 3),
                    "remote": report.remote,
                }
                for report in result.shard_reports
            ],
        }

    def target_json(self, name: str) -> dict[str, Any]:
        session = self._get(name)
        with session.lock:
            return concrete_instance_to_json(session.target)

    def source_json(self, name: str) -> dict[str, Any]:
        session = self._get(name)
        with session.lock:
            return concrete_instance_to_json(session.source)

    def info(self, name: str) -> dict[str, Any]:
        return self._get(name).info()

    # -- persistence -------------------------------------------------------

    def _snapshot_path(self, name: str) -> Path:
        if self.snapshot_dir is None:
            raise ProtocolError(
                "this server has no snapshot directory (start it with "
                "--snapshot-dir to enable session persistence)",
                status=409,
            )
        return self.snapshot_dir / f"{name}.session"

    def snapshot(self, name: str) -> dict[str, Any]:
        """Persist the session to the spool directory (session stays live)."""
        session = self._get(name)
        path = self._snapshot_path(name)
        with session.lock:
            payload = SessionSnapshot(
                format=SNAPSHOT_FORMAT,
                name=session.name,
                setting_json=session.setting_json,
                source=session.source,
                target=session.target,
                replay_state=session.replay_state,
                query_log=session.query_log,
                stats=dict(session.stats),
            )
            path.parent.mkdir(parents=True, exist_ok=True)
            with open(path, "wb") as handle:
                pickle.dump(payload, handle)
        return {"session": name, "path": str(path)}

    def load(self, name: str) -> dict[str, Any]:
        """Rebuild an evicted session from its snapshot, warm state intact."""
        check_session_name(name)
        path = self._snapshot_path(name)
        if not path.exists():
            raise ProtocolError(f"no snapshot for session {name!r}", status=404)
        try:
            with open(path, "rb") as handle:
                payload = pickle.load(handle)
        except Exception as exc:
            raise ProtocolError(
                f"cannot read snapshot for {name!r}: {exc}", status=409
            ) from exc
        if (
            not isinstance(payload, SessionSnapshot)
            or payload.format != SNAPSHOT_FORMAT
            or payload.name != name
        ):
            raise ProtocolError(
                f"snapshot for {name!r} is not a compatible session snapshot",
                status=409,
            )
        session = Session(
            name=name,
            setting=setting_from_json(payload.setting_json),
            setting_json=payload.setting_json,
            source=payload.source,
            target=payload.target,
            replay_state=payload.replay_state,
            query_log=payload.query_log,
            stats=dict(payload.stats),
        )
        with self._lock:
            self._sessions[name] = session
        return {"session": session.info(), "path": str(path)}

    def evict(self, name: str, snapshot: bool = False) -> dict[str, Any]:
        """Drop a session from memory, optionally snapshotting it first."""
        result: dict[str, Any] = {"session": name, "snapshotted": snapshot}
        if snapshot:
            result.update(self.snapshot(name))
            result["snapshotted"] = True
        with self._lock:
            if self._sessions.pop(name, None) is None:
                raise UnknownSessionError(name)
        return result
