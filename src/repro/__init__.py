"""repro — temporal data exchange (Golshanara & Chomicki).

A complete implementation of the paper's framework:

* the **temporal substrate**: intervals ``[s, e)`` over ``N0 ∪ {∞}``,
  interval sets, coalescing (:mod:`repro.temporal`);
* the **relational substrate**: naive-table instances, conjunctive
  formulas, homomorphism search (:mod:`repro.relational`);
* **schema mappings**: s-t tgds, egds, exchange settings
  (:mod:`repro.dependencies`);
* the **classical chase** per snapshot, with core computation
  (:mod:`repro.chase`);
* the **abstract view** — snapshot-sequence semantics, snapshot-wise
  chase, abstract homomorphisms (:mod:`repro.abstract_view`);
* the **concrete view** — interval-annotated nulls, normalization
  (Algorithm 1 and the naïve baseline), the c-chase
  (:mod:`repro.concrete`);
* **query answering** — naive evaluation, certain answers
  (:mod:`repro.query`);
* **change feeds** — the canonical :class:`~repro.deltas.SourceDelta`
  and the event-sourced ingestion layer that compiles live event logs
  into it (:mod:`repro.deltas`, :mod:`repro.events`);
* the Figure 10 **correspondence** checks (:mod:`repro.correspondence`);
* workloads, serialization and the Section 7 extension
  (:mod:`repro.workloads`, :mod:`repro.serialize`,
  :mod:`repro.extensions`).

Quickstart::

    from repro import *

    setting = employment_setting()          # Example 1/6
    source = employment_source_concrete()   # Figure 4
    result = c_chase(source, setting)       # Figure 9
    answers = certain_answers_concrete(
        ConjunctiveQuery.parse("q(n, s) :- Emp(n, c, s)"), source, setting
    )
"""

from repro.errors import (
    ChaseFailureError,
    DeltaError,
    EventError,
    FormulaError,
    InstanceError,
    NotNormalizedError,
    ParseError,
    ReproError,
    SchemaError,
    SerializationError,
    SolutionError,
    TemporalError,
)
from repro.temporal import (
    INFINITY,
    Interval,
    IntervalSet,
    interval,
)
from repro.relational import (
    AnnotatedNull,
    Atom,
    Conjunction,
    Constant,
    Fact,
    Instance,
    LabeledNull,
    RelationSchema,
    Schema,
    TemporalConjunction,
    Variable,
    fact,
    parse_atom,
    parse_conjunction,
)
from repro.dependencies import EGD, DataExchangeSetting, SourceToTargetTGD
from repro.chase import NullFactory, chase_snapshot, core_of, snapshot_satisfies
from repro.abstract_view import (
    AbstractInstance,
    TemplateFact,
    abstract_chase,
    find_abstract_homomorphism,
    has_abstract_homomorphism,
    homomorphically_equivalent,
    is_solution,
    is_universal_solution,
    semantics,
)
from repro.concrete import (
    ConcreteFact,
    ConcreteInstance,
    c_chase,
    concrete_fact,
    is_normalized,
    naive_normalize,
    normalize,
)
from repro.deltas import SourceDelta
from repro.events import (
    EntityRule,
    Event,
    EventLog,
    EventMapping,
    FollowCursor,
    RelationshipRule,
    TimeScale,
)
from repro.correspondence import (
    concrete_is_solution,
    verify_correspondence,
)
from repro.query import (
    ConjunctiveQuery,
    TemporalAnswerSet,
    UnionQuery,
    certain_answers_abstract,
    certain_answers_concrete,
    naive_evaluate_abstract,
    naive_evaluate_concrete,
    verify_evaluation_correspondence,
)
from repro.workloads import (
    employment_setting,
    employment_source_abstract,
    employment_source_concrete,
)

__version__ = "1.0.0"

__all__ = [
    # errors
    "ChaseFailureError",
    "DeltaError",
    "EventError",
    "FormulaError",
    "InstanceError",
    "NotNormalizedError",
    "ParseError",
    "ReproError",
    "SchemaError",
    "SerializationError",
    "SolutionError",
    "TemporalError",
    # temporal
    "INFINITY",
    "Interval",
    "IntervalSet",
    "interval",
    # relational
    "AnnotatedNull",
    "Atom",
    "Conjunction",
    "Constant",
    "Fact",
    "Instance",
    "LabeledNull",
    "RelationSchema",
    "Schema",
    "TemporalConjunction",
    "Variable",
    "fact",
    "parse_atom",
    "parse_conjunction",
    # dependencies
    "EGD",
    "DataExchangeSetting",
    "SourceToTargetTGD",
    # chase
    "NullFactory",
    "chase_snapshot",
    "core_of",
    "snapshot_satisfies",
    # abstract view
    "AbstractInstance",
    "TemplateFact",
    "abstract_chase",
    "find_abstract_homomorphism",
    "has_abstract_homomorphism",
    "homomorphically_equivalent",
    "is_solution",
    "is_universal_solution",
    "semantics",
    # concrete view
    "ConcreteFact",
    "ConcreteInstance",
    "c_chase",
    "concrete_fact",
    "is_normalized",
    "naive_normalize",
    "normalize",
    # deltas + events
    "SourceDelta",
    "EntityRule",
    "Event",
    "EventLog",
    "EventMapping",
    "FollowCursor",
    "RelationshipRule",
    "TimeScale",
    # correspondence
    "concrete_is_solution",
    "verify_correspondence",
    # queries
    "ConjunctiveQuery",
    "TemporalAnswerSet",
    "UnionQuery",
    "certain_answers_abstract",
    "certain_answers_concrete",
    "naive_evaluate_abstract",
    "naive_evaluate_concrete",
    "verify_evaluation_correspondence",
    # workloads
    "employment_setting",
    "employment_source_abstract",
    "employment_source_concrete",
    "__version__",
]
