"""Seeded synthetic *event streams* for the ingestion layer.

Where :mod:`repro.workloads.generators` builds static concrete
instances, this module builds the upstream artifact those instances
would be derived from: JSON-lines event logs in the
:mod:`repro.events` wire shape, over the same org-chart domain as
:func:`~repro.workloads.generators.exchange_setting_org` — so the
compiled source feeds the existing org mapping unchanged.

The streams exercise exactly the ingestion features the event model
calls out:

* **multi-source logs** — reference data arrives from ``"hr"``, task
  churn from ``"tracker"``, merged into one log on ingestion;
* **late-arriving facts** — :func:`late_arrival_batches` re-orders a
  chronological stream so earlier events land in later batches,
  splitting already-compiled (and, downstream, already-normalized)
  fragments;
* **corrections** — a fraction of hires are first recorded against the
  wrong department and later superseded by a same-id, higher-revision
  event.

Everything is deterministic given the seed (this package is exempt
from the repository's no-RNG rule precisely so generators can be).
"""

from __future__ import annotations

import random
from typing import Any

from repro.events import EntityRule, EventMapping, RelationshipRule, TimeScale

__all__ = ["late_arrival_batches", "org_event_mapping", "org_event_stream"]


def org_event_mapping() -> EventMapping:
    """The event mapping matching ``exchange_setting_org()``'s source.

    ``dept`` entities project onto ``Dept(Dept, Manager)``, ``employee``
    entities onto ``Emp(Name, Dept)``, and ``assigned`` relationships
    onto ``Task(Name, Task)``; days since 2020-01-01 are the time
    points.
    """
    return EventMapping(
        entities=(
            EntityRule("dept", "Dept", ("$id", "manager")),
            EntityRule("employee", "Emp", ("$id", "dept")),
        ),
        relationships=(RelationshipRule("assigned", "Task", ("$from", "$to")),),
        scale=TimeScale(epoch="2020-01-01T00:00:00+00:00", unit="days"),
    )


def org_event_stream(
    people: int,
    timeline: int = 64,
    departments: int | None = None,
    tasks_per_person: int = 3,
    transfer_fraction: float = 0.3,
    correction_fraction: float = 0.2,
    seed: int = 0,
) -> list[dict[str, Any]]:
    """An org history as a shuffled wire-shape event list.

    Departments are created at time 0 by ``"hr"``; each person is hired
    once (``correction_fraction`` of them into the *wrong* department,
    fixed by a revision-1 correction of the same event id), a
    ``transfer_fraction`` of them transfer mid-life (an ``updated``
    event that splits the compiled ``Emp`` fact), and everyone works
    through short ``assigned`` relationships from ``"tracker"`` whose
    add/remove pairs share a ``correlation_id``.  The returned list is
    shuffled, so ingesting it in order already exercises out-of-order
    re-sequencing; compile it against :func:`org_event_mapping`.
    """
    rng = random.Random(seed)
    scale = org_event_mapping().scale
    departments = departments or max(4, people // 8)
    counter = 0

    def next_id() -> str:
        nonlocal counter
        counter += 1
        return f"ev{counter}"

    def record(
        entity_id: str,
        event_type: str,
        point: int,
        payload: dict[str, Any],
        **extra: Any,
    ) -> dict[str, Any]:
        return {
            "id": next_id(),
            "entity_id": entity_id,
            "event_type": event_type,
            "timestamp": scale.timestamp(point),
            "payload": payload,
            **extra,
        }

    events: list[dict[str, Any]] = []
    for department in range(departments):
        events.append(
            record(
                f"d{department}",
                "created",
                0,
                {"type": "dept", "manager": f"mgr{department}"},
                source="hr",
            )
        )
    for person_id in range(people):
        name = f"p{person_id}"
        joined = rng.randrange(0, max(1, timeline // 4))
        dept = rng.randrange(departments)
        hire = record(
            name,
            "created",
            joined,
            {"type": "employee", "dept": f"d{dept}"},
            source="hr",
        )
        events.append(hire)
        if rng.random() < correction_fraction:
            # HR filed the hire against the wrong department; the
            # correction reuses the id with a higher revision.
            wrong = (dept + 1 + rng.randrange(departments - 1)) % departments
            hire["payload"] = {"type": "employee", "dept": f"d{wrong}"}
            events.append(
                {
                    **hire,
                    "payload": {"type": "employee", "dept": f"d{dept}"},
                    "revision": 1,
                }
            )
        if rng.random() < transfer_fraction and joined + 2 < timeline:
            moved = rng.randrange(joined + 2, timeline)
            target = (dept + 1) % departments
            events.append(
                record(
                    name,
                    "updated",
                    moved,
                    {"dept": f"d{target}"},
                    source="hr",
                )
            )
        cursor = rng.randrange(joined, max(joined + 1, timeline))
        for _ in range(tasks_per_person):
            if cursor >= timeline:
                break
            task = f"t{rng.randrange(1000)}"
            correlation = f"task-{name}-{task}"
            duration = rng.randint(2, 10)
            events.append(
                record(
                    name,
                    "relationship_added",
                    cursor,
                    {"type": "assigned", "other": task},
                    source="tracker",
                    correlation_id=correlation,
                )
            )
            end = cursor + duration
            if end < timeline:
                events.append(
                    record(
                        name,
                        "relationship_removed",
                        end,
                        {"type": "assigned", "other": task},
                        source="tracker",
                        correlation_id=correlation,
                    )
                )
            cursor = end + rng.randint(1, max(2, timeline // 4))
    rng.shuffle(events)
    return events


def late_arrival_batches(
    events: list[dict[str, Any]],
    batches: int = 3,
    late_fraction: float = 0.2,
    seed: int = 0,
) -> list[list[dict[str, Any]]]:
    """Split a stream into delivery batches with genuine late arrivals.

    The events are sorted chronologically, cut into *batches* equal
    slices, and then a *late_fraction* of each non-final slice is
    deferred into a strictly later one — so every batch after the first
    contains events older than ones already delivered, forcing the
    consumer to split fragments it has already compiled (and, behind a
    server session, already chased and normalized).
    """
    if batches < 1:
        raise ValueError(f"batches must be >= 1, got {batches}")
    rng = random.Random(seed)
    ordered = sorted(events, key=lambda item: (item["timestamp"], item["id"]))
    size = max(1, (len(ordered) + batches - 1) // batches)
    slices = [ordered[i : i + size] for i in range(0, len(ordered), size)]
    while len(slices) < batches:
        slices.append([])
    for index in range(len(slices) - 1):
        kept = []
        for event in slices[index]:
            if rng.random() < late_fraction:
                slices[rng.randrange(index + 1, len(slices))].append(event)
            else:
                kept.append(event)
        slices[index] = kept
    return slices
