"""Workload builders: the paper's examples, domains, and generators."""

from repro.workloads.employment import (
    algorithm1_example_conjunctions,
    algorithm1_example_instance,
    employment_setting,
    employment_source_abstract,
    employment_source_concrete,
    salary_conjunction,
)
from repro.workloads.generators import (
    EmploymentWorkload,
    exchange_setting_copy,
    exchange_setting_decompose,
    exchange_setting_join,
    exchange_setting_org,
    nested_overlap_conjunctions,
    nested_overlap_instance,
    overlapping_salary_history,
    random_concrete_instance,
    random_employment_history,
    random_org_history,
    staircase_instance,
)
from repro.workloads.scenarios import (
    Scenario,
    medical_conflicting_scenario,
    medical_scenario,
    ride_share_scenario,
    scheduling_scenario,
)

__all__ = [
    "algorithm1_example_conjunctions",
    "algorithm1_example_instance",
    "employment_setting",
    "employment_source_abstract",
    "employment_source_concrete",
    "salary_conjunction",
    "EmploymentWorkload",
    "exchange_setting_copy",
    "exchange_setting_decompose",
    "exchange_setting_join",
    "exchange_setting_org",
    "nested_overlap_conjunctions",
    "nested_overlap_instance",
    "overlapping_salary_history",
    "random_concrete_instance",
    "random_employment_history",
    "random_org_history",
    "staircase_instance",
    "Scenario",
    "medical_conflicting_scenario",
    "medical_scenario",
    "ride_share_scenario",
    "scheduling_scenario",
]
