"""Seeded synthetic workload generators for benchmarks and stress tests.

The paper quantifies its algorithms asymptotically (Theorem 13's ``O(n²)``
fragment bound, the ``O(n log n)`` naïve normalization) rather than on a
measured corpus, so the benchmarks need synthetic workloads with
controllable size and overlap structure.  Everything here is deterministic
given the seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence

from repro.concrete.concrete_instance import ConcreteInstance
from repro.concrete.concrete_fact import concrete_fact
from repro.dependencies.mapping import DataExchangeSetting
from repro.relational.formulas import TemporalConjunction
from repro.relational.parser import parse_conjunction
from repro.relational.schema import Schema
from repro.temporal.interval import Interval, interval

__all__ = [
    "EmploymentWorkload",
    "random_employment_history",
    "random_org_history",
    "melting_org_history",
    "nested_overlap_instance",
    "overlapping_salary_history",
    "nested_overlap_conjunctions",
    "staircase_instance",
    "random_concrete_instance",
    "triangle_graph_instance",
    "exchange_setting_copy",
    "exchange_setting_join",
    "exchange_setting_org",
    "exchange_setting_decompose",
    "exchange_setting_triangle",
]


# ---------------------------------------------------------------------------
# Employment-style histories (the paper's motivating domain, scaled up)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class EmploymentWorkload:
    """A generated employment history plus its generation parameters."""

    instance: ConcreteInstance
    people: int
    timeline: int
    seed: int

    @property
    def size(self) -> int:
        return len(self.instance)


def random_employment_history(
    people: int,
    timeline: int = 40,
    companies: int = 8,
    salary_levels: int = 12,
    seed: int = 0,
) -> EmploymentWorkload:
    """A coalesced E+/S+ history: job switches and salary raises.

    Each person holds a chain of jobs over ``[0, timeline)`` (the last one
    open-ended with probability 1/2) and a chain of salary periods that
    changes value on each switch, so the instance is coalesced by
    construction.
    """
    rng = random.Random(seed)
    facts = []
    for person_id in range(people):
        name = f"p{person_id}"
        # employment chain
        cursor = rng.randrange(0, max(1, timeline // 4))
        previous_company: int | None = None
        while cursor < timeline:
            duration = rng.randint(2, max(3, timeline // 3))
            end = cursor + duration
            choices = [c for c in range(companies) if c != previous_company]
            company = rng.choice(choices)
            open_ended = end >= timeline and rng.random() < 0.5
            stamp = interval(cursor) if open_ended else interval(
                cursor, min(end, timeline)
            )
            facts.append(
                concrete_fact("E", name, f"co{company}", interval=stamp)
            )
            previous_company = company
            if stamp.is_unbounded:
                break
            cursor = stamp.end + rng.randint(0, 2)  # type: ignore[operator]
        # salary chain (independent periods, value changes each period)
        cursor = rng.randrange(0, max(1, timeline // 3))
        previous_level: int | None = None
        while cursor < timeline:
            duration = rng.randint(3, max(4, timeline // 2))
            end = cursor + duration
            choices = [s for s in range(salary_levels) if s != previous_level]
            level = rng.choice(choices)
            open_ended = end >= timeline and rng.random() < 0.5
            stamp = interval(cursor) if open_ended else interval(
                cursor, min(end, timeline)
            )
            facts.append(
                concrete_fact("S", name, f"{10 + level}k", interval=stamp)
            )
            previous_level = level
            if stamp.is_unbounded:
                break
            cursor = stamp.end + rng.randint(1, 3)  # type: ignore[operator]
    return EmploymentWorkload(
        instance=ConcreteInstance(facts),
        people=people,
        timeline=timeline,
        seed=seed,
    )


def random_org_history(
    people: int,
    timeline: int = 256,
    departments: int | None = None,
    tasks_per_person: int = 3,
    seed: int = 0,
) -> EmploymentWorkload:
    """An org chart with slow reference data and fast task churn.

    ``Dept(d, mgr)`` and ``Emp(e, d)`` are long-lived (departments exist
    from time 0, people join once and stay), while each person works
    through a chain of short ``Task(e, t)`` assignments — so almost every
    region boundary of the abstract view comes from a task starting or
    ending, and adjacent region snapshots differ by one or two ``Task``
    facts while the large ``Dept ⋈ Emp`` join is unchanged.  This is the
    regime the incremental cross-region chase targets (see
    :func:`exchange_setting_org` for the matching mapping): the heavy
    join tgd replays verbatim between almost all adjacent regions.
    """
    rng = random.Random(seed)
    departments = departments or max(4, people // 8)
    facts = []
    for department in range(departments):
        facts.append(
            concrete_fact(
                "Dept",
                f"d{department}",
                f"mgr{department}",
                interval=interval(0),
            )
        )
    for person_id in range(people):
        name = f"p{person_id}"
        joined = rng.randrange(0, max(1, timeline // 4))
        facts.append(
            concrete_fact(
                "Emp",
                name,
                f"d{rng.randrange(departments)}",
                interval=interval(joined),
            )
        )
        cursor = rng.randrange(0, timeline)
        for _ in range(tasks_per_person):
            if cursor >= timeline:
                break
            duration = rng.randint(2, 10)
            facts.append(
                concrete_fact(
                    "Task",
                    name,
                    f"t{rng.randrange(1000)}",
                    interval=interval(cursor, min(timeline, cursor + duration)),
                )
            )
            cursor += duration + rng.randint(1, max(2, timeline // 4))
    return EmploymentWorkload(
        instance=ConcreteInstance(facts),
        people=people,
        timeline=timeline,
        seed=seed,
    )


def melting_org_history(
    people: int,
    tasks_per_person: int = 2,
    departments: int | None = None,
) -> EmploymentWorkload:
    """An org chart that only *melts*: every fact starts at 0, ends apart.

    ``Dept`` reference facts are unbounded; each person's ``Emp`` fact and
    ``tasks_per_person`` ``Task`` facts all start at time 0 and end at
    pairwise-distinct points, so every region boundary of the abstract
    view is a *removal-only* delta — the regime where the incremental
    cross-region chase replays ≈100% of the previous region's firing log
    (nothing new ever appears, so no live matches and no deviations).
    Task names are unique per ``(person, slot)``, so the key egd of
    :func:`exchange_setting_org` never fires — fully-replayed regions are
    also egd-free, which is what the copy-on-write region results exploit.
    Fully deterministic: no RNG is involved.
    """
    departments = departments or max(4, people // 8)
    width = tasks_per_person + 1
    facts = []
    for department in range(departments):
        facts.append(
            concrete_fact(
                "Dept",
                f"d{department}",
                f"mgr{department}",
                interval=interval(0),
            )
        )
    for person_id in range(people):
        name = f"p{person_id}"
        base = 4 + width * person_id
        facts.append(
            concrete_fact(
                "Emp",
                name,
                f"d{person_id % departments}",
                interval=interval(0, base),
            )
        )
        for slot in range(tasks_per_person):
            facts.append(
                concrete_fact(
                    "Task",
                    name,
                    f"t{person_id}_{slot}",
                    interval=interval(0, base + 1 + slot),
                )
            )
    return EmploymentWorkload(
        instance=ConcreteInstance(facts),
        people=people,
        timeline=4 + width * people,
        seed=0,
    )


def overlapping_salary_history(
    people: int,
    spans: int,
    companies: int = 8,
    salary_levels: int = 12,
    step: int = 3,
    overlap: int = 2,
    churn: int = 0,
) -> EmploymentWorkload:
    """Dense E+/S+ careers driving the salary join's overlap structure.

    Per person, ``spans`` employment facts form a staircase with *overlap*
    points of slack between consecutive jobs (``E_i = [i·step,
    i·step+step+overlap)``, companies cycling so the chain stays
    coalesced), while ``spans`` salary periods tile the same timeline
    without overlapping each other (``S_i = [i·step+1, (i+1)·step+1)``) —
    so at most one salary holds at any snapshot and the c-chase never has
    to equate two constants.  Every ``E_i`` overlaps two or three salary
    periods, which chains the per-person ``E ⋈ S`` value-equivalence
    group into one long component: the group is as large as the person's
    whole history, but each fact only fragments at the handful of
    endpoints falling inside its own stamp, keeping the normalized output
    *linear* in the input.  That shape — big overlap groups, small
    fragment fan-out — is exactly where per-pair overlap enumeration is
    quadratically slower than an endpoint sweep.

    ``churn > 0`` cycles the company of person 0's first *churn* jobs by
    one, modelling a revision of a single person's history between two
    runs: every other person's value-equivalence group is unchanged, the
    regime fragment-level incremental normalization replays.
    """
    facts = []
    for person_id in range(people):
        name = f"p{person_id}"
        for index in range(spans):
            base = index * step
            shift = 1 if person_id == 0 and index < churn else 0
            facts.append(
                concrete_fact(
                    "E",
                    name,
                    f"co{(index + shift) % companies}",
                    interval=Interval(base, base + step + overlap),
                )
            )
            facts.append(
                concrete_fact(
                    "S",
                    name,
                    f"{10 + index % salary_levels}k",
                    interval=Interval(base + 1, base + step + 1),
                )
            )
    return EmploymentWorkload(
        instance=ConcreteInstance(facts),
        people=people,
        timeline=spans * step + overlap,
        seed=0,  # fully deterministic: no RNG is involved
    )


# ---------------------------------------------------------------------------
# Adversarial overlap structures (Theorem 13's worst case)
# ---------------------------------------------------------------------------


def nested_overlap_instance(n: int, relation: str = "R") -> ConcreteInstance:
    """``n`` facts with pairwise-overlapping *nested* stamps.

    Fact ``i`` is ``R+(a_i, [i, 2n−i))``: every pair of stamps overlaps
    and all ``2n`` endpoints are distinct, so normalizing w.r.t.
    ``R+(x,t1) ∧ R+(y,t2)`` fragments every fact at (almost) every
    endpoint — the Theorem 13 worst case with ``Θ(n²)`` output facts.
    """
    return ConcreteInstance(
        concrete_fact(relation, f"a{i}", interval=interval(i, 2 * n - i))
        for i in range(n)
    )


def nested_overlap_conjunctions(relation: str = "R") -> tuple[TemporalConjunction, ...]:
    """The pair conjunction driving the worst case: ``R(x) ∧ R(y)``."""
    return (
        TemporalConjunction.from_conjunction(
            parse_conjunction(f"{relation}(x) & {relation}(y)")
        ),
    )


def staircase_instance(
    n: int, overlap: int = 1, relation: str = "R"
) -> ConcreteInstance:
    """``n`` facts whose stamps overlap only with their neighbours.

    Fact ``i`` spans ``[i·step, i·step + step + overlap)``: each stamp
    intersects the next one by *overlap* points.  With the pair
    conjunction this fragments each fact into at most 3 pieces — a linear
    regime contrasting the nested worst case.
    """
    step = overlap + 1
    return ConcreteInstance(
        concrete_fact(
            relation,
            f"a{i}",
            interval=interval(i * step, i * step + step + overlap),
        )
        for i in range(n)
    )


# ---------------------------------------------------------------------------
# Cyclic join structures (worst-case-optimal join territory)
# ---------------------------------------------------------------------------


def triangle_graph_instance(
    spokes: int,
    closures: int | None = None,
    relation: str = "R",
) -> ConcreteInstance:
    """A hub-and-spoke digraph whose triangles all pass through the hub.

    ``spokes`` in-edges ``R(u_i, hub)`` and ``spokes`` out-edges
    ``R(hub, w_j)`` meet at one high-degree vertex; ``closures`` back
    edges ``R(w_j, u_j)`` (default ``spokes // 4``) close that many
    triangles ``u_j → hub → w_j → u_j``.  The triangle body
    ``R(x,y) ∧ R(y,z) ∧ R(z,x)`` then has ``Θ(spokes²)`` length-2 paths
    through the hub but only ``Θ(closures)`` closing edges — the
    canonical skew shape where a pairwise (flat) join enumerates a
    quadratic intermediate while a worst-case-optimal join stays near
    the output size.  All edges share one unbounded stamp, so the
    temporal machinery adds a single region and the join cost dominates.
    Fully deterministic: no RNG is involved.
    """
    closures = spokes // 4 if closures is None else closures
    stamp = interval(0)
    facts = []
    for index in range(spokes):
        facts.append(
            concrete_fact(relation, f"u{index}", "hub", interval=stamp)
        )
        facts.append(
            concrete_fact(relation, "hub", f"w{index}", interval=stamp)
        )
    for index in range(closures):
        facts.append(
            concrete_fact(relation, f"w{index}", f"u{index}", interval=stamp)
        )
    return ConcreteInstance(facts)


# ---------------------------------------------------------------------------
# Generic random instances
# ---------------------------------------------------------------------------


def random_concrete_instance(
    n_facts: int,
    relations: Sequence[tuple[str, int]] = (("R", 2),),
    domain_size: int = 20,
    timeline: int = 50,
    max_duration: int = 10,
    open_ended_probability: float = 0.1,
    seed: int = 0,
) -> ConcreteInstance:
    """Uniformly random facts over the given ``(name, data-arity)`` specs.

    The result is *not* necessarily coalesced — call ``.coalesce()`` when
    the paper's source assumption is needed.
    """
    rng = random.Random(seed)
    result = ConcreteInstance()
    while len(result) < n_facts:
        relation, arity = relations[rng.randrange(len(relations))]
        values = [f"v{rng.randrange(domain_size)}" for _ in range(arity)]
        start = rng.randrange(timeline)
        if rng.random() < open_ended_probability:
            stamp: Interval = interval(start)
        else:
            stamp = interval(start, start + rng.randint(1, max_duration))
        result.add(concrete_fact(relation, *values, interval=stamp))
    return result


# ---------------------------------------------------------------------------
# Mapping families
# ---------------------------------------------------------------------------


def exchange_setting_copy() -> DataExchangeSetting:
    """Plain copy: ``R(x, y) → T(x, y)``."""
    return DataExchangeSetting.create(
        Schema.of(R=("A", "B")),
        Schema.of(T=("A", "B")),
        st_tgds=["R(x, y) -> T(x, y)"],
    )


def exchange_setting_join() -> DataExchangeSetting:
    """The employment shape: copy with an unknown, join, key egd."""
    return DataExchangeSetting.create(
        Schema.of(E=("Name", "Company"), S=("Name", "Salary")),
        Schema.of(Emp=("Name", "Company", "Salary")),
        st_tgds=[
            "E(n, c) -> EXISTS s . Emp(n, c, s)",
            "E(n, c) & S(n, s) -> Emp(n, c, s)",
        ],
        egds=["Emp(n, c, s) & Emp(n, c, s2) -> s = s2"],
    )


def exchange_setting_org() -> DataExchangeSetting:
    """The org-chart shape for :func:`random_org_history`.

    A heavy reporting join over the slow-changing relations, a
    null-minting tgd over the churny one, and a key egd on the minted
    sessions:

    * ``σ1 : Dept(d, m) ∧ Emp(e, d) → Reports(e, m)``
    * ``σ2 : Task(e, t) → ∃s Log(e, t, s)``
    * ``ε1 : Log(e, t, s) ∧ Log(e, t, s2) → s = s2``
    """
    return DataExchangeSetting.create(
        Schema.of(
            Dept=("Dept", "Manager"),
            Emp=("Name", "Dept"),
            Task=("Name", "Task"),
        ),
        Schema.of(
            Reports=("Name", "Manager"),
            Log=("Name", "Task", "Session"),
        ),
        st_tgds=[
            "Dept(d, m) & Emp(e, d) -> Reports(e, m)",
            "Task(e, t) -> EXISTS s . Log(e, t, s)",
        ],
        egds=["Log(e, t, s) & Log(e, t, s2) -> s = s2"],
    )


def exchange_setting_triangle() -> DataExchangeSetting:
    """Triangle listing as an exchange: a 3-atom *cyclic* tgd lhs.

    ``R(x, y) ∧ R(y, z) ∧ R(z, x) → Tri(x, y, z)`` — the smallest body
    the flat written-order join handles quadratically on skewed inputs
    (see :func:`triangle_graph_instance`) and the target shape for the
    worst-case-optimal join.  No egds: the benchmark isolates join cost.
    """
    return DataExchangeSetting.create(
        Schema.of(R=("From", "To")),
        Schema.of(Tri=("A", "B", "C")),
        st_tgds=["R(x, y) & R(y, z) & R(z, x) -> Tri(x, y, z)"],
    )


def exchange_setting_decompose() -> DataExchangeSetting:
    """Vertical decomposition with an invented key:
    ``F(n, c, s) → ∃k (Works(k, n, c) ∧ Earns(k, s))`` plus a key egd."""
    return DataExchangeSetting.create(
        Schema.of(F=("Name", "Company", "Salary")),
        Schema.of(Works=("Key", "Name", "Company"), Earns=("Key", "Salary")),
        st_tgds=["F(n, c, s) -> EXISTS k . Works(k, n, c) & Earns(k, s)"],
        egds=["Works(k, n, c) & Works(k2, n, c) -> k = k2"],
    )
