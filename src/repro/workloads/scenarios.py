"""Domain scenarios from the paper's introduction: medicine and planning.

The introduction motivates temporal data exchange with "planning,
scheduling, medical and fraud detection systems".  These builders provide
two fully-worked domains — hospital records and project staffing — used
by the domain examples and the integration tests.  Each returns a setting
together with a coalesced concrete source instance.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.concrete.concrete_instance import ConcreteInstance
from repro.concrete.concrete_fact import concrete_fact
from repro.dependencies.mapping import DataExchangeSetting
from repro.relational.schema import Schema
from repro.temporal.interval import interval

__all__ = [
    "Scenario",
    "medical_scenario",
    "medical_conflicting_scenario",
    "scheduling_scenario",
    "ride_share_scenario",
]


@dataclass(frozen=True)
class Scenario:
    """A named data exchange task: setting plus concrete source."""

    name: str
    setting: DataExchangeSetting
    source: ConcreteInstance
    description: str = ""


def _medical_setting() -> DataExchangeSetting:
    source_schema = Schema.of(
        Adm=("Patient", "Ward"),
        Diag=("Patient", "Condition"),
        Doc=("Patient", "Physician"),
    )
    target_schema = Schema.of(
        Case=("Patient", "Ward", "Condition"),
        Attending=("Patient", "Physician"),
    )
    return DataExchangeSetting.create(
        source_schema,
        target_schema,
        st_tgds=[
            # Every admission opens a case, condition possibly unknown.
            "Adm(p, w) -> EXISTS c . Case(p, w, c)",
            # A diagnosis during an admission fixes the case's condition.
            "Adm(p, w) & Diag(p, c) -> Case(p, w, c)",
            # The treating physician carries over.
            "Doc(p, d) -> Attending(p, d)",
        ],
        egds=[
            # One condition per patient and ward at a time.
            "Case(p, w, c) & Case(p, w, c2) -> c = c2",
            # One attending physician per patient at a time.
            "Attending(p, d) & Attending(p, d2) -> d = d2",
        ],
    )


def medical_scenario() -> Scenario:
    """Hospital admissions/diagnoses exchanged into a case registry.

    Alice is admitted to cardiology for days 1–9 but her diagnosis only
    lands on day 4 — the exchanged case carries an interval-annotated
    unknown for days 1–3.  Bob's record exercises the open-ended case.
    """
    source = ConcreteInstance(
        [
            concrete_fact("Adm", "alice", "cardio", interval=interval(1, 10)),
            concrete_fact("Diag", "alice", "arrhythmia", interval=interval(4, 10)),
            concrete_fact("Doc", "alice", "dr_wu", interval=interval(1, 10)),
            concrete_fact("Adm", "bob", "neuro", interval=interval(6)),
            concrete_fact("Diag", "bob", "migraine", interval=interval(8, 12)),
            concrete_fact("Doc", "bob", "dr_silva", interval=interval(6, 9)),
            concrete_fact("Doc", "bob", "dr_kaur", interval=interval(9)),
        ]
    )
    return Scenario(
        name="medical",
        setting=_medical_setting(),
        source=source,
        description="admissions + diagnoses → case registry (with unknowns)",
    )


def medical_conflicting_scenario() -> Scenario:
    """A variant whose exchange must FAIL: two diagnoses overlap in time.

    Alice is recorded with both 'arrhythmia' and 'flutter' during days
    5–7 while admitted, so the case egd equates two distinct constants —
    by Theorem 19(2) no solution exists, and the c-chase reports failure.
    """
    base = medical_scenario().source.copy()
    base.add(
        concrete_fact("Diag", "alice", "flutter", interval=interval(5, 8))
    )
    return Scenario(
        name="medical-conflict",
        setting=_medical_setting(),
        source=base,
        description="overlapping contradictory diagnoses → chase failure",
    )


def scheduling_scenario() -> Scenario:
    """Project-planning data exchanged into a staffing schema.

    Tasks have phases and assignments; the target wants, per engineer, a
    staffing row with the project (known) and the rate (often unknown —
    only contracted engineers have one).
    """
    source_schema = Schema.of(
        Task=("Project", "Phase"),
        Assigned=("Engineer", "Project"),
        Rate=("Engineer", "Fee"),
    )
    target_schema = Schema.of(
        Staff=("Engineer", "Project", "Fee"),
        Active=("Project", "Phase"),
    )
    setting = DataExchangeSetting.create(
        source_schema,
        target_schema,
        st_tgds=[
            "Assigned(e, p) -> EXISTS f . Staff(e, p, f)",
            "Assigned(e, p) & Rate(e, f) -> Staff(e, p, f)",
            "Task(p, ph) -> Active(p, ph)",
        ],
        egds=[
            "Staff(e, p, f) & Staff(e, p, f2) -> f = f2",
            "Active(p, ph) & Active(p, ph2) -> ph = ph2",
        ],
    )
    source = ConcreteInstance(
        [
            concrete_fact("Task", "apollo", "design", interval=interval(0, 6)),
            concrete_fact("Task", "apollo", "build", interval=interval(6, 14)),
            concrete_fact("Task", "apollo", "test", interval=interval(14, 18)),
            concrete_fact("Task", "hermes", "design", interval=interval(4, 9)),
            concrete_fact("Task", "hermes", "build", interval=interval(9)),
            concrete_fact("Assigned", "mira", "apollo", interval=interval(0, 14)),
            concrete_fact("Assigned", "mira", "hermes", interval=interval(14)),
            concrete_fact("Assigned", "noor", "apollo", interval=interval(2, 18)),
            concrete_fact("Assigned", "ravi", "hermes", interval=interval(4)),
            concrete_fact("Rate", "mira", "120", interval=interval(0, 10)),
            concrete_fact("Rate", "mira", "140", interval=interval(10)),
            concrete_fact("Rate", "ravi", "95", interval=interval(6)),
        ]
    )
    return Scenario(
        name="scheduling",
        setting=setting,
        source=source,
        description="tasks + assignments → staffing with partly-unknown fees",
    )


def ride_share_scenario() -> Scenario:
    """Taxi/bicycle rides — the temporality-of-facts domain of the intro.

    Vehicle deployments and driver shifts are exchanged into a fleet
    log; fares only exist for metered vehicles, so bike rows carry
    interval-annotated unknowns, and the one-driver-per-vehicle egd
    merges shift unknowns with recorded assignments.
    """
    source_schema = Schema.of(
        Deployed=("Vehicle", "Zone"),
        Shift=("Driver", "Vehicle"),
        Fare=("Vehicle", "Rate"),
    )
    target_schema = Schema.of(
        Fleet=("Vehicle", "Zone", "Rate"),
        Operates=("Vehicle", "Driver"),
    )
    setting = DataExchangeSetting.create(
        source_schema,
        target_schema,
        st_tgds=[
            "Deployed(v, z) -> EXISTS r . Fleet(v, z, r)",
            "Deployed(v, z) & Fare(v, r) -> Fleet(v, z, r)",
            "Shift(d, v) -> Operates(v, d)",
        ],
        egds=[
            "Fleet(v, z, r) & Fleet(v, z, r2) -> r = r2",
            "Operates(v, d) & Operates(v, d2) -> d = d2",
        ],
    )
    source = ConcreteInstance(
        [
            concrete_fact("Deployed", "cab7", "downtown", interval=interval(0, 12)),
            concrete_fact("Deployed", "cab7", "airport", interval=interval(12)),
            concrete_fact("Deployed", "bike3", "riverside", interval=interval(2, 20)),
            concrete_fact("Fare", "cab7", "2.40", interval=interval(0, 8)),
            concrete_fact("Fare", "cab7", "3.10", interval=interval(8)),
            concrete_fact("Shift", "dana", "cab7", interval=interval(0, 9)),
            concrete_fact("Shift", "errol", "cab7", interval=interval(9)),
        ]
    )
    return Scenario(
        name="ride-share",
        setting=setting,
        source=source,
        description="taxi/bike deployments → fleet log with unmetered unknowns",
    )
