"""The paper's running example as reusable builders.

Figures 1 and 4 describe one temporal database about Ada's and Bob's
employment; Example 1/6 give the schema mapping.  These builders are the
single source of truth used by the paper-figure tests, the figure
benchmarks and the quickstart example.
"""

from __future__ import annotations

from repro.abstract_view.abstract_instance import AbstractInstance
from repro.abstract_view.semantics import semantics
from repro.concrete.concrete_instance import ConcreteInstance
from repro.concrete.concrete_fact import concrete_fact
from repro.dependencies.mapping import DataExchangeSetting
from repro.relational.formulas import TemporalConjunction
from repro.relational.parser import parse_conjunction
from repro.relational.schema import Schema
from repro.temporal.interval import interval

__all__ = [
    "employment_setting",
    "employment_source_concrete",
    "employment_source_abstract",
    "salary_conjunction",
    "algorithm1_example_instance",
    "algorithm1_example_conjunctions",
]


def employment_setting() -> DataExchangeSetting:
    """Example 1/6: copy employees, join in salaries, salary is unique.

    * ``σ1 : E(n,c) → ∃s Emp(n,c,s)``
    * ``σ2 : E(n,c) ∧ S(n,s) → Emp(n,c,s)``
    * ``ε1 : Emp(n,c,s) ∧ Emp(n,c,s') → s = s'``
    """
    source_schema = Schema.of(E=("Name", "Company"), S=("Name", "Salary"))
    target_schema = Schema.of(Emp=("Name", "Company", "Salary"))
    return DataExchangeSetting.create(
        source_schema,
        target_schema,
        st_tgds=[
            "E(n, c) -> EXISTS s . Emp(n, c, s)",
            "E(n, c) & S(n, s) -> Emp(n, c, s)",
        ],
        egds=["Emp(n, c, s) & Emp(n, c, s2) -> s = s2"],
    )


def employment_source_concrete() -> ConcreteInstance:
    """Figure 4: the coalesced concrete source instance ``Ic``."""
    return ConcreteInstance(
        [
            concrete_fact("E", "Ada", "IBM", interval=interval(2012, 2014)),
            concrete_fact("E", "Ada", "Google", interval=interval(2014)),
            concrete_fact("E", "Bob", "IBM", interval=interval(2013, 2018)),
            concrete_fact("S", "Ada", "18k", interval=interval(2013)),
            concrete_fact("S", "Bob", "13k", interval=interval(2015)),
        ]
    )


def employment_source_abstract() -> AbstractInstance:
    """Figure 1: the abstract view ``⟦Ic⟧`` of the same database."""
    return semantics(employment_source_concrete())


def salary_conjunction() -> TemporalConjunction:
    """``E+(n,c,t) ∧ S+(n,s,t)`` — the lhs of σ2+, Figure 5's Φ+."""
    return TemporalConjunction.from_conjunction(
        parse_conjunction("E(n, c) & S(n, s)")
    )


def algorithm1_example_instance() -> ConcreteInstance:
    """Figure 7 (Example 14): five facts over R+, P+, S+."""
    return ConcreteInstance(
        [
            concrete_fact("R", "a", interval=interval(5, 11)),
            concrete_fact("P", "a", interval=interval(8, 15)),
            concrete_fact("P", "b", interval=interval(20, 25)),
            concrete_fact("S", "a", interval=interval(7, 10)),
            concrete_fact("S", "b", interval=interval(18)),
        ]
    )


def algorithm1_example_conjunctions() -> tuple[TemporalConjunction, ...]:
    """Example 14's Φ+: ``R+(x,t) ∧ P+(y,t)`` and ``P+(x,t) ∧ S+(y,t)``."""
    return (
        TemporalConjunction.from_conjunction(parse_conjunction("R(x) & P(y)")),
        TemporalConjunction.from_conjunction(parse_conjunction("P(x) & S(y)")),
    )
