"""Schema mappings: s-t tgds, egds and the data exchange setting."""

from repro.dependencies.dependency import EGD, Dependency, SourceToTargetTGD
from repro.dependencies.mapping import DataExchangeSetting

__all__ = ["EGD", "Dependency", "SourceToTargetTGD", "DataExchangeSetting"]
