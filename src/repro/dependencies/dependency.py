"""Schema-mapping dependencies: s-t tgds and egds (paper, Section 2).

A *source-to-target tuple generating dependency* (s-t tgd) has the form
``∀x φ(x) → ∃y ψ(x, y)`` with φ over the source schema and ψ over the
target schema.  An *equality generating dependency* (egd) has the form
``∀x φ(x) → x1 = x2`` with φ over the target schema.

Both classes are non-temporal: they speak about one snapshot.  Their
concrete lifting σ+ augments every atom with one shared universally
quantified temporal variable ``t`` — the dependencies remain *implicitly
non-temporal* because ``t`` cannot relate distinct intervals
(Section 4, Example 6).  :meth:`lift` produces the lifted left-hand
side/right-hand side as :class:`~repro.relational.formulas.TemporalConjunction`
objects, which the c-chase and the normalization algorithms consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields

from repro.errors import FormulaError
from repro.relational.formulas import Conjunction, TemporalConjunction
from repro.relational.parser import parse_implication
from repro.relational.schema import Schema
from repro.relational.terms import Variable

__all__ = ["Dependency", "SourceToTargetTGD", "EGD"]


class Dependency:
    """Common base class for s-t tgds and egds."""

    lhs: Conjunction

    def lift_lhs(self, temporal_variable: Variable | None = None) -> TemporalConjunction:
        """The left-hand side of σ+: every atom carries the shared ``t``.

        The default-variable lifting is cached on the dependency — the
        c-chase asks for it on every run and every egd round, and a stable
        object keeps downstream caches (decoupled form, lifted atoms,
        search plans) warm.
        """
        if temporal_variable is not None:
            return TemporalConjunction.from_conjunction(self.lhs, temporal_variable)
        cached = self._lifted_lhs
        if cached is None:
            cached = TemporalConjunction.from_conjunction(self.lhs, None)
            object.__setattr__(self, "_lifted_lhs", cached)
        return cached  # type: ignore[return-value]

    def __getstate__(self) -> dict:
        # Identity fields only: the lifted-form caches hold conjunctions
        # whose own caches embed salted hashes; rebuild them lazily on
        # the other side of any pickle boundary.
        return {
            f.name: getattr(self, f.name)
            for f in fields(self)  # type: ignore[arg-type]
            if f.init
        }

    def __setstate__(self, state: dict) -> None:
        for name, value in state.items():
            object.__setattr__(self, name, value)
        for f in fields(self):  # type: ignore[arg-type]
            if not f.init:
                object.__setattr__(self, f.name, f.default)


@dataclass(frozen=True)
class SourceToTargetTGD(Dependency):
    """``∀x φ(x) → ∃y ψ(x, y)`` — a source-to-target tgd.

    *existential_variables* lists ``y``; every rhs variable must either
    occur in the lhs (universally quantified, exported) or be existential.
    """

    lhs: Conjunction
    rhs: Conjunction
    existential_variables: tuple[Variable, ...] = ()
    name: str = ""
    # lift_lhs / c-chase rhs-lifting caches (see Dependency.lift_lhs).
    _lifted_lhs: object = field(default=None, init=False, repr=False, compare=False)
    _lifted_rhs: object = field(default=None, init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        lhs_vars = self.lhs.variable_set()
        existential = frozenset(self.existential_variables)
        overlap = lhs_vars & existential
        if overlap:
            raise FormulaError(
                f"existential variables also occur in the lhs: {sorted(map(str, overlap))}"
            )
        for var in self.rhs.variables():
            if var not in lhs_vars and var not in existential:
                raise FormulaError(
                    f"rhs variable {var} is neither universal nor existential "
                    f"in tgd {self.lhs} -> {self.rhs}"
                )
        # Safety: every existential variable should actually appear in the rhs.
        rhs_vars = self.rhs.variable_set()
        for var in self.existential_variables:
            if var not in rhs_vars:
                raise FormulaError(
                    f"declared existential variable {var} does not occur in the rhs"
                )

    # -- accessors -----------------------------------------------------------
    @property
    def universal_variables(self) -> tuple[Variable, ...]:
        """The lhs variables (``x``), in first-occurrence order."""
        return self.lhs.variables()

    @property
    def exported_variables(self) -> tuple[Variable, ...]:
        """Lhs variables that also occur in the rhs."""
        rhs_vars = self.rhs.variable_set()
        return tuple(var for var in self.lhs.variables() if var in rhs_vars)

    def lift_rhs(self, temporal_variable: Variable | None = None) -> TemporalConjunction:
        """The right-hand side of σ+ (shared ``t`` on every atom)."""
        return TemporalConjunction.from_conjunction(self.rhs, temporal_variable)

    def validate_against(self, source_schema: Schema, target_schema: Schema) -> None:
        """Check φ over the source schema and ψ over the target schema."""
        self.lhs.validate_against(source_schema)
        self.rhs.validate_against(target_schema)

    # -- construction -----------------------------------------------------------
    @classmethod
    def parse(cls, text: str, name: str = "") -> "SourceToTargetTGD":
        """Parse e.g. ``"E(n,c) -> EXISTS s . Emp(n,c,s)"``.

        Existential variables may be declared with ``EXISTS`` or left
        implicit (any rhs-only variable is existential).
        """
        skeleton = parse_implication(text)
        if skeleton.is_equality or skeleton.rhs is None:
            raise FormulaError(f"not a tgd (rhs is an equality): {text!r}")
        return cls(
            lhs=skeleton.lhs,
            rhs=skeleton.rhs,
            existential_variables=skeleton.existential_variables,
            name=name,
        )

    def __str__(self) -> str:
        prefix = ""
        if self.existential_variables:
            bound = ", ".join(str(var) for var in self.existential_variables)
            prefix = f"∃{bound} . "
        return f"{self.lhs} → {prefix}{self.rhs}"


@dataclass(frozen=True)
class EGD(Dependency):
    """``∀x φ(x) → x1 = x2`` — an equality generating dependency."""

    lhs: Conjunction
    left_variable: Variable
    right_variable: Variable
    name: str = ""
    # lift_lhs cache (see Dependency.lift_lhs).
    _lifted_lhs: object = field(default=None, init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        lhs_vars = self.lhs.variable_set()
        for var in (self.left_variable, self.right_variable):
            if var not in lhs_vars:
                raise FormulaError(
                    f"equated variable {var} does not occur in the egd lhs {self.lhs}"
                )
        if self.left_variable == self.right_variable:
            raise FormulaError(
                f"egd equates a variable with itself: {self.left_variable}"
            )

    def validate_against(self, target_schema: Schema) -> None:
        """Egds constrain the target schema only."""
        self.lhs.validate_against(target_schema)

    @classmethod
    def parse(cls, text: str, name: str = "") -> "EGD":
        """Parse e.g. ``"Emp(n,c,s) & Emp(n,c,s2) -> s = s2"``."""
        skeleton = parse_implication(text)
        if not skeleton.is_equality:
            raise FormulaError(f"not an egd (rhs is not an equality): {text!r}")
        assert skeleton.equality is not None
        left, right = skeleton.equality
        return cls(lhs=skeleton.lhs, left_variable=left, right_variable=right, name=name)

    def __str__(self) -> str:
        return f"{self.lhs} → {self.left_variable} = {self.right_variable}"
