"""The data exchange setting ``M = (RS, RT, Σst, Σeg)`` (paper, Section 2).

:class:`DataExchangeSetting` bundles disjoint source and target schemas
with the s-t tgds and egds.  The same object serves both views:

* the **abstract** chase uses the non-temporal dependencies directly on
  snapshots;
* the **concrete** c-chase uses their lifting ``M+`` — each dependency
  augmented with the shared temporal variable ``t`` — obtained through
  :meth:`lifted_st_lhs_conjunctions` / :meth:`lifted_egd_lhs_conjunctions`,
  which also feed the normalization algorithms (the instance must be
  normalized w.r.t. the lhs of Σst before s-t steps and w.r.t. the lhs of
  Σeg before egd steps).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.errors import SchemaError
from repro.dependencies.dependency import EGD, SourceToTargetTGD
from repro.relational.formulas import TemporalConjunction
from repro.relational.schema import Schema

__all__ = ["DataExchangeSetting"]


@dataclass(frozen=True)
class DataExchangeSetting:
    """A schema mapping: source/target schemas, s-t tgds and egds."""

    source_schema: Schema
    target_schema: Schema
    st_tgds: tuple[SourceToTargetTGD, ...] = ()
    egds: tuple[EGD, ...] = ()

    def __post_init__(self) -> None:
        # The paper requires disjoint source and target schemas.
        overlap = set(self.source_schema.relation_names()) & set(
            self.target_schema.relation_names()
        )
        if overlap:
            raise SchemaError(
                f"source and target schemas must be disjoint; shared: {sorted(overlap)}"
            )
        for tgd in self.st_tgds:
            tgd.validate_against(self.source_schema, self.target_schema)
        for egd in self.egds:
            egd.validate_against(self.target_schema)

    # -- construction ---------------------------------------------------------
    @classmethod
    def create(
        cls,
        source_schema: Schema,
        target_schema: Schema,
        st_tgds: Iterable[SourceToTargetTGD | str] = (),
        egds: Iterable[EGD | str] = (),
    ) -> "DataExchangeSetting":
        """Build a setting, parsing any dependency given as text."""
        parsed_tgds = tuple(
            SourceToTargetTGD.parse(item) if isinstance(item, str) else item
            for item in st_tgds
        )
        parsed_egds = tuple(
            EGD.parse(item) if isinstance(item, str) else item for item in egds
        )
        return cls(source_schema, target_schema, parsed_tgds, parsed_egds)

    # -- lifted (concrete) forms ------------------------------------------------
    def lifted_st_lhs_conjunctions(self) -> tuple[TemporalConjunction, ...]:
        """The lhs of every σ+ in Σ+st — the Φ+ for source normalization."""
        return tuple(tgd.lift_lhs() for tgd in self.st_tgds)  # cached per tgd

    def lifted_egd_lhs_conjunctions(self) -> tuple[TemporalConjunction, ...]:
        """The lhs of every σ+ in Σ+eg — the Φ+ for target normalization."""
        return tuple(egd.lift_lhs() for egd in self.egds)  # cached per egd

    def lifted_source_schema(self) -> Schema:
        """``R+S``: the source schema with the temporal attribute added."""
        return self.source_schema.lift()

    def lifted_target_schema(self) -> Schema:
        """``R+T``: the target schema with the temporal attribute added."""
        return self.target_schema.lift()

    # -- conveniences --------------------------------------------------------------
    @property
    def dependencies(self) -> tuple[SourceToTargetTGD | EGD, ...]:
        return self.st_tgds + self.egds

    def target_relations_used(self) -> frozenset[str]:
        """Target relations mentioned by some dependency."""
        used: set[str] = set()
        for tgd in self.st_tgds:
            used.update(tgd.rhs.relations())
        for egd in self.egds:
            used.update(egd.lhs.relations())
        return frozenset(used)

    def __getstate__(self) -> dict:
        # Identity fields only.  The chase engines stash derived task
        # caches (e.g. _snapshot_egd_tasks / _concrete_egd_tasks) in the
        # setting's __dict__; those hold compiled per-process state and
        # must not cross a pickle boundary.
        return {
            "source_schema": self.source_schema,
            "target_schema": self.target_schema,
            "st_tgds": self.st_tgds,
            "egds": self.egds,
        }

    def __setstate__(self, state: dict) -> None:
        for name, value in state.items():
            object.__setattr__(self, name, value)

    def describe(self) -> str:
        """A multi-line human-readable rendering of the setting."""
        lines = [
            f"source schema: {self.source_schema}",
            f"target schema: {self.target_schema}",
        ]
        for index, tgd in enumerate(self.st_tgds, start=1):
            label = tgd.name or f"σ{index}"
            lines.append(f"  s-t tgd {label}: {tgd}")
        for index, egd in enumerate(self.egds, start=1):
            label = egd.name or f"ε{index}"
            lines.append(f"  egd {label}: {egd}")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.describe()
