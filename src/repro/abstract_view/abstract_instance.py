"""Finite representations of abstract temporal instances (Section 2).

An abstract instance is conceptually an *infinite* sequence of snapshots
``⟨db0, db1, …⟩`` obeying the finite change condition.  We represent it
finitely as a set of **template facts** — interval-stamped facts whose
terms are:

* constants — the same value in every covered snapshot;
* *rigid* labeled nulls — the same unknown in every covered snapshot
  (instance ``J1`` of Figure 2);
* interval-annotated nulls — a *fresh* unknown per covered snapshot
  (instance ``J2`` of Figure 2): at snapshot ℓ the null materializes as
  ``Π_ℓ(N^[s,e)) = N@ℓ``.

``snapshot(ℓ)`` materializes the relational instance at any time point,
and the representation makes the finite change condition hold by
construction: beyond the largest finite endpoint all snapshots are
"the same up to the index ℓ".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.errors import InstanceError, TemporalError
from repro.relational.fact import Fact
from repro.relational.instance import Instance
from repro.relational.terms import (
    AnnotatedNull,
    Constant,
    GroundTerm,
    LabeledNull,
    term_sort_key,
)
from repro.temporal.interval import Interval
from repro.temporal.interval_set import IntervalSet
from repro.temporal.timepoint import INFINITY, Infinity, TimePoint

__all__ = ["TemplateFact", "AbstractInstance"]


@dataclass(frozen=True, slots=True)
class TemplateFact:
    """One interval-stamped fact template of an abstract instance."""

    relation: str
    args: tuple[GroundTerm, ...]
    interval: Interval
    # Cache for at(): templates without annotated nulls project to the
    # same snapshot fact at every covered point.
    _pointless: object = field(default=None, init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if not self.relation:
            raise InstanceError("template fact relation name must be non-empty")
        for value in self.args:
            if isinstance(value, AnnotatedNull):
                if value.annotation != self.interval:
                    raise InstanceError(
                        f"per-snapshot null {value} must be annotated with the "
                        f"template's interval {self.interval}"
                    )
            elif isinstance(value, LabeledNull):
                # '@' is reserved for projected per-snapshot nulls; a rigid
                # null named like a projection would defeat the finite
                # region-probing used by snapshot comparison and hom search.
                if "@" in value.name:
                    raise InstanceError(
                        f"rigid null names must not contain '@': {value.name!r}"
                    )
            elif not isinstance(value, Constant):
                raise InstanceError(
                    f"template arguments must be constants, rigid nulls or "
                    f"annotated nulls, got {value!r}"
                )

    @classmethod
    def make(
        cls, relation: str, args: tuple[GroundTerm, ...], interval: Interval
    ) -> "TemplateFact":
        """Trusted constructor: the caller guarantees the construction
        invariants (annotated nulls carry *interval*, rigid null names
        are '@'-free).  The chase-result merge builds thousands of
        templates from values that satisfy them by construction."""
        self = object.__new__(cls)
        object.__setattr__(self, "relation", relation)
        object.__setattr__(self, "args", args)
        object.__setattr__(self, "interval", interval)
        object.__setattr__(self, "_pointless", None)
        return self

    def at(self, point: int) -> Fact:
        """The snapshot-level fact at time ℓ."""
        if point not in self.interval:
            raise TemporalError(f"{point} outside {self.interval} in {self}")
        cached = self._pointless
        if cached is not None:
            return cached  # type: ignore[return-value]
        args = tuple(
            v.project(point) if isinstance(v, AnnotatedNull) else v
            for v in self.args
        )
        result = Fact(self.relation, args)
        if not any(isinstance(v, AnnotatedNull) for v in self.args):
            # Point-independent: constants and rigid nulls project to
            # themselves, so every covered point yields this same fact.
            object.__setattr__(self, "_pointless", result)
        return result

    def __getstate__(self) -> tuple:
        # Identity only: the at() cache holds a Fact whose cached hash
        # is salted per process and must not cross a pickle boundary.
        return (self.relation, self.args, self.interval)

    def __setstate__(self, state: tuple) -> None:
        relation, args, interval = state
        object.__setattr__(self, "relation", relation)
        object.__setattr__(self, "args", args)
        object.__setattr__(self, "interval", interval)
        object.__setattr__(self, "_pointless", None)

    def rigid_nulls(self) -> tuple[LabeledNull, ...]:
        return tuple(v for v in self.args if isinstance(v, LabeledNull))

    def per_snapshot_nulls(self) -> tuple[AnnotatedNull, ...]:
        return tuple(v for v in self.args if isinstance(v, AnnotatedNull))

    def sort_key(self) -> tuple:
        return (
            self.relation,
            tuple(term_sort_key(v) for v in self.args),
            self.interval.sort_key(),
        )

    def __str__(self) -> str:
        rendered = ", ".join(str(v) for v in self.args)
        return f"{self.relation}({rendered}) @ {self.interval}"


class AbstractInstance:
    """An abstract temporal instance as a finite set of template facts."""

    __slots__ = ("_templates_source", "_templates_cache")

    def __init__(self, templates: Iterable[TemplateFact] = ()):
        self._templates_source: tuple[Iterable[TemplateFact], ...] | None = None
        self._templates_cache: frozenset[TemplateFact] = frozenset(templates)

    @property
    def _templates(self) -> frozenset[TemplateFact]:
        found = self._templates_cache
        if found is None:
            pieces = self._templates_source
            self._templates_source = None
            found = frozenset(
                template for piece in pieces for template in piece
            )
            self._templates_cache = found
        return found

    def __getstate__(self) -> frozenset[TemplateFact]:
        return self._templates

    def __setstate__(self, state: frozenset[TemplateFact]) -> None:
        self._templates_source = None
        self._templates_cache = state

    # -- constructors -----------------------------------------------------------
    @classmethod
    def deferred(
        cls, pieces: tuple[Iterable[TemplateFact], ...]
    ) -> "AbstractInstance":
        """Build an instance whose template set materializes on first use.

        *pieces* are iterated (once, lazily) and unioned when any
        structural operation first needs the set.  The parallel
        scheduler hands wire-mapped shard sections here so a caller
        that only serializes or samples the result never pays for
        decoding every merged template.
        """
        found = cls.__new__(cls)
        found._templates_source = pieces
        found._templates_cache = None
        return found

    @classmethod
    def from_snapshot_runs(
        cls, runs: Iterable[tuple[Instance, Interval]]
    ) -> "AbstractInstance":
        """Build from (snapshot, interval) runs with *rigid* semantics.

        Every fact of the snapshot holds — with the same constants and the
        same (rigid) nulls — at every time point of the interval.  This is
        how instances like ``J1`` of Figure 2 are written down.
        """
        templates: list[TemplateFact] = []
        for snapshot, stamp in runs:
            for item in snapshot.facts():
                templates.append(TemplateFact(item.relation, item.args, stamp))
        return cls(templates)

    @classmethod
    def empty(cls) -> "AbstractInstance":
        return cls(())

    # -- structure ---------------------------------------------------------------
    @property
    def templates(self) -> frozenset[TemplateFact]:
        return self._templates

    def __iter__(self) -> Iterator[TemplateFact]:
        return iter(sorted(self._templates, key=TemplateFact.sort_key))

    def __len__(self) -> int:
        return len(self._templates)

    def __bool__(self) -> bool:
        return bool(self._templates)

    def relation_names(self) -> tuple[str, ...]:
        return tuple(sorted({t.relation for t in self._templates}))

    def rigid_nulls(self) -> frozenset[LabeledNull]:
        found: set[LabeledNull] = set()
        for template in self._templates:
            found.update(template.rigid_nulls())
        return frozenset(found)

    def per_snapshot_nulls(self) -> frozenset[AnnotatedNull]:
        found: set[AnnotatedNull] = set()
        for template in self._templates:
            found.update(template.per_snapshot_nulls())
        return frozenset(found)

    @property
    def is_complete(self) -> bool:
        """``True`` iff no nulls of either kind occur."""
        return not self.rigid_nulls() and not self.per_snapshot_nulls()

    # -- timeline ------------------------------------------------------------------
    def breakpoints(self) -> tuple[int, ...]:
        """All distinct finite interval endpoints, ascending, always
        including 0 so that the region partition covers the whole line."""
        points: set[int] = {0}
        for template in self._templates:
            points.add(template.interval.start)
            if not isinstance(template.interval.end, Infinity):
                points.add(template.interval.end)
        return tuple(sorted(points))

    def horizon(self) -> int:
        """The largest finite endpoint; snapshots at ℓ ≥ horizon are all
        alike (finite change condition)."""
        return self.breakpoints()[-1]

    def regions(self) -> tuple[Interval, ...]:
        """The canonical partition of ``[0, ∞)`` into maximal intervals on
        which the set of covering templates is constant.

        The last region is always the unbounded tail ``[horizon, ∞)``.
        """
        points = self.breakpoints()
        pieces: list[Interval] = []
        for left, right in zip(points, points[1:], strict=False):
            pieces.append(Interval(left, right))
        pieces.append(Interval(points[-1], INFINITY))
        return tuple(pieces)

    def representative_points(self) -> tuple[int, ...]:
        """One probe point per region (each region's start)."""
        return tuple(region.start for region in self.regions())

    def rigid_null_span(self, null: LabeledNull) -> IntervalSet:
        """The set of time points at which a rigid null occurs."""
        stamps = [
            template.interval
            for template in self._templates
            if null in template.rigid_nulls()
        ]
        return IntervalSet(stamps)

    # -- semantics --------------------------------------------------------------------
    def snapshot(self, point: int) -> Instance:
        """The materialized snapshot ``db_ℓ``."""
        result = Instance()
        for template in self._templates:
            if point in template.interval:
                result.add(template.at(point))
        return result

    def snapshots(self, limit: int) -> list[Instance]:
        """The materialized prefix ``db_0 … db_{limit-1}`` (tests, figures)."""
        return [self.snapshot(point) for point in range(limit)]

    def iter_region_snapshots(
        self, regions: Iterable[Interval] | None = None
    ) -> Iterator[tuple[Interval, Instance]]:
        """Yield ``(region, snapshot at region.start)`` across *regions*.

        Equivalent to ``(r, self.snapshot(r.start))`` per region, but the
        snapshot is ONE instance maintained incrementally by an interval
        sweep: templates enter when their stamp starts covering the probe
        point and leave when it ends, so the cost is proportional to the
        number of template transitions, not regions × templates — and the
        instance's lazily-built homomorphism indexes stay warm across
        regions.  The yielded instance is reused and mutated between
        yields: consume it before advancing, never store it.

        *regions* must be an ascending subsequence of :meth:`regions`
        (defaults to all of them) — this is what a shard of the region
        scheduler holds.  Falls back to fresh per-region snapshots when a
        template carries per-snapshot (annotated) nulls, whose projection
        differs at every point.
        """
        for region, snapshot, _added, _removed in self.iter_region_deltas(
            regions
        ):
            yield region, snapshot

    def iter_region_deltas(
        self, regions: Iterable[Interval] | None = None
    ) -> Iterator[tuple[Interval, Instance, tuple[Fact, ...], tuple[Fact, ...]]]:
        """The region sweep of :meth:`iter_region_snapshots`, with diffs.

        Yields ``(region, snapshot, added, removed)`` where *added* and
        *removed* are the **net** fact-level changes against the previous
        yielded region's snapshot, each sorted by ``Fact.sort_key``.  A
        fact that leaves one template's coverage and enters another's at
        the same breakpoint cancels out of both sides — adjacent regions
        with identical snapshots report empty diffs, which is what lets
        the incremental cross-region chase replay such regions without
        firing a single live rule.  The first region reports every fact
        as added (against the empty instance).

        The yielded instance is the same live, mutated-between-yields
        sweep instance as :meth:`iter_region_snapshots`; templates with
        per-snapshot (annotated) nulls force the fresh-snapshot fallback,
        with diffs computed by set comparison.
        """
        from heapq import heappop, heappush

        region_list = tuple(self.regions() if regions is None else regions)
        if any(
            isinstance(value, AnnotatedNull)
            for template in self._templates
            for value in template.args
        ):
            previous_facts: frozenset[Fact] = frozenset()
            for region in region_list:
                snapshot = self.snapshot(region.start)
                current = snapshot.facts()
                added = sorted(current - previous_facts, key=Fact.sort_key)
                removed = sorted(previous_facts - current, key=Fact.sort_key)
                previous_facts = current
                yield region, snapshot, tuple(added), tuple(removed)
            return
        by_start = sorted(
            self._templates, key=lambda item: item.interval.start
        )
        total = len(by_start)
        live = Instance()
        counts: dict[Fact, int] = {}
        expiring: list[tuple[TimePoint, int, Fact]] = []
        index = 0
        sequence = 0
        for region in region_list:
            point = region.start
            removed_set: set[Fact] = set()
            added_set: set[Fact] = set()
            while expiring and expiring[0][0] <= point:
                _end, _seq, item = heappop(expiring)
                remaining = counts[item] - 1
                if remaining:
                    counts[item] = remaining
                else:
                    del counts[item]
                    live.discard(item)
                    removed_set.add(item)
            while index < total:
                template = by_start[index]
                if template.interval.start > point:
                    break
                index += 1
                if point in template.interval:
                    item = template.at(point)
                    counts[item] = counts.get(item, 0) + 1
                    if counts[item] == 1:
                        live.add(item)
                        added_set.add(item)
                    heappush(
                        expiring, (template.interval.end, sequence, item)
                    )
                    sequence += 1
            # A fact that left one template's coverage and entered
            # another's at this breakpoint was discarded and re-added
            # above; the snapshots agree on it, so it is no net change.
            cancelled = added_set & removed_set
            if cancelled:
                added_set -= cancelled
                removed_set -= cancelled
            yield (
                region,
                live,
                tuple(sorted(added_set, key=Fact.sort_key)),
                tuple(sorted(removed_set, key=Fact.sort_key)),
            )

    def templates_at(self, point: int) -> tuple[TemplateFact, ...]:
        return tuple(
            template
            for template in sorted(self._templates, key=TemplateFact.sort_key)
            if point in template.interval
        )

    # -- combination --------------------------------------------------------------------
    def union(self, other: "AbstractInstance") -> "AbstractInstance":
        return AbstractInstance(self._templates | other._templates)

    def restrict_to(self, relations: Iterable[str]) -> "AbstractInstance":
        wanted = set(relations)
        return AbstractInstance(
            t for t in self._templates if t.relation in wanted
        )

    # -- comparison ----------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        """Representation equality (same template sets).

        Semantic comparisons (same snapshots / homomorphic equivalence)
        live in :mod:`repro.abstract_view.hom`.
        """
        if not isinstance(other, AbstractInstance):
            return NotImplemented
        return self._templates == other._templates

    def __hash__(self) -> int:
        return hash(self._templates)

    def same_snapshots_as(self, other: "AbstractInstance") -> bool:
        """Pointwise snapshot equality (exact, including null names).

        Checked at the representatives of the *combined* region partition,
        which is sound because both instances are homogeneous inside each
        combined region.
        """
        points = sorted(set(self.breakpoints()) | set(other.breakpoints()))
        probes = [*points, points[-1] + 1 if points else 1]
        return all(
            self.snapshot(point) == other.snapshot(point) for point in probes
        )

    def __str__(self) -> str:
        if not self._templates:
            return "⟨⟩"
        return "⟨" + "; ".join(str(t) for t in self) + "⟩"

    def __repr__(self) -> str:
        return f"AbstractInstance({len(self._templates)} templates)"
