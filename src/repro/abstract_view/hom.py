"""Homomorphisms between abstract instances (Definition 3 of the paper).

``h : Ia ↦ I'a`` requires (1) a per-snapshot homomorphism
``h_ℓ : db_ℓ ↦ db'_ℓ`` for every ℓ, and (2) *global agreement*: any null
that occurs in several snapshots must be mapped to one and the same value
by all of them.  Example 2 of the paper shows why condition (2) matters —
a rigid null spanning two snapshots cannot map onto per-snapshot nulls.

Deciding this on the finite representation exploits homogeneity: refine
both instances to their combined breakpoint partition.  Inside a region no
template starts or ends, so snapshots differ only by the projection index
of per-snapshot nulls; a homomorphism exists at every point of a region
iff one exists at the region's start, *provided* rigid source nulls that
occur at more than one time point never map to projected per-snapshot
target nulls (such an image would differ from snapshot to snapshot,
violating condition 2).  The search below therefore:

* probes one representative point per combined region,
* threads a global assignment ``G`` of rigid source nulls through the
  regions, backtracking across regions,
* forbids rigid nulls with multi-point spans from mapping to projected
  nulls,

which is sound and complete for finitely-represented instances.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping

from repro.abstract_view.abstract_instance import AbstractInstance
from repro.relational.fact import Fact
from repro.relational.instance import Instance
from repro.relational.terms import (
    Constant,
    GroundTerm,
    LabeledNull,
)
from repro.temporal.interval import Interval
from repro.temporal.timepoint import INFINITY

__all__ = [
    "AbstractHomomorphism",
    "combined_regions",
    "find_abstract_homomorphism",
    "has_abstract_homomorphism",
    "homomorphically_equivalent",
]


@dataclass(frozen=True)
class AbstractHomomorphism:
    """A witness for ``source ↦ target``.

    *rigid_mapping* is the global assignment of the source's rigid nulls
    (condition 2 forces it to be shared by all per-snapshot maps); the
    per-snapshot images of per-snapshot nulls are existentially verified
    region by region and need not be materialized.
    """

    rigid_mapping: Mapping[LabeledNull, GroundTerm]

    def __str__(self) -> str:
        if not self.rigid_mapping:
            return "{} (no rigid nulls to map)"
        entries = ", ".join(
            f"{key} ↦ {value}" for key, value in sorted(
                self.rigid_mapping.items(), key=lambda kv: kv[0].name
            )
        )
        return "{" + entries + "}"


def combined_regions(
    first: AbstractInstance, second: AbstractInstance
) -> tuple[Interval, ...]:
    """The coarsest partition of ``[0, ∞)`` refining both instances'
    region partitions; both are homogeneous inside every piece."""
    points = sorted(set(first.breakpoints()) | set(second.breakpoints()))
    pieces = [Interval(p, q) for p, q in zip(points, points[1:], strict=False)]
    pieces.append(Interval(points[-1], INFINITY))
    return tuple(pieces)


def _projected_nulls(instance: AbstractInstance, point: int) -> frozenset[LabeledNull]:
    """The snapshot-level nulls at *point* that stem from per-snapshot
    families (these change name from snapshot to snapshot)."""
    found: set[LabeledNull] = set()
    for template in instance.templates_at(point):
        for family in template.per_snapshot_nulls():
            found.add(family.project(point))
    return frozenset(found)


def _iter_snapshot_homs(
    source_snapshot: Instance,
    target_snapshot: Instance,
    fixed: Mapping[LabeledNull, GroundTerm],
    multi_point_nulls: frozenset[LabeledNull],
    projected_targets: frozenset[LabeledNull],
) -> Iterator[dict[LabeledNull, GroundTerm]]:
    """All homomorphisms ``source_snapshot → target_snapshot`` respecting

    * *fixed* — pre-committed images of (rigid) nulls,
    * the rule that nulls in *multi_point_nulls* never map into
      *projected_targets*.

    Yields the full null assignment (rigid and projected source nulls).
    """
    facts = sorted(source_snapshot.facts(), key=Fact.sort_key)
    mapping: dict[LabeledNull, GroundTerm] = dict(fixed)

    def bindings_for(item: Fact) -> dict[int, GroundTerm]:
        bound: dict[int, GroundTerm] = {}
        for position, arg in enumerate(item.args):
            if isinstance(arg, Constant):
                bound[position] = arg
            elif isinstance(arg, LabeledNull) and arg in mapping:
                bound[position] = mapping[arg]
        return bound

    def try_extend(item: Fact, image: Fact) -> list[LabeledNull] | None:
        added: list[LabeledNull] = []
        for arg, value in zip(item.args, image.args, strict=True):
            if isinstance(arg, Constant):
                if arg != value:
                    return None
                continue
            assert isinstance(arg, LabeledNull)
            current = mapping.get(arg)
            if current is None:
                if arg in multi_point_nulls and value in projected_targets:
                    # Condition 2: a multi-point rigid null cannot track a
                    # per-snapshot null that is renamed at every snapshot.
                    for rollback in added:
                        del mapping[rollback]
                    return None
                mapping[arg] = value
                added.append(arg)
            elif current != value:
                for rollback in added:
                    del mapping[rollback]
                return None
        return added

    def search(position: int) -> Iterator[dict[LabeledNull, GroundTerm]]:
        if position == len(facts):
            yield dict(mapping)
            return
        item = facts[position]
        candidates = target_snapshot.lookup(item.relation, bindings_for(item))
        for candidate in sorted(candidates, key=Fact.sort_key):
            added = try_extend(item, candidate)
            if added is None:
                continue
            yield from search(position + 1)
            for rollback in added:
                del mapping[rollback]

    yield from search(0)


def find_abstract_homomorphism(
    source: AbstractInstance, target: AbstractInstance
) -> AbstractHomomorphism | None:
    """A homomorphism ``source ↦ target`` per Definition 3, or ``None``."""
    regions = combined_regions(source, target)
    rigid_nulls = source.rigid_nulls()
    multi_point = frozenset(
        null
        for null in rigid_nulls
        if source.rigid_null_span(null).total_duration() > 1
    )
    global_assignment: dict[LabeledNull, GroundTerm] = {}

    def solve(index: int) -> bool:
        if index == len(regions):
            return True
        region = regions[index]
        representative = region.start
        source_snapshot = source.snapshot(representative)
        if not source_snapshot:
            return solve(index + 1)
        target_snapshot = target.snapshot(representative)
        projected_targets = _projected_nulls(target, representative)
        committed = {
            null: image
            for null, image in global_assignment.items()
        }
        for assignment in _iter_snapshot_homs(
            source_snapshot,
            target_snapshot,
            fixed=committed,
            multi_point_nulls=multi_point,
            projected_targets=projected_targets,
        ):
            newly_committed = {
                null: image
                for null, image in assignment.items()
                if null in rigid_nulls and null not in global_assignment
            }
            global_assignment.update(newly_committed)
            if solve(index + 1):
                return True
            for null in newly_committed:
                del global_assignment[null]
        return False

    if solve(0):
        return AbstractHomomorphism(dict(global_assignment))
    return None


def has_abstract_homomorphism(
    source: AbstractInstance, target: AbstractInstance
) -> bool:
    """``True`` iff some homomorphism ``source ↦ target`` exists."""
    return find_abstract_homomorphism(source, target) is not None


def homomorphically_equivalent(
    first: AbstractInstance, second: AbstractInstance
) -> bool:
    """``first ∼ second``: homomorphisms exist in both directions.

    This is the equivalence of Corollary 20 relating ``⟦c-chase(Ic)⟧`` and
    ``chase(⟦Ic⟧)``.
    """
    return has_abstract_homomorphism(first, second) and has_abstract_homomorphism(
        second, first
    )
