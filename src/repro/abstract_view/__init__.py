"""The abstract view: snapshot sequences, their chase, and homomorphisms.

The abstract view supplies the *semantics* of temporal data exchange
(Section 3); the concrete view in :mod:`repro.concrete` supplies the
implementation, and :func:`repro.abstract_view.semantics.semantics`
(⟦·⟧) ties the two together.
"""

from repro.abstract_view.abstract_chase import (
    AbstractChaseResult,
    RegionReuseStats,
    ShardReport,
    abstract_chase,
)
from repro.abstract_view.abstract_instance import AbstractInstance, TemplateFact
from repro.abstract_view.hom import (
    AbstractHomomorphism,
    combined_regions,
    find_abstract_homomorphism,
    has_abstract_homomorphism,
    homomorphically_equivalent,
)
from repro.abstract_view.semantics import abstract_view_of, semantics
from repro.abstract_view.solution import is_solution, is_universal_solution

__all__ = [
    "AbstractChaseResult",
    "RegionReuseStats",
    "ShardReport",
    "abstract_chase",
    "AbstractInstance",
    "TemplateFact",
    "AbstractHomomorphism",
    "combined_regions",
    "find_abstract_homomorphism",
    "has_abstract_homomorphism",
    "homomorphically_equivalent",
    "abstract_view_of",
    "semantics",
    "is_solution",
    "is_universal_solution",
]
