"""Solutions and universal solutions on the abstract view (Section 3).

A target abstract instance ``Ja`` is a *solution* for ``Ia`` w.r.t. a
setting ``M`` when every snapshot pair satisfies ``Σst ∪ Σeg``; it is
*universal* when, additionally, it maps homomorphically into every other
solution (Definition 3).  Universality over the infinitude of solutions
cannot be checked directly, so :func:`is_universal_solution` verifies the
homomorphism property against a caller-supplied family of witness
solutions — in tests these are hand-built alternative solutions, and by
Proposition 4 the chase result must map into each of them.
"""

from __future__ import annotations

from typing import Iterable

from repro.abstract_view.abstract_instance import AbstractInstance
from repro.abstract_view.hom import combined_regions, has_abstract_homomorphism
from repro.chase.standard import snapshot_satisfies
from repro.dependencies.mapping import DataExchangeSetting

__all__ = ["is_solution", "is_universal_solution"]


def is_solution(
    source: AbstractInstance,
    target: AbstractInstance,
    setting: DataExchangeSetting,
) -> bool:
    """``(Ia, Ja) |= Σst ∪ Σeg`` checked snapshot-wise.

    Satisfaction is probed at one representative point per combined
    region; inside a region the snapshot pair is constant up to the
    uniform renaming of per-snapshot nulls, and dependency satisfaction is
    invariant under isomorphism, so the probe is exact.
    """
    for region in combined_regions(source, target):
        representative = region.start
        if not snapshot_satisfies(
            source.snapshot(representative),
            target.snapshot(representative),
            setting,
        ):
            return False
    return True


def is_universal_solution(
    source: AbstractInstance,
    target: AbstractInstance,
    setting: DataExchangeSetting,
    other_solutions: Iterable[AbstractInstance] = (),
) -> bool:
    """Solution check plus homomorphisms into each witness solution.

    Universality quantifies over *all* solutions; callers provide the
    witnesses to check against (each must itself be a solution, which is
    verified too — a non-solution witness is a usage error worth failing
    loudly on).
    """
    if not is_solution(source, target, setting):
        return False
    for witness in other_solutions:
        if not is_solution(source, witness, setting):
            return False
        if not has_abstract_homomorphism(target, witness):
            return False
    return True
