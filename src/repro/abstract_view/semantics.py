"""The semantic mapping ⟦·⟧ from concrete to abstract instances.

``⟦Ic⟧`` is the abstract instance whose snapshot at time ℓ contains
``R(a, Π_ℓ(N))`` for every concrete fact ``R+(a, N, [s, e))`` with
``s ≤ ℓ < e`` (Sections 2 and 4.1).  On our finite representations the
mapping is a direct reinterpretation: every concrete fact *is* a template
fact — constants stay constants and interval-annotated nulls stay
per-snapshot null families.
"""

from __future__ import annotations

from repro.abstract_view.abstract_instance import AbstractInstance, TemplateFact
from repro.concrete.concrete_instance import ConcreteInstance

__all__ = ["semantics", "abstract_view_of"]


def semantics(instance: ConcreteInstance) -> AbstractInstance:
    """``⟦instance⟧``: the abstract instance the concrete one represents."""
    return AbstractInstance(
        TemplateFact(item.relation, item.data, item.interval)
        for item in instance.facts()
    )


#: Alias emphasising direction when both views are in scope.
abstract_view_of = semantics
