"""The abstract chase: classical chase applied snapshot-wise (Section 3).

With non-temporal s-t tgds and egds every snapshot is chased
independently::

    chase(Ia, M) = ⟨chase(db0, M), chase(db1, M), …⟩

and the fresh nulls of one snapshot are distinct from every other
snapshot's.  On the finite representation this collapses to chasing one
*representative* snapshot per constancy region: within a region all
snapshots are equal (abstract source instances are complete), so their
chase results are equal up to the per-snapshot renaming of fresh nulls —
which is exactly what an interval-annotated null family over the region
denotes.

Proposition 4: a successful abstract chase yields a universal solution;
a failure on any snapshot means no solution exists.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ChaseFailureError, InstanceError
from repro.abstract_view.abstract_instance import AbstractInstance, TemplateFact
from repro.chase.nulls import NullFactory
from repro.chase.standard import ChaseVariant, SnapshotChaseResult, chase_snapshot
from repro.chase.trace import FailureRecord
from repro.dependencies.mapping import DataExchangeSetting
from repro.relational.terms import AnnotatedNull, Constant, LabeledNull
from repro.temporal.interval import Interval

__all__ = ["AbstractChaseResult", "abstract_chase"]


@dataclass
class AbstractChaseResult:
    """Outcome of the snapshot-wise chase over the whole timeline."""

    target: AbstractInstance
    failed: bool = False
    failure: FailureRecord | None = None
    failed_region: Interval | None = None
    region_results: dict[Interval, SnapshotChaseResult] = field(default_factory=dict)

    @property
    def succeeded(self) -> bool:
        return not self.failed

    def unwrap(self) -> AbstractInstance:
        """The universal solution, raising on failure."""
        if self.failed:
            assert self.failure is not None
            raise ChaseFailureError(
                self.failure.dependency,
                self.failure.left,
                self.failure.right,
                context=f"snapshots {self.failed_region}",
            )
        return self.target


def abstract_chase(
    source: AbstractInstance,
    setting: DataExchangeSetting,
    null_factory: NullFactory | None = None,
    variant: ChaseVariant = "standard",
) -> AbstractChaseResult:
    """``chase(Ia, M)`` on the finite representation.

    The source must be complete (constants only), as the paper assumes for
    source instances.  One shared null factory keeps fresh null names
    globally distinct across regions, mirroring the paper's requirement
    that nulls of different snapshots never coincide.
    """
    if not source.is_complete:
        raise InstanceError(
            "abstract source instances must be complete (constants only)"
        )
    nulls = null_factory if null_factory is not None else NullFactory()
    templates: list[TemplateFact] = []
    region_results: dict[Interval, SnapshotChaseResult] = {}

    for region in source.regions():
        snapshot = source.snapshot(region.start)
        result = chase_snapshot(snapshot, setting, null_factory=nulls, variant=variant)
        region_results[region] = result
        if result.failed:
            return AbstractChaseResult(
                target=AbstractInstance(templates),
                failed=True,
                failure=result.failure,
                failed_region=region,
                region_results=region_results,
            )
        for item in result.target.facts():
            args = tuple(
                AnnotatedNull(value.name, region)
                if isinstance(value, LabeledNull)
                else value
                for value in item.args
            )
            templates.append(TemplateFact(item.relation, args, region))

    return AbstractChaseResult(
        target=AbstractInstance(templates), region_results=region_results
    )
