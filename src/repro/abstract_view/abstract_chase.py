"""The abstract chase: classical chase applied snapshot-wise (Section 3).

With non-temporal s-t tgds and egds every snapshot is chased
independently::

    chase(Ia, M) = ⟨chase(db0, M), chase(db1, M), …⟩

and the fresh nulls of one snapshot are distinct from every other
snapshot's.  On the finite representation this collapses to chasing one
*representative* snapshot per constancy region: within a region all
snapshots are equal (abstract source instances are complete), so their
chase results are equal up to the per-snapshot renaming of fresh nulls —
which is exactly what an interval-annotated null family over the region
denotes.

Because regions are chased independently, they also **shard**: the
region scheduler partitions the region list into contiguous blocks, runs
each block with its own namespaced
:class:`~repro.chase.nulls.NullFactory` (shard *i* issues ``Ns<i>_1,
Ns<i>_2, …`` — collision-free across shards by construction), and merges
the per-region results back in timeline order.  The executor is
pluggable: ``"serial"`` (default) runs the shards in a loop,
``"threads"`` uses a ``concurrent.futures`` thread pool, and any
``Executor`` instance may be passed directly.  ``shards=1`` with the
default factory is byte-identical to the historical sequential chase
(one shared counter across all regions).

Within each shard the regions are, by default, chased **incrementally**:
adjacent region snapshots differ by few facts, so each region replays the
previous region's recorded tgd firing sequence wherever the snapshot
diff left it intact, and falls through to live decisions only where the
streams deviate; the egd fixpoint runs the live semi-naive engine either
way (see :mod:`repro.chase.incremental`).  The incremental schedule is
byte-identical to the from-scratch one — null numbering, traces and
failures included — so it is safe as the default;
``incremental=False`` restores the from-scratch reference schedule.

Proposition 4: a successful abstract chase yields a universal solution;
a failure on any snapshot means no solution exists.
"""

from __future__ import annotations

import time
from concurrent.futures import Executor, ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.errors import ChaseFailureError, InstanceError, ShardExecutionError
from repro.abstract_view.abstract_instance import AbstractInstance, TemplateFact
from repro.chase.engine import EngineMode
from repro.chase.incremental import IncrementalRegionChaser, RegionReuseStats
from repro.chase.nulls import NullFactory
from repro.chase.standard import ChaseVariant, SnapshotChaseResult, chase_snapshot
from repro.chase.trace import FailureRecord
from repro.dependencies.mapping import DataExchangeSetting
from repro.relational.terms import AnnotatedNull, Constant, LabeledNull
from repro.temporal.interval import Interval

__all__ = [
    "AbstractChaseResult",
    "RegionReuseStats",
    "ShardReport",
    "abstract_chase",
]


@dataclass(frozen=True, slots=True)
class ShardReport:
    """Per-shard execution accounting of one scheduled abstract chase."""

    shard: int
    regions: int
    seconds: float
    nulls_issued: int
    # Aggregated cross-region reuse of the shard's incremental chain;
    # None when the from-scratch schedule ran (incremental=False).
    reuse: RegionReuseStats | None = None


@dataclass
class AbstractChaseResult:
    """Outcome of the snapshot-wise chase over the whole timeline."""

    target: AbstractInstance
    failed: bool = False
    failure: FailureRecord | None = None
    failed_region: Interval | None = None
    failed_shard: int | None = None
    error: ShardExecutionError | None = None
    region_results: dict[Interval, SnapshotChaseResult] = field(default_factory=dict)
    region_reuse: dict[Interval, RegionReuseStats] = field(default_factory=dict)
    shard_reports: tuple[ShardReport, ...] = ()

    @property
    def succeeded(self) -> bool:
        return not self.failed

    def reuse_totals(self) -> RegionReuseStats:
        """Cross-region reuse summed over every chased region."""
        totals = RegionReuseStats()
        for stats in self.region_reuse.values():
            totals.add(stats)
        return totals

    def unwrap(self) -> AbstractInstance:
        """The universal solution, raising on failure.

        A chase *failure* raises :class:`ChaseFailureError` with the
        failing shard and region interval in its message; an unexpected
        exception inside a shard re-raises as
        :class:`ShardExecutionError` (original exception chained).
        """
        if self.error is not None:
            raise self.error
        if self.failed:
            assert self.failure is not None
            context = f"snapshots {self.failed_region}"
            if self.failed_shard is not None:
                context = f"shard {self.failed_shard}, {context}"
            raise ChaseFailureError(
                self.failure.dependency,
                self.failure.left,
                self.failure.right,
                context=context,
            )
        return self.target


def _partition(
    regions: tuple[Interval, ...], shards: int
) -> list[tuple[Interval, ...]]:
    """Split the ascending region list into ≤ *shards* contiguous blocks.

    Blocks are balanced to within one region and preserve timeline order,
    so every shard's subsequence is ascending (what the sweep of
    :meth:`AbstractInstance.iter_region_snapshots` requires) and the
    merge is a plain concatenation in region order.
    """
    count = min(shards, len(regions))
    if count <= 0:
        return []
    size, extra = divmod(len(regions), count)
    blocks: list[tuple[Interval, ...]] = []
    start = 0
    for shard in range(count):
        width = size + (1 if shard < extra else 0)
        blocks.append(regions[start : start + width])
        start += width
    return blocks


def _chase_regions(
    source: AbstractInstance,
    regions: tuple[Interval, ...],
    setting: DataExchangeSetting,
    nulls: NullFactory,
    variant: ChaseVariant,
    engine: EngineMode,
    incremental: bool,
    shard: int,
) -> tuple[
    list[tuple[Interval, SnapshotChaseResult]],
    dict[Interval, RegionReuseStats],
    ShardExecutionError | None,
]:
    """Chase one block of regions; stops at the block's first failure.

    An exception raised while chasing a region is captured as a
    :class:`ShardExecutionError` carrying this shard's index and the
    region interval, so the scheduler can surface it without dropping
    the other shards' reports.  An exception raised by the sweep
    *between* regions is attributed to no region (the advance, not the
    previous region's chase, is at fault).
    """
    results: list[tuple[Interval, SnapshotChaseResult]] = []
    region_stats: dict[Interval, RegionReuseStats] = {}
    region: Interval | None = None
    chaser = (
        IncrementalRegionChaser(setting, nulls, variant, engine)
        if incremental
        else None
    )
    sweep = iter(
        source.iter_region_deltas(regions)
        if incremental
        else source.iter_region_snapshots(regions)
    )
    while True:
        region = None
        try:
            item = next(sweep)
        except StopIteration:
            break
        except Exception as exc:  # noqa: BLE001 — surfaced with shard context
            return results, region_stats, ShardExecutionError(
                shard, None, exc
            )
        region = item[0]
        try:
            if chaser is not None:
                _region, snapshot, added, removed = item
                result, stats = chaser.chase(snapshot, added, removed)
                region_stats[region] = stats
            else:
                _region, snapshot = item
                result = chase_snapshot(
                    snapshot,
                    setting,
                    null_factory=nulls,
                    variant=variant,
                    engine=engine,
                )
        except Exception as exc:  # noqa: BLE001 — surfaced with shard context
            return results, region_stats, ShardExecutionError(
                shard, region, exc
            )
        results.append((region, result))
        if result.failed:
            break
    return results, region_stats, None


def abstract_chase(
    source: AbstractInstance,
    setting: DataExchangeSetting,
    null_factory: NullFactory | None = None,
    variant: ChaseVariant = "standard",
    engine: EngineMode = "delta",
    shards: int = 1,
    executor: str | Executor = "serial",
    incremental: bool = True,
) -> AbstractChaseResult:
    """``chase(Ia, M)`` on the finite representation.

    The source must be complete (constants only), as the paper assumes
    for source instances.  With ``shards=1`` one shared null factory
    keeps fresh null names globally distinct across regions, mirroring
    the paper's requirement that nulls of different snapshots never
    coincide — and the output is byte-identical to the historical
    sequential implementation.  With ``shards > 1`` the regions are
    partitioned into contiguous blocks, each block chases under its own
    namespaced factory (``Ns<i>_…``, see
    :meth:`NullFactory.for_shard`), and the per-region results merge
    deterministically in timeline order; *executor* selects how blocks
    run (``"serial"``, ``"threads"``, or a ``concurrent.futures``
    executor instance).  Fresh-null *names* then differ from the
    unsharded run, but the result is the same solution up to that
    renaming.

    *incremental* (default on) makes each shard's chain of regions reuse
    the previous region's recorded chase wherever the snapshot diff
    permits; the output is byte-identical either way, so the flag only
    trades CPU for bookkeeping.  Sharding composes with it: every block
    is its own incremental chain.
    """
    if not source.is_complete:
        raise InstanceError(
            "abstract source instances must be complete (constants only)"
        )
    if shards < 1:
        raise InstanceError(f"shards must be >= 1, got {shards}")
    regions = source.regions()
    base_factory = null_factory if null_factory is not None else NullFactory()

    if shards == 1:
        blocks = [regions]
        factories = [base_factory]
    else:
        blocks = _partition(regions, shards)
        generation = base_factory.new_generation()
        factories = [
            base_factory.for_shard(index, generation)
            for index in range(len(blocks))
        ]

    def run_block(index: int) -> tuple[
        list[tuple[Interval, SnapshotChaseResult]],
        dict[Interval, RegionReuseStats],
        ShardExecutionError | None,
        ShardReport,
    ]:
        started = time.perf_counter()
        block_results, region_stats, error = _chase_regions(
            source,
            blocks[index],
            setting,
            factories[index],
            variant,
            engine,
            incremental,
            index,
        )
        reuse: RegionReuseStats | None = None
        if incremental:
            reuse = RegionReuseStats()
            for stats in region_stats.values():
                reuse.add(stats)
        report = ShardReport(
            shard=index,
            regions=len(block_results),
            seconds=time.perf_counter() - started,
            nulls_issued=factories[index].issued,
            reuse=reuse,
        )
        return block_results, region_stats, error, report

    indices = range(len(blocks))
    if isinstance(executor, Executor):
        outcomes = list(executor.map(run_block, indices))
    elif executor == "serial":
        outcomes = [run_block(index) for index in indices]
    elif executor == "threads":
        with ThreadPoolExecutor(max_workers=len(blocks)) as pool:
            outcomes = list(pool.map(run_block, indices))
    else:
        raise InstanceError(
            f"unknown executor {executor!r}: use 'serial', 'threads', "
            "or a concurrent.futures.Executor"
        )

    return _merge(outcomes)


def _merge(
    outcomes: list[
        tuple[
            list[tuple[Interval, SnapshotChaseResult]],
            dict[Interval, RegionReuseStats],
            ShardExecutionError | None,
            ShardReport,
        ]
    ],
) -> AbstractChaseResult:
    """Fold per-shard outcomes (in timeline order) into one result.

    Contiguous partitioning keeps the concatenated block results in
    region order, so the first failed region (or shard error)
    encountered is the globally first one; regions a failing shard
    skipped lie strictly after it and are simply absent, exactly as in
    the sequential early-exit.  Every shard's report is retained either
    way.
    """
    reports = tuple(report for _results, _stats, _error, report in outcomes)
    templates: list[TemplateFact] = []
    region_results: dict[Interval, SnapshotChaseResult] = {}
    region_reuse: dict[Interval, RegionReuseStats] = {}
    for results, stats, error, report in outcomes:
        region_reuse.update(stats)
        for region, result in results:
            region_results[region] = result
            if result.failed:
                return AbstractChaseResult(
                    target=AbstractInstance(templates),
                    failed=True,
                    failure=result.failure,
                    failed_region=region,
                    failed_shard=report.shard,
                    region_results=region_results,
                    region_reuse=region_reuse,
                    shard_reports=reports,
                )
            for item in result.target.facts():
                args = tuple(
                    AnnotatedNull(value.name, region)
                    if isinstance(value, LabeledNull)
                    else value
                    for value in item.args
                )
                # Trusted: fresh nulls were re-annotated with the region just
                # above, and factory null names never contain '@'.
                templates.append(TemplateFact.make(item.relation, args, region))
        if error is not None:
            return AbstractChaseResult(
                target=AbstractInstance(templates),
                failed=True,
                failed_region=error.region,
                failed_shard=report.shard,
                error=error,
                region_results=region_results,
                region_reuse=region_reuse,
                shard_reports=reports,
            )

    return AbstractChaseResult(
        target=AbstractInstance(templates),
        region_results=region_results,
        region_reuse=region_reuse,
        shard_reports=reports,
    )
