"""The abstract chase: classical chase applied snapshot-wise (Section 3).

With non-temporal s-t tgds and egds every snapshot is chased
independently::

    chase(Ia, M) = ⟨chase(db0, M), chase(db1, M), …⟩

and the fresh nulls of one snapshot are distinct from every other
snapshot's.  On the finite representation this collapses to chasing one
*representative* snapshot per constancy region: within a region all
snapshots are equal (abstract source instances are complete), so their
chase results are equal up to the per-snapshot renaming of fresh nulls —
which is exactly what an interval-annotated null family over the region
denotes.

Because regions are chased independently, they also **shard**: the
region scheduler partitions the region list into contiguous blocks, runs
each block with its own namespaced
:class:`~repro.chase.nulls.NullFactory` (shard *i* issues ``Ns<i>_1,
Ns<i>_2, …`` — collision-free across shards by construction), and merges
the per-region results back in timeline order.  The executor is
pluggable: ``"serial"`` (default) runs the shards in a loop,
``"threads"`` uses a ``concurrent.futures`` thread pool, and any
``Executor`` instance may be passed directly.  ``shards=1`` with the
default factory is byte-identical to the historical sequential chase
(one shared counter across all regions).

Within each shard the regions are, by default, chased **incrementally**:
adjacent region snapshots differ by few facts, so each region replays the
previous region's recorded tgd firing sequence wherever the snapshot
diff left it intact, and falls through to live decisions only where the
streams deviate; the egd fixpoint runs the live semi-naive engine either
way (see :mod:`repro.chase.incremental`).  The incremental schedule is
byte-identical to the from-scratch one — null numbering, traces and
failures included — so it is safe as the default;
``incremental=False`` restores the from-scratch reference schedule.

Proposition 4: a successful abstract chase yields a universal solution;
a failure on any snapshot means no solution exists.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import (
    BrokenExecutor,
    Executor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from dataclasses import dataclass, field, replace
from typing import Iterable, Sequence

from repro.errors import ChaseFailureError, InstanceError, ShardExecutionError
from repro.abstract_view.abstract_instance import AbstractInstance, TemplateFact
from repro.chase.engine import EngineMode
from repro.chase.incremental import IncrementalRegionChaser, RegionReuseStats
from repro.chase.nulls import NullFactory
from repro.chase.standard import ChaseVariant, SnapshotChaseResult, chase_snapshot
from repro.chase.trace import FailureRecord
from repro.dependencies.mapping import DataExchangeSetting
from repro.relational.terms import AnnotatedNull, LabeledNull
from repro.temporal.interval import Interval

__all__ = [
    "AbstractChaseResult",
    "ParentTimings",
    "RegionReuseStats",
    "ShardReport",
    "abstract_chase",
]


@dataclass(frozen=True, slots=True)
class ShardReport:
    """Per-shard execution accounting of one scheduled abstract chase."""

    shard: int
    regions: int
    seconds: float
    nulls_issued: int
    # Aggregated cross-region reuse of the shard's incremental chain;
    # None when the from-scratch schedule ran (incremental=False).
    reuse: RegionReuseStats | None = None
    # True when the shard executed in a worker process (the "processes"
    # executor).  Recorded firing logs never cross the process boundary:
    # the shard's incremental chain lives entirely inside its worker, so
    # — exactly as for any sharded run — the chain's first region chases
    # from scratch and `reuse` reports the in-worker replay totals.
    remote: bool = False


@dataclass(frozen=True, slots=True)
class ParentTimings:
    """The parent's serial wire share of one ``processes``-executor run.

    Amdahl's bound for the pool: whatever the parent does serially —
    encoding and publishing the shard tasks, decoding the outcomes,
    merging — caps the speedup no matter how many workers chase.
    *transport* records which wire path ran (``"shm"`` segments or the
    ``"pickle"`` pipe fallback).
    """

    encode_seconds: float
    decode_seconds: float
    merge_seconds: float
    transport: str


@dataclass
class AbstractChaseResult:
    """Outcome of the snapshot-wise chase over the whole timeline."""

    target: AbstractInstance
    failed: bool = False
    failure: FailureRecord | None = None
    failed_region: Interval | None = None
    failed_shard: int | None = None
    error: ShardExecutionError | None = None
    region_results: dict[Interval, SnapshotChaseResult] = field(default_factory=dict)
    region_reuse: dict[Interval, RegionReuseStats] = field(default_factory=dict)
    shard_reports: tuple[ShardReport, ...] = ()
    # Set by the "processes" executor only: the parent's measured
    # encode/decode/merge share of this run.
    parent_timings: ParentTimings | None = None

    @property
    def succeeded(self) -> bool:
        return not self.failed

    def reuse_totals(self) -> RegionReuseStats:
        """Cross-region reuse summed over every chased region."""
        totals = RegionReuseStats()
        for stats in self.region_reuse.values():
            totals.add(stats)
        return totals

    def unwrap(self) -> AbstractInstance:
        """The universal solution, raising on failure.

        A chase *failure* raises :class:`ChaseFailureError` with the
        failing shard and region interval in its message; an unexpected
        exception inside a shard re-raises as
        :class:`ShardExecutionError` (original exception chained).
        """
        if self.error is not None:
            raise self.error
        if self.failed:
            assert self.failure is not None
            context = f"snapshots {self.failed_region}"
            if self.failed_shard is not None:
                context = f"shard {self.failed_shard}, {context}"
            raise ChaseFailureError(
                self.failure.dependency,
                self.failure.left,
                self.failure.right,
                context=context,
            )
        return self.target


def _partition(
    regions: tuple[Interval, ...], shards: int
) -> list[tuple[Interval, ...]]:
    """Split the ascending region list into ≤ *shards* contiguous blocks.

    Blocks are balanced to within one region and preserve timeline order,
    so every shard's subsequence is ascending (what the sweep of
    :meth:`AbstractInstance.iter_region_snapshots` requires) and the
    merge is a plain concatenation in region order.
    """
    count = min(shards, len(regions))
    if count <= 0:
        return []
    size, extra = divmod(len(regions), count)
    blocks: list[tuple[Interval, ...]] = []
    start = 0
    for shard in range(count):
        width = size + (1 if shard < extra else 0)
        blocks.append(regions[start : start + width])
        start += width
    return blocks


def _chase_regions(
    source: AbstractInstance,
    regions: tuple[Interval, ...],
    setting: DataExchangeSetting,
    nulls: NullFactory,
    variant: ChaseVariant,
    engine: EngineMode,
    incremental: bool,
    shard: int,
) -> tuple[
    list[tuple[Interval, SnapshotChaseResult]],
    dict[Interval, RegionReuseStats],
    ShardExecutionError | None,
]:
    """Chase one block of regions; stops at the block's first failure.

    An exception raised while chasing a region is captured as a
    :class:`ShardExecutionError` carrying this shard's index and the
    region interval, so the scheduler can surface it without dropping
    the other shards' reports.  An exception raised by the sweep
    *between* regions is attributed to no region (the advance, not the
    previous region's chase, is at fault).
    """
    results: list[tuple[Interval, SnapshotChaseResult]] = []
    region_stats: dict[Interval, RegionReuseStats] = {}
    region: Interval | None = None
    chaser = (
        IncrementalRegionChaser(setting, nulls, variant, engine)
        if incremental
        else None
    )
    sweep = iter(
        source.iter_region_deltas(regions)
        if incremental
        else source.iter_region_snapshots(regions)
    )
    while True:
        region = None
        try:
            item = next(sweep)
        except StopIteration:
            break
        except Exception as exc:  # noqa: BLE001 — surfaced with shard context
            return results, region_stats, ShardExecutionError(
                shard, None, exc
            )
        region = item[0]
        try:
            if chaser is not None:
                _region, snapshot, added, removed = item
                result, stats = chaser.chase(snapshot, added, removed)
                region_stats[region] = stats
            else:
                _region, snapshot = item
                result = chase_snapshot(
                    snapshot,
                    setting,
                    null_factory=nulls,
                    variant=variant,
                    engine=engine,
                )
        except Exception as exc:  # noqa: BLE001 — surfaced with shard context
            return results, region_stats, ShardExecutionError(
                shard, region, exc
            )
        results.append((region, result))
        if result.failed:
            break
    return results, region_stats, None


@dataclass
class _BlockOutcome:
    """One shard's finished block, as the merge consumes it.

    *merged_templates* is the shard's pre-computed contribution to the
    merged target (the per-region null re-annotation of :func:`_merge`,
    applied to every successful region in block order).  Worker
    processes compute it so the parent's merge is a concatenation
    instead of a per-fact loop; in-process executors leave it ``None``
    and the merge converts the region results itself.
    """

    results: list[tuple[Interval, SnapshotChaseResult]]
    region_reuse: dict[Interval, RegionReuseStats]
    error: ShardExecutionError | None
    report: ShardReport
    merged_templates: Sequence[TemplateFact] | None = None


def _region_templates(
    region: Interval, result: SnapshotChaseResult
) -> list[TemplateFact]:
    """One successful region's contribution to the merged target.

    Every fresh null is re-annotated with the region (a labeled null of
    the representative snapshot denotes one unknown *per* covered
    snapshot), constants pass through, and the facts become templates
    stamped with the region.  Set iteration order is fine here — the
    merged instance is a set, and forcing ``sort_key`` order would
    compute tens of thousands of sort keys the chase never needed
    (measured at ~20% of the whole serial run).
    """
    templates: list[TemplateFact] = []
    for item in result.target.facts():
        args = tuple(
            AnnotatedNull(value.name, region)
            if isinstance(value, LabeledNull)
            else value
            for value in item.args
        )
        # Trusted: fresh nulls were re-annotated with the region just
        # above, and factory null names never contain '@'.
        templates.append(TemplateFact.make(item.relation, args, region))
    return templates


class _LazyRegionTemplates:
    """One region's merged-target contribution, computed on first read.

    Re-iterable so the deferred :class:`AbstractInstance` can hold it as
    a piece; until something walks the merged template set, the region's
    chase result never has to materialize its target (which, for a
    fully-replayed region, is itself a lazy view over the firing log).
    """

    __slots__ = ("_region", "_result")

    def __init__(self, region: Interval, result: SnapshotChaseResult):
        self._region = region
        self._result = result

    def __iter__(self):
        return iter(_region_templates(self._region, self._result))


def _execute_block(
    source: AbstractInstance,
    block: tuple[Interval, ...],
    setting: DataExchangeSetting,
    factory: NullFactory,
    variant: ChaseVariant,
    engine: EngineMode,
    incremental: bool,
    shard: int,
    remote: bool = False,
) -> _BlockOutcome:
    """Chase one shard's region block and account for it.

    The single execution path behind every executor: the serial loop and
    the thread pool call it in-process, and :func:`_process_worker` calls
    it inside a worker process (*remote* marks the report accordingly).
    """
    started = time.perf_counter()
    block_results, region_stats, error = _chase_regions(
        source,
        block,
        setting,
        factory,
        variant,
        engine,
        incremental,
        shard,
    )
    reuse: RegionReuseStats | None = None
    if incremental:
        reuse = RegionReuseStats()
        for stats in region_stats.values():
            reuse.add(stats)
    report = ShardReport(
        shard=shard,
        regions=len(block_results),
        seconds=time.perf_counter() - started,
        nulls_issued=factory.issued,
        reuse=reuse,
        remote=remote,
    )
    merged: tuple[TemplateFact, ...] | None = None
    if remote:
        # Pre-merge in the worker: the parent then concatenates decoded
        # templates instead of re-annotating every fact serially.
        premerged: list[TemplateFact] = []
        for region, result in block_results:
            if result.failed:
                break
            premerged.extend(_region_templates(region, result))
        merged = tuple(premerged)
    return _BlockOutcome(
        results=block_results,
        region_reuse=region_stats,
        error=error,
        report=report,
        merged_templates=merged,
    )


def _process_worker(payload: bytes) -> bytes:
    """Chase one encoded shard task in a worker process.

    Decodes the :mod:`repro.serialize.shard_codec` task, rebuilds the
    shard's source slice and null factory, runs the block exactly as an
    in-process shard would, and encodes the outcome — traces included —
    for the parent.  ``REPRO_SHARD_CRASH=<shard>`` hard-kills the worker
    before chasing; it exists so tests can exercise the worker-death
    path deterministically.
    """
    from repro.serialize import shard_codec

    task = shard_codec.decode_shard_task(payload)
    crash = os.environ.get("REPRO_SHARD_CRASH")
    if crash is not None and crash == str(task.shard):
        os._exit(17)
    source = AbstractInstance(task.templates)
    factory = NullFactory(prefix=task.prefix)
    factory.fast_forward(task.counter)
    outcome = _execute_block(
        source,
        task.regions,
        task.setting,
        factory,
        task.variant,  # type: ignore[arg-type]
        task.engine,  # type: ignore[arg-type]
        task.incremental,
        task.shard,
        remote=True,
    )
    assert outcome.merged_templates is not None
    return shard_codec.encode_shard_outcome(
        shard_codec.ShardOutcome(
            results=tuple(outcome.results),
            region_reuse=outcome.region_reuse,
            error=outcome.error,
            report=outcome.report,
            merged_templates=outcome.merged_templates,
        )
    )


def _process_worker_shm(task_name: str, outcome_name: str) -> str:
    """Chase one shard whose task lives in a shared-memory segment.

    The decode-free variant of :func:`_process_worker`: the future
    carries only two segment *names*.  The worker maps the task segment
    in place (nothing crosses the pool's pickle pipe), chases, and
    publishes the encoded outcome under the parent-assigned name —
    giving the registration away so the parent (which knows every name
    it handed out) is the sole cleaner-upper.  Task-segment unlinking
    stays with the parent: a worker killed at any point here leaks
    nothing.
    """
    from repro.serialize import shard_codec, shm

    segment = shm.attach(task_name)
    try:
        task = shard_codec.decode_shard_task(segment.buf)
    finally:
        segment.close()
    crash = os.environ.get("REPRO_SHARD_CRASH")
    if crash is not None and crash == str(task.shard):
        os._exit(17)
    source = AbstractInstance(task.templates)
    factory = NullFactory(prefix=task.prefix)
    factory.fast_forward(task.counter)
    outcome = _execute_block(
        source,
        task.regions,
        task.setting,
        factory,
        task.variant,  # type: ignore[arg-type]
        task.engine,  # type: ignore[arg-type]
        task.incremental,
        task.shard,
        remote=True,
    )
    assert outcome.merged_templates is not None
    payload = shard_codec.encode_shard_outcome(
        shard_codec.ShardOutcome(
            results=tuple(outcome.results),
            region_reuse=outcome.region_reuse,
            error=outcome.error,
            report=outcome.report,
            merged_templates=outcome.merged_templates,
        )
    )
    shm.write(outcome_name, payload)
    shm.give_away(outcome_name)
    return outcome_name


def _run_blocks_in_processes(
    source: AbstractInstance,
    blocks: list[tuple[Interval, ...]],
    factories: list[NullFactory],
    setting: DataExchangeSetting,
    variant: ChaseVariant,
    engine: EngineMode,
    incremental: bool,
    workers: int | None,
    pool: ProcessPoolExecutor | None,
) -> tuple[list[_BlockOutcome], ParentTimings]:
    """Ship every block to a worker process and gather the outcomes.

    Each task carries only the templates overlapping its block's span
    (block regions come from the canonical partition, so overlap is
    exactly "contributes to some block snapshot").  Where the platform
    supports it (see :func:`repro.serialize.shm.transport_enabled`),
    tasks and outcomes travel through named shared-memory segments and
    the pool's pickle pipe carries only segment names; otherwise the
    payload bytes ride the pipe directly.  Either way the merged result
    is byte-identical.  A worker that dies or raises before returning
    yields an error outcome for its shard — a
    :class:`ShardExecutionError` with the shard index and the executor's
    exception chained — while every shard whose payload *did* come back
    keeps its results and report, mirroring the in-process failure
    contract.  On the shared-memory path the parent finally-sweeps every
    segment name it assigned, so a crashed shard cannot leak
    ``/dev/shm`` blocks.  One caveat: a single worker death breaks the
    whole ``ProcessPoolExecutor`` (standard ``concurrent.futures``
    semantics), so every still-pending shard's result is lost with it
    and the merge reports the earliest such shard; which worker actually
    died is not recoverable from ``BrokenProcessPool``, and a
    caller-supplied pool is broken for the caller too and must be
    recreated.
    """
    from repro.serialize import shard_codec
    from repro.serialize import shm as shm_transport

    use_shm = shm_transport.transport_enabled()
    encode_started = time.perf_counter()
    payloads: list[bytes] = []
    for index, block in enumerate(blocks):
        span = Interval(block[0].start, block[-1].end)
        templates = tuple(
            template
            for template in source.templates
            if template.interval.overlaps(span)
        )
        payloads.append(
            shard_codec.encode_shard_task(
                shard_codec.ShardTask(
                    shard=index,
                    prefix=factories[index].prefix,
                    counter=factories[index].issued,
                    variant=variant,
                    engine=engine,
                    incremental=incremental,
                    regions=block,
                    templates=templates,
                    setting=setting,
                )
            )
        )
    task_names: list[str] = []
    outcome_names: list[str] = []
    if use_shm:
        # Every segment name is fixed before any worker runs: cleanup
        # after a worker death is a sweep over known names.
        run = shm_transport.new_run_id()
        for index, payload in enumerate(payloads):
            name = shm_transport.segment_name(run, index, "t")
            shm_transport.write(name, payload)
            task_names.append(name)
            outcome_names.append(shm_transport.segment_name(run, index, "o"))
    encode_seconds = time.perf_counter() - encode_started

    owned = pool is None
    if owned:
        limit = workers if workers is not None else os.cpu_count() or 1
        pool = ProcessPoolExecutor(max_workers=min(limit, len(blocks)))
    assert pool is not None
    try:
        if use_shm:
            futures = [
                pool.submit(_process_worker_shm, task, outcome)
                for task, outcome in zip(task_names, outcome_names, strict=True)
            ]
        else:
            futures = [
                pool.submit(_process_worker, payload) for payload in payloads
            ]
        outcomes: list[_BlockOutcome] = []
        decode_seconds = 0.0
        for index, future in enumerate(futures):
            try:
                raw = future.result()
            except Exception as exc:  # noqa: BLE001 — surfaced per shard
                # A BrokenProcessPool names no culprit: ONE worker died
                # and every still-pending future raises it, so for this
                # shard we only know its result was lost with the pool.
                if isinstance(exc, BrokenExecutor):
                    stage = (
                        "lost its result: the pool broke because a "
                        "worker process died"
                    )
                else:
                    stage = "worker process died before returning a result"
                outcomes.append(
                    _BlockOutcome(
                        results=[],
                        region_reuse={},
                        error=ShardExecutionError(index, None, exc, stage=stage),
                        report=ShardReport(
                            shard=index,
                            regions=0,
                            seconds=0.0,
                            nulls_issued=0,
                            reuse=None,
                            remote=True,
                        ),
                        merged_templates=(),
                    )
                )
                continue
            decode_started = time.perf_counter()
            if use_shm:
                # The worker returned its outcome segment's name; the
                # decoder copies the flat sections out of the mapping,
                # so the segment is released again before decode returns.
                segment = shm_transport.attach(raw)
                try:
                    outcome = shard_codec.decode_shard_outcome(segment.buf)
                finally:
                    segment.close()
                    shm_transport.unlink(raw)
            else:
                outcome = shard_codec.decode_shard_outcome(raw)
            # Replay the worker's issuance count onto the parent-side
            # factory so a shared base factory (shards=1) stays globally
            # distinct across runs.
            factories[index].fast_forward(outcome.report.nulls_issued)
            outcomes.append(
                _BlockOutcome(
                    results=list(outcome.results),
                    region_reuse=outcome.region_reuse,
                    error=outcome.error,
                    report=outcome.report,
                    merged_templates=outcome.merged_templates,
                )
            )
            decode_seconds += time.perf_counter() - decode_started
        timings = ParentTimings(
            encode_seconds=encode_seconds,
            decode_seconds=decode_seconds,
            merge_seconds=0.0,
            transport="shm" if use_shm else "pickle",
        )
        return outcomes, timings
    finally:
        for name in task_names:
            shm_transport.unlink(name)
        for name in outcome_names:
            shm_transport.unlink(name)
        if owned:
            pool.shutdown()


def abstract_chase(
    source: AbstractInstance,
    setting: DataExchangeSetting,
    null_factory: NullFactory | None = None,
    variant: ChaseVariant = "standard",
    engine: EngineMode = "delta",
    shards: int = 1,
    executor: str | Executor = "serial",
    incremental: bool = True,
    workers: int | None = None,
) -> AbstractChaseResult:
    """``chase(Ia, M)`` on the finite representation.

    The source must be complete (constants only), as the paper assumes
    for source instances.  With ``shards=1`` one shared null factory
    keeps fresh null names globally distinct across regions, mirroring
    the paper's requirement that nulls of different snapshots never
    coincide — and the output is byte-identical to the historical
    sequential implementation.  With ``shards > 1`` the regions are
    partitioned into contiguous blocks, each block chases under its own
    namespaced factory (``Ns<i>_…``, see
    :meth:`NullFactory.for_shard`), and the per-region results merge
    deterministically in timeline order; *executor* selects how blocks
    run (``"serial"``, ``"threads"``, ``"processes"``, or a
    ``concurrent.futures`` executor instance).  Fresh-null *names* then
    differ from the unsharded run, but the result is the same solution
    up to that renaming.

    ``"processes"`` is the only executor that runs CPU-bound shards in
    *parallel* (threads serialize on the GIL): each block ships to a
    worker process as a compact :mod:`repro.serialize.shard_codec`
    payload — the block's source slice, the exchange setting, and the
    shard's null-factory position — and the finished region results,
    traces and reports ship back the same way, so the merged output is
    byte-identical to the same sharded run on any other executor.
    *workers* bounds the pool size (default: one worker per block,
    capped at the CPU count; it also caps the ``"threads"`` pool).
    Passing a ``ProcessPoolExecutor`` instance reuses your warm pool
    through the same wire path.  A worker that dies mid-block surfaces
    as a :class:`ShardExecutionError` carrying the shard index.

    *incremental* (default on) makes each shard's chain of regions reuse
    the previous region's recorded chase wherever the snapshot diff
    permits; the output is byte-identical either way, so the flag only
    trades CPU for bookkeeping.  Sharding composes with it: every block
    is its own incremental chain.
    """
    if not source.is_complete:
        raise InstanceError(
            "abstract source instances must be complete (constants only)"
        )
    if shards < 1:
        raise InstanceError(f"shards must be >= 1, got {shards}")
    if workers is not None and workers < 1:
        raise InstanceError(f"workers must be >= 1, got {workers}")
    regions = source.regions()
    base_factory = null_factory if null_factory is not None else NullFactory()

    if shards == 1:
        blocks = [regions]
        factories = [base_factory]
    else:
        blocks = _partition(regions, shards)
        generation = base_factory.new_generation()
        factories = [
            base_factory.for_shard(index, generation)
            for index in range(len(blocks))
        ]

    def run_block(index: int) -> _BlockOutcome:
        return _execute_block(
            source,
            blocks[index],
            setting,
            factories[index],
            variant,
            engine,
            incremental,
            index,
        )

    indices = range(len(blocks))
    timings: ParentTimings | None = None
    if executor == "processes" or isinstance(executor, ProcessPoolExecutor):
        outcomes, timings = _run_blocks_in_processes(
            source,
            blocks,
            factories,
            setting,
            variant,
            engine,
            incremental,
            workers,
            executor if isinstance(executor, ProcessPoolExecutor) else None,
        )
    elif isinstance(executor, Executor):
        outcomes = list(executor.map(run_block, indices))
    elif executor == "serial":
        outcomes = [run_block(index) for index in indices]
    elif executor == "threads":
        limit = workers if workers is not None else len(blocks)
        with ThreadPoolExecutor(
            max_workers=max(1, min(limit, len(blocks)))
        ) as pool:
            outcomes = list(pool.map(run_block, indices))
    else:
        raise InstanceError(
            f"unknown executor {executor!r}: use 'serial', 'threads', "
            "'processes', or a concurrent.futures.Executor"
        )

    merge_started = time.perf_counter()
    result = _merge(outcomes)
    if timings is not None:
        result.parent_timings = replace(
            timings, merge_seconds=time.perf_counter() - merge_started
        )
    return result


def _merge(outcomes: list[_BlockOutcome]) -> AbstractChaseResult:
    """Fold per-shard outcomes (in timeline order) into one result.

    Contiguous partitioning keeps the concatenated block results in
    region order, so the first failed region (or shard error)
    encountered is the globally first one; regions a failing shard
    skipped lie strictly after it and are simply absent, exactly as in
    the sequential early-exit.  Every shard's report is retained either
    way.  Blocks that crossed the process boundary arrive with their
    template contribution pre-merged in the worker; in-process blocks
    convert their region results here.
    """
    reports = tuple(outcome.report for outcome in outcomes)
    # Pieces, not facts: each shard's contribution stays an opaque
    # iterable (a wire-mapped section for remote blocks, a lazy
    # per-region view for in-process ones) until someone reads the
    # merged instance's template set.
    pieces: list[Iterable[TemplateFact]] = []
    region_results: dict[Interval, SnapshotChaseResult] = {}
    region_reuse: dict[Interval, RegionReuseStats] = {}
    for outcome in outcomes:
        region_reuse.update(outcome.region_reuse)
        failed: tuple[Interval, SnapshotChaseResult] | None = None
        for region, result in outcome.results:
            region_results[region] = result
            if result.failed:
                # _chase_regions stops at the block's first failure, so
                # nothing follows this region in the results list.
                failed = (region, result)
        if outcome.merged_templates is not None:
            pieces.append(outcome.merged_templates)
        else:
            for region, result in outcome.results:
                if result.failed:
                    break
                pieces.append(_LazyRegionTemplates(region, result))
        if failed is not None:
            region, result = failed
            return AbstractChaseResult(
                target=AbstractInstance.deferred(tuple(pieces)),
                failed=True,
                failure=result.failure,
                failed_region=region,
                failed_shard=outcome.report.shard,
                region_results=region_results,
                region_reuse=region_reuse,
                shard_reports=reports,
            )
        if outcome.error is not None:
            return AbstractChaseResult(
                target=AbstractInstance.deferred(tuple(pieces)),
                failed=True,
                failed_region=outcome.error.region,
                failed_shard=outcome.report.shard,
                error=outcome.error,
                region_results=region_results,
                region_reuse=region_reuse,
                shard_reports=reports,
            )

    return AbstractChaseResult(
        target=AbstractInstance.deferred(tuple(pieces)),
        region_results=region_results,
        region_reuse=region_reuse,
        shard_reports=reports,
    )
