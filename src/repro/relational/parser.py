"""Textual syntax for atoms, conjunctions and dependency skeletons.

The library is usable purely programmatically, but examples and tests read
far better with a concise surface syntax:

* atoms — ``Emp(n, c, s)``; bare identifiers are variables, quoted
  strings (``'IBM'``) and numbers are constants;
* conjunctions — atoms joined with ``&``, ``/\\``, ``∧`` or ``AND``;
* implications — ``lhs -> rhs`` where the right-hand side is either a
  conjunction (optionally prefixed ``EXISTS s, r .``) or an equality
  ``x = y``.  Rhs variables absent from the lhs are implicitly
  existential, matching the paper's convention of dropping quantifiers.

This module only builds formula-level objects; the dependency classes in
:mod:`repro.dependencies` and queries in :mod:`repro.query` layer their
own ``parse`` constructors on top of :func:`parse_implication`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import NamedTuple

from repro.errors import ParseError
from repro.relational.formulas import Atom, Conjunction
from repro.relational.terms import Constant, Term, Variable

__all__ = [
    "tokenize",
    "parse_atom",
    "parse_conjunction",
    "parse_implication",
    "ImplicationSkeleton",
]

_TOKEN_PATTERN = re.compile(
    r"""
    (?P<WS>\s+)
  | (?P<ARROW>->|→)
  | (?P<AND>&&?|/\\|∧|\bAND\b)
  | (?P<EXISTS>\bEXISTS\b|∃)
  | (?P<LPAREN>\()
  | (?P<RPAREN>\))
  | (?P<COMMA>,)
  | (?P<DOT>\.)
  | (?P<EQUALS>=)
  | (?P<STRING>'[^']*'|"[^"]*")
  | (?P<NUMBER>\d+)
  | (?P<IDENT>[A-Za-z_][A-Za-z0-9_+']*)
    """,
    re.VERBOSE,
)


class Token(NamedTuple):
    kind: str
    text: str
    position: int


def tokenize(text: str) -> list[Token]:
    """Split *text* into tokens, raising :class:`ParseError` on junk."""
    tokens: list[Token] = []
    position = 0
    while position < len(text):
        match = _TOKEN_PATTERN.match(text, position)
        if match is None:
            raise ParseError("unexpected character", text, position)
        kind = match.lastgroup or ""
        if kind != "WS":
            tokens.append(Token(kind, match.group(), position))
        position = match.end()
    return tokens


@dataclass
class _TokenStream:
    """A cursor over the token list with one-token lookahead."""

    tokens: list[Token]
    text: str
    index: int = 0

    def peek(self) -> Token | None:
        if self.index < len(self.tokens):
            return self.tokens[self.index]
        return None

    def next(self) -> Token:
        token = self.peek()
        if token is None:
            raise ParseError("unexpected end of input", self.text, len(self.text))
        self.index += 1
        return token

    def expect(self, kind: str) -> Token:
        token = self.next()
        if token.kind != kind:
            raise ParseError(
                f"expected {kind}, got {token.kind} ({token.text!r})",
                self.text,
                token.position,
            )
        return token

    def accept(self, kind: str) -> Token | None:
        token = self.peek()
        if token is not None and token.kind == kind:
            self.index += 1
            return token
        return None

    def at_end(self) -> bool:
        return self.index >= len(self.tokens)


def _parse_term(stream: _TokenStream) -> Term:
    token = stream.next()
    if token.kind == "IDENT":
        return Variable(token.text)
    if token.kind == "NUMBER":
        return Constant(int(token.text))
    if token.kind == "STRING":
        return Constant(token.text[1:-1])
    raise ParseError(
        f"expected a term, got {token.kind} ({token.text!r})",
        stream.text,
        token.position,
    )


def _parse_atom(stream: _TokenStream) -> Atom:
    name = stream.expect("IDENT")
    stream.expect("LPAREN")
    args: list[Term] = []
    if stream.peek() is not None and stream.peek().kind != "RPAREN":  # type: ignore[union-attr]
        args.append(_parse_term(stream))
        while stream.accept("COMMA"):
            args.append(_parse_term(stream))
    stream.expect("RPAREN")
    return Atom(name.text, tuple(args))


def _parse_conjunction(stream: _TokenStream) -> Conjunction:
    atoms = [_parse_atom(stream)]
    while stream.accept("AND"):
        atoms.append(_parse_atom(stream))
    return Conjunction(tuple(atoms))


def parse_atom(text: str) -> Atom:
    """Parse a single atom, e.g. ``"Emp(n, 'IBM', s)"``."""
    stream = _TokenStream(tokenize(text), text)
    atom = _parse_atom(stream)
    if not stream.at_end():
        leftover = stream.peek()
        raise ParseError("trailing input after atom", text, leftover.position)  # type: ignore[union-attr]
    return atom


def parse_conjunction(text: str) -> Conjunction:
    """Parse a conjunction, e.g. ``"E(n,c) & S(n,s)"``."""
    stream = _TokenStream(tokenize(text), text)
    conjunction = _parse_conjunction(stream)
    if not stream.at_end():
        leftover = stream.peek()
        raise ParseError("trailing input after conjunction", text, leftover.position)  # type: ignore[union-attr]
    return conjunction


@dataclass(frozen=True)
class ImplicationSkeleton:
    """The parsed shape of ``lhs -> rhs`` before dependency classification.

    * For a tgd-shaped implication, *rhs* is a conjunction and
      *existential_variables* holds the declared (or inferred) existential
      variables of the right-hand side.
    * For an egd-shaped implication, *equality* holds the two variables.
    """

    lhs: Conjunction
    rhs: Conjunction | None
    existential_variables: tuple[Variable, ...]
    equality: tuple[Variable, Variable] | None

    @property
    def is_equality(self) -> bool:
        return self.equality is not None


def parse_implication(text: str) -> ImplicationSkeleton:
    """Parse ``lhs -> rhs`` into an :class:`ImplicationSkeleton`.

    Right-hand sides:

    * ``EXISTS s, r . Emp(n,c,s) & Rank(n,r)`` — explicit existentials;
    * ``Emp(n,c,s)`` — existentials inferred as the rhs-only variables;
    * ``s = s2`` — an equality (egd shape).
    """
    stream = _TokenStream(tokenize(text), text)
    lhs = _parse_conjunction(stream)
    stream.expect("ARROW")

    # Equality right-hand side: IDENT '=' IDENT
    saved = stream.index
    first = stream.accept("IDENT")
    if first is not None and stream.accept("EQUALS"):
        second = stream.expect("IDENT")
        if not stream.at_end():
            leftover = stream.peek()
            raise ParseError(
                "trailing input after equality", text, leftover.position  # type: ignore[union-attr]
            )
        return ImplicationSkeleton(
            lhs=lhs,
            rhs=None,
            existential_variables=(),
            equality=(Variable(first.text), Variable(second.text)),
        )
    stream.index = saved

    declared: list[Variable] = []
    if stream.accept("EXISTS"):
        declared.append(Variable(stream.expect("IDENT").text))
        while stream.accept("COMMA"):
            declared.append(Variable(stream.expect("IDENT").text))
        stream.expect("DOT")
    rhs = _parse_conjunction(stream)
    if not stream.at_end():
        leftover = stream.peek()
        raise ParseError("trailing input after implication", text, leftover.position)  # type: ignore[union-attr]

    if declared:
        existentials = tuple(declared)
    else:
        lhs_vars = lhs.variable_set()
        existentials = tuple(
            var for var in rhs.variables() if var not in lhs_vars
        )
    return ImplicationSkeleton(
        lhs=lhs, rhs=rhs, existential_variables=existentials, equality=None
    )
