"""A small relational algebra over instances — an independent evaluator.

The homomorphism search in :mod:`repro.relational.homomorphism` is the
engine the chase uses; this module provides the textbook alternative:
named-column relations with selection, projection, natural join, rename,
union and difference.  :func:`evaluate_conjunction` compiles a
conjunctive formula into an algebra plan (one selection+rename per atom,
then a left-deep natural join), giving the test suite a second,
independently-written evaluator to cross-check the homomorphism engine
against — a classic differential-testing setup.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Sequence

from repro.errors import FormulaError, InstanceError
from repro.relational.formulas import Atom, Conjunction
from repro.relational.instance import Instance
from repro.relational.terms import Constant, GroundTerm, Variable

__all__ = ["Relation", "evaluate_conjunction", "answers_via_algebra"]


@dataclass(frozen=True)
class Relation:
    """An immutable named-column relation (a set of same-length rows)."""

    columns: tuple[str, ...]
    rows: frozenset[tuple[GroundTerm, ...]]

    def __post_init__(self) -> None:
        if len(set(self.columns)) != len(self.columns):
            raise InstanceError(f"duplicate column names: {self.columns}")
        for row in self.rows:
            if len(row) != len(self.columns):
                raise InstanceError(
                    f"row width {len(row)} does not match columns {self.columns}"
                )

    # -- constructors -------------------------------------------------------
    @classmethod
    def from_rows(
        cls, columns: Sequence[str], rows: Iterable[Sequence[GroundTerm]]
    ) -> "Relation":
        return cls(tuple(columns), frozenset(tuple(row) for row in rows))

    @classmethod
    def from_instance(cls, instance: Instance, relation: str) -> "Relation":
        """Positional columns ``_1, _2, …`` over one relation's tuples."""
        facts = instance.facts_of(relation)
        arity = next(iter(facts)).arity if facts else 0
        columns = tuple(f"_{index + 1}" for index in range(arity))
        return cls(columns, frozenset(item.args for item in facts))

    @classmethod
    def empty(cls, columns: Sequence[str]) -> "Relation":
        return cls(tuple(columns), frozenset())

    # -- structure ------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.rows)

    def __bool__(self) -> bool:
        return bool(self.rows)

    def __iter__(self) -> Iterator[tuple[GroundTerm, ...]]:
        return iter(sorted(self.rows, key=lambda row: tuple(map(repr, row))))

    def index_of(self, column: str) -> int:
        try:
            return self.columns.index(column)
        except ValueError as exc:
            raise InstanceError(
                f"unknown column {column!r}; have {self.columns}"
            ) from exc

    # -- operators ---------------------------------------------------------------
    def select(self, predicate: Callable[[tuple[GroundTerm, ...]], bool]) -> "Relation":
        """σ: keep the rows satisfying *predicate*."""
        return Relation(self.columns, frozenset(r for r in self.rows if predicate(r)))

    def select_eq(self, column: str, value: GroundTerm) -> "Relation":
        """σ[column = value]."""
        position = self.index_of(column)
        return self.select(lambda row: row[position] == value)

    def select_same(self, first: str, second: str) -> "Relation":
        """σ[first = second] for two columns (self-join conditions)."""
        i, j = self.index_of(first), self.index_of(second)
        return self.select(lambda row: row[i] == row[j])

    def project(self, columns: Sequence[str]) -> "Relation":
        """π: keep (and reorder to) the given columns; duplicates collapse."""
        positions = [self.index_of(column) for column in columns]
        return Relation(
            tuple(columns),
            frozenset(tuple(row[p] for p in positions) for row in self.rows),
        )

    def rename(self, mapping: dict[str, str]) -> "Relation":
        """ρ: rename columns; unmentioned columns keep their names."""
        return Relation(
            tuple(mapping.get(column, column) for column in self.columns),
            self.rows,
        )

    def natural_join(self, other: "Relation") -> "Relation":
        """⋈: join on all shared column names (cross product if none)."""
        shared = [c for c in self.columns if c in other.columns]
        other_only = [c for c in other.columns if c not in shared]
        my_positions = [self.index_of(c) for c in shared]
        their_positions = [other.index_of(c) for c in shared]
        their_rest = [other.index_of(c) for c in other_only]

        # Hash join on the shared-column key.
        buckets: dict[tuple, list[tuple[GroundTerm, ...]]] = {}
        for row in other.rows:
            key = tuple(row[p] for p in their_positions)
            buckets.setdefault(key, []).append(row)
        joined: set[tuple[GroundTerm, ...]] = set()
        for row in self.rows:
            key = tuple(row[p] for p in my_positions)
            for match in buckets.get(key, ()):
                joined.add(row + tuple(match[p] for p in their_rest))
        return Relation(self.columns + tuple(other_only), frozenset(joined))

    def union(self, other: "Relation") -> "Relation":
        if self.columns != other.columns:
            raise InstanceError(
                f"union requires identical headers: {self.columns} vs {other.columns}"
            )
        return Relation(self.columns, self.rows | other.rows)

    def difference(self, other: "Relation") -> "Relation":
        if self.columns != other.columns:
            raise InstanceError(
                f"difference requires identical headers: {self.columns} vs "
                f"{other.columns}"
            )
        return Relation(self.columns, self.rows - other.rows)


def _atom_to_relation(atom: Atom, instance: Instance, atom_index: int) -> Relation:
    """Compile one atom: scan, select constants/repeats, project variables."""
    base = Relation.from_instance(instance, atom.relation)
    if base.columns and len(base.columns) != atom.arity:
        raise FormulaError(
            f"atom {atom} has arity {atom.arity}, relation has "
            f"{len(base.columns)} columns"
        )
    if not base.columns and atom.arity:
        base = Relation.empty(tuple(f"_{i + 1}" for i in range(atom.arity)))

    seen: dict[Variable, str] = {}
    keep: list[str] = []
    renames: dict[str, str] = {}
    for position, arg in enumerate(atom.args):
        column = f"_{position + 1}"
        if isinstance(arg, Constant):
            base = base.select_eq(column, arg)
        else:
            assert isinstance(arg, Variable)
            if arg in seen:
                base = base.select_same(seen[arg], column)
            else:
                seen[arg] = column
                keep.append(column)
                renames[column] = arg.name
    return base.project(keep).rename(renames)


def evaluate_conjunction(
    conjunction: Conjunction | Sequence[Atom], instance: Instance
) -> Relation:
    """Evaluate a conjunctive formula as a left-deep natural-join plan.

    The result's columns are the formula's variables (by name); shared
    variables across atoms turn into natural-join conditions, exactly as
    in the homomorphism reading.
    """
    atoms = (
        conjunction.atoms
        if isinstance(conjunction, Conjunction)
        else tuple(conjunction)
    )
    if not atoms:
        raise FormulaError("cannot evaluate an empty conjunction")
    plan = _atom_to_relation(atoms[0], instance, 0)
    for index, atom in enumerate(atoms[1:], start=1):
        plan = plan.natural_join(_atom_to_relation(atom, instance, index))
    return plan


def answers_via_algebra(
    head: Sequence[Variable],
    body: Conjunction,
    instance: Instance,
) -> frozenset[tuple[GroundTerm, ...]]:
    """Evaluate a conjunctive query through the algebra plan.

    Returns the same tuples as homomorphism-based evaluation — asserted
    by the differential tests in ``tests/unit/test_algebra.py``.
    """
    result = evaluate_conjunction(body, instance)
    projected = result.project([variable.name for variable in head])
    return frozenset(projected.rows)
