"""Relational substrate: terms, facts, schemas, instances, homomorphisms.

This is the classical (non-temporal) relational machinery the paper builds
on: naive-table instances over constants and labeled nulls, conjunctive
formulas, and the homomorphism searches that power the chase and query
answering.
"""

from repro.relational.fact import Fact, fact
from repro.relational.formulas import Atom, Conjunction, TemporalConjunction
from repro.relational.homomorphism import (
    find_homomorphism,
    find_homomorphisms,
    find_homomorphisms_with_images,
    find_instance_homomorphism,
    has_homomorphism,
    has_instance_homomorphism,
    is_homomorphism,
)
from repro.relational.instance import Instance
from repro.relational.parser import (
    ImplicationSkeleton,
    parse_atom,
    parse_conjunction,
    parse_implication,
)
from repro.relational.schema import TEMPORAL_ATTRIBUTE, RelationSchema, Schema
from repro.relational.terms import (
    AnnotatedNull,
    Constant,
    GroundTerm,
    LabeledNull,
    Term,
    Variable,
    is_ground,
    term_sort_key,
)

__all__ = [
    "Fact",
    "fact",
    "Atom",
    "Conjunction",
    "TemporalConjunction",
    "find_homomorphism",
    "find_homomorphisms",
    "find_homomorphisms_with_images",
    "find_instance_homomorphism",
    "has_homomorphism",
    "has_instance_homomorphism",
    "is_homomorphism",
    "Instance",
    "ImplicationSkeleton",
    "parse_atom",
    "parse_conjunction",
    "parse_implication",
    "TEMPORAL_ATTRIBUTE",
    "RelationSchema",
    "Schema",
    "AnnotatedNull",
    "Constant",
    "GroundTerm",
    "LabeledNull",
    "Term",
    "Variable",
    "is_ground",
    "term_sort_key",
]
