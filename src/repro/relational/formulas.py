"""Atoms and conjunctions — the formula layer under dependencies and queries.

An :class:`Atom` is a relation applied to variables and constants; a
:class:`Conjunction` is a finite set of atoms read conjunctively.  Both are
*non-temporal*: they speak about single snapshots.  Their temporal lifting
(the shared universally quantified variable ``t`` of Section 2, and the
per-atom temporal variables of the normalized form ``N(Φ+)`` of
Section 4.2) is :class:`TemporalConjunction`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import count
from typing import Iterator, Mapping, Sequence

from repro.errors import FormulaError
from repro.relational.fact import Fact
from repro.relational.schema import Schema
from repro.relational.terms import Constant, GroundTerm, Term, Variable, is_ground

__all__ = ["Atom", "Conjunction", "TemporalConjunction"]


@dataclass(frozen=True, slots=True)
class Atom:
    """A relational atom ``R(u1, …, un)`` over variables and constants.

    ``_search_plan`` caches the homomorphism search's pre-analysis of the
    atom (constant vs. variable positions); atoms are immutable, so the
    plan stays valid for the atom's lifetime.
    """

    relation: str
    args: tuple[Term, ...]
    _search_plan: object = field(
        default=None, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if not self.relation:
            raise FormulaError("atom relation name must be non-empty")
        for arg in self.args:
            if not isinstance(arg, (Variable, Constant)):
                raise FormulaError(
                    f"atom arguments must be variables or constants, got {arg!r}"
                )

    @property
    def arity(self) -> int:
        return len(self.args)

    def variables(self) -> tuple[Variable, ...]:
        """The variables of the atom, in positional order with duplicates."""
        return tuple(arg for arg in self.args if isinstance(arg, Variable))

    def variable_set(self) -> frozenset[Variable]:
        return frozenset(self.variables())

    def constants(self) -> tuple[Constant, ...]:
        return tuple(arg for arg in self.args if isinstance(arg, Constant))

    def substitute(self, mapping: Mapping[Variable, Term]) -> "Atom":
        """Replace variables per *mapping*; unmapped variables persist."""
        new_args = tuple(
            mapping.get(arg, arg) if isinstance(arg, Variable) else arg
            for arg in self.args
        )
        return Atom(self.relation, new_args)

    def instantiate(self, mapping: Mapping[Variable, GroundTerm]) -> Fact:
        """Apply a *total* assignment, producing a fact.

        Raises :class:`FormulaError` when some variable stays unassigned.
        """
        args: list[GroundTerm] = []
        for arg in self.args:
            if isinstance(arg, Variable):
                if arg not in mapping:
                    raise FormulaError(
                        f"variable {arg} of atom {self} is unassigned"
                    )
                value = mapping[arg]
                if not is_ground(value):
                    raise FormulaError(
                        f"assignment for {arg} is not ground: {value!r}"
                    )
                args.append(value)
            else:
                args.append(arg)  # a constant
        return Fact(self.relation, tuple(args))

    def validate_against(self, schema: Schema) -> None:
        """Arity/existence check against a schema."""
        schema.validate_arity(self.relation, self.arity)

    def __getstate__(self) -> tuple:
        # Identity only: the search plan is a per-process derived object
        # and is rebuilt lazily after unpickling.
        return (self.relation, self.args)

    def __setstate__(self, state: tuple) -> None:
        relation, args = state
        object.__setattr__(self, "relation", relation)
        object.__setattr__(self, "args", args)
        object.__setattr__(self, "_search_plan", None)

    def __str__(self) -> str:
        body = ", ".join(
            str(arg) if isinstance(arg, Variable) else repr(arg.value)
            if isinstance(arg.value, str)
            else str(arg)
            for arg in self.args
        )
        return f"{self.relation}({body})"


@dataclass(frozen=True, slots=True)
class Conjunction:
    """A conjunction of atoms ``R1(..) ∧ … ∧ Rk(..)`` (order preserved)."""

    atoms: tuple[Atom, ...]

    def __post_init__(self) -> None:
        if not self.atoms:
            raise FormulaError("conjunction must contain at least one atom")

    def __len__(self) -> int:
        """``|φ|``: the number of atoms, as used by Algorithm 1."""
        return len(self.atoms)

    def __iter__(self) -> Iterator[Atom]:
        return iter(self.atoms)

    def variables(self) -> tuple[Variable, ...]:
        """All variables in order of first occurrence, without duplicates."""
        seen: dict[Variable, None] = {}
        for atom in self.atoms:
            for var in atom.variables():
                seen.setdefault(var, None)
        return tuple(seen)

    def variable_set(self) -> frozenset[Variable]:
        return frozenset(self.variables())

    def relations(self) -> tuple[str, ...]:
        return tuple(atom.relation for atom in self.atoms)

    def substitute(self, mapping: Mapping[Variable, Term]) -> "Conjunction":
        return Conjunction(tuple(atom.substitute(mapping) for atom in self.atoms))

    def instantiate(self, mapping: Mapping[Variable, GroundTerm]) -> tuple[Fact, ...]:
        """Apply a total assignment atom-wise, producing facts."""
        return tuple(atom.instantiate(mapping) for atom in self.atoms)

    def validate_against(self, schema: Schema) -> None:
        for atom in self.atoms:
            atom.validate_against(schema)

    def __str__(self) -> str:
        return " ∧ ".join(str(atom) for atom in self.atoms)


@dataclass(frozen=True, slots=True)
class TemporalConjunction:
    """A conjunction whose atoms each carry a temporal variable.

    ``φ+(x, t)`` of the paper is the *shared* form: every atom carries the
    same variable ``t`` (one time interval for all atoms).  The normalized
    form ``φ* ∈ N(Φ+)`` gives each atom its own temporal variable, so the
    atoms may match facts with different stamps (Section 4.2, Example 9).

    The data atoms stay non-temporal :class:`Atom` objects; the pairing
    with per-atom temporal variables is maintained positionally.
    """

    atoms: tuple[Atom, ...]
    temporal_variables: tuple[Variable, ...]
    _normalized: object = field(
        default=None, init=False, repr=False, compare=False
    )
    _lifted_atoms: object = field(
        default=None, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if not self.atoms:
            raise FormulaError("temporal conjunction must contain at least one atom")
        if len(self.atoms) != len(self.temporal_variables):
            raise FormulaError(
                "need exactly one temporal variable per atom: "
                f"{len(self.atoms)} atoms, {len(self.temporal_variables)} variables"
            )
        data_vars = {var for atom in self.atoms for var in atom.variables()}
        for tvar in self.temporal_variables:
            if tvar in data_vars:
                raise FormulaError(
                    f"temporal variable {tvar} also occurs as a data variable"
                )

    # -- constructors -------------------------------------------------------
    @classmethod
    def shared(
        cls, atoms: Sequence[Atom], temporal_variable: Variable | None = None
    ) -> "TemporalConjunction":
        """The lifted form ``φ+(x, t)``: one ``t`` shared by every atom.

        With no explicit variable the shared ``t`` is chosen to avoid the
        conjunction's data variables (``t``, then ``t0``, ``t1``, …), so
        formulas that happen to use ``t`` as data still lift.  An explicit
        ``temporal_variable`` that collides remains an error.
        """
        tvar = temporal_variable
        if tvar is None:
            data_names = {var.name for atom in atoms for var in atom.variables()}
            name = "t"
            for index in count():
                if name not in data_names:
                    break
                name = f"t{index}"
            tvar = Variable(name)
        return cls(tuple(atoms), tuple(tvar for _ in atoms))

    @classmethod
    def from_conjunction(
        cls, conjunction: Conjunction, temporal_variable: Variable | None = None
    ) -> "TemporalConjunction":
        return cls.shared(conjunction.atoms, temporal_variable)

    # -- the N(·) transformation (Section 4.2) --------------------------------
    def normalized(self, prefix: str = "t_") -> "TemporalConjunction":
        """``N(φ+)``: replace each temporal occurrence with a fresh variable.

        After normalization the temporal variable of every atom is distinct,
        so a homomorphism may map each atom to a fact with a different
        stamp — the matching mode Algorithm 1 uses to build its set ``S``.
        The default-prefix result is cached (normalization recomputes it
        for the same Φ+ on every chase run).
        """
        if prefix == "t_" and self._normalized is not None:
            return self._normalized  # type: ignore[return-value]
        data_vars = {var.name for atom in self.atoms for var in atom.variables()}
        names = count(1)
        fresh: list[Variable] = []
        for _ in self.atoms:
            name = f"{prefix}{next(names)}"
            while name in data_vars:
                name = f"{prefix}{next(names)}"
            fresh.append(Variable(name))
        result = TemporalConjunction(self.atoms, tuple(fresh))
        if prefix == "t_":
            object.__setattr__(self, "_normalized", result)
        return result

    @property
    def is_shared(self) -> bool:
        """``True`` iff all atoms carry one and the same temporal variable."""
        return len(set(self.temporal_variables)) == 1

    @property
    def shared_variable(self) -> Variable:
        if not self.is_shared:
            raise FormulaError("temporal conjunction does not share one variable")
        return self.temporal_variables[0]

    def data_conjunction(self) -> Conjunction:
        """Drop the temporal variables: the snapshot-level ``φ(x)``."""
        return Conjunction(self.atoms)

    def __getstate__(self) -> tuple:
        # Identity only: normalized/lifted-atom caches are derived and
        # rebuilt lazily after unpickling.
        return (self.atoms, self.temporal_variables)

    def __setstate__(self, state: tuple) -> None:
        atoms, temporal_variables = state
        object.__setattr__(self, "atoms", atoms)
        object.__setattr__(self, "temporal_variables", temporal_variables)
        object.__setattr__(self, "_normalized", None)
        object.__setattr__(self, "_lifted_atoms", None)

    def __len__(self) -> int:
        return len(self.atoms)

    def __iter__(self) -> Iterator[tuple[Atom, Variable]]:
        return iter(zip(self.atoms, self.temporal_variables, strict=True))

    def variables(self) -> tuple[Variable, ...]:
        """Data variables then temporal variables, first-occurrence order."""
        seen: dict[Variable, None] = {}
        for atom in self.atoms:
            for var in atom.variables():
                seen.setdefault(var, None)
        for tvar in self.temporal_variables:
            seen.setdefault(tvar, None)
        return tuple(seen)

    def __str__(self) -> str:
        parts = [
            f"{atom.relation}+({', '.join(map(str, atom.args + (tvar,)))})"
            for atom, tvar in zip(self.atoms, self.temporal_variables, strict=True)
        ]
        return " ∧ ".join(parts)
