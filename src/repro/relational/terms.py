"""Terms: constants, variables, labeled nulls, interval-annotated nulls.

The paper distinguishes four kinds of values:

* **constants** — the ordinary data values of source instances;
* **variables** — placeholders in dependencies and queries;
* **labeled nulls** — the unknowns produced by the classical chase in a
  single snapshot (Fagin et al.);
* **interval-annotated nulls** ``N^[s,e)`` (Section 4.1) — the unknowns
  produced by the c-chase on the concrete view.  ``N^[s,e)`` stands for
  the *sequence* of distinct labeled nulls ``⟨Ns, …, Ne−1⟩``: projecting
  on a time point ℓ (``Π_ℓ``) selects the snapshot-level null ``N@ℓ``.

All terms are immutable and hashable so they can live in facts, sets and
dictionaries.  Identity of an annotated null is the pair *(base name,
annotation interval)* — fragmenting a fact re-annotates its nulls, and the
fragments' nulls are *different* unknowns (paper, Section 4.2).

Terms are hashed constantly (index probes, assignment dicts, fact sets),
so every term kind caches its hash on first use.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Union

from repro.errors import InstanceError, TemporalError
from repro.temporal.interval import Interval

__all__ = [
    "Term",
    "Constant",
    "Variable",
    "LabeledNull",
    "AnnotatedNull",
    "GroundTerm",
    "is_ground",
    "term_sort_key",
]


def _cache_hash(term: Term, value: int) -> int:
    """Store a computed hash on a frozen term (0 is the unset sentinel)."""
    if value == 0:
        value = -2
    object.__setattr__(term, "_hash", value)
    return value


def _restore_term(term: Term, fields: Mapping[str, object]) -> None:
    """Rebuild a frozen term from its identity fields, caches unset.

    Pickle support: the generated frozen-slots ``__getstate__`` would
    ship the cached hash and sort key with every term, and ``str`` hashes
    are salted per process (``PYTHONHASHSEED``), so a cached hash must
    never cross a process boundary.  Every term kind's ``__setstate__``
    funnels through here.
    """
    for name, value in fields.items():
        object.__setattr__(term, name, value)
    object.__setattr__(term, "_hash", 0)
    object.__setattr__(term, "_skey", None)


class Term:
    """Abstract base class of all term kinds."""

    __slots__ = ()

    @property
    def is_constant(self) -> bool:
        return isinstance(self, Constant)

    @property
    def is_variable(self) -> bool:
        return isinstance(self, Variable)

    @property
    def is_null(self) -> bool:
        return isinstance(self, (LabeledNull, AnnotatedNull))


@dataclass(frozen=True, slots=True)
class Constant(Term):
    """An ordinary data value; homomorphisms are the identity on constants."""

    value: object
    _hash: int = field(default=0, init=False, repr=False, compare=False)
    _skey: tuple | None = field(default=None, init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        try:
            hash(self.value)
        except TypeError as exc:
            raise InstanceError(
                f"constant value must be hashable, got {self.value!r}"
            ) from exc

    def __hash__(self) -> int:
        return self._hash or _cache_hash(self, hash((Constant, self.value)))

    def __getstate__(self):
        return {"value": self.value}

    def __setstate__(self, state) -> None:
        _restore_term(self, state)

    def __str__(self) -> str:
        return str(self.value)

    def __repr__(self) -> str:
        return f"Constant({self.value!r})"


@dataclass(frozen=True, slots=True)
class Variable(Term):
    """A variable occurring in a dependency or query (never in instances)."""

    name: str
    _hash: int = field(default=0, init=False, repr=False, compare=False)
    _skey: tuple | None = field(default=None, init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if not self.name:
            raise InstanceError("variable name must be non-empty")

    def __hash__(self) -> int:
        return self._hash or _cache_hash(self, hash((Variable, self.name)))

    def __getstate__(self):
        return {"name": self.name}

    def __setstate__(self, state) -> None:
        _restore_term(self, state)

    def __str__(self) -> str:
        return self.name

    def __repr__(self) -> str:
        return f"Variable({self.name!r})"


@dataclass(frozen=True, slots=True)
class LabeledNull(Term):
    """A classical labeled null, the unknown of a single snapshot."""

    name: str
    _hash: int = field(default=0, init=False, repr=False, compare=False)
    _skey: tuple | None = field(default=None, init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if not self.name:
            raise InstanceError("null name must be non-empty")

    def __hash__(self) -> int:
        return self._hash or _cache_hash(self, hash((LabeledNull, self.name)))

    def __getstate__(self):
        return {"name": self.name}

    def __setstate__(self, state) -> None:
        _restore_term(self, state)

    def __str__(self) -> str:
        return self.name

    def __repr__(self) -> str:
        return f"LabeledNull({self.name!r})"


@dataclass(frozen=True, slots=True)
class AnnotatedNull(Term):
    """An interval-annotated null ``N^[s,e)`` (paper, Section 4.1).

    Represents the sequence of *distinct* labeled nulls
    ``⟨N@s, N@s+1, …⟩``, one per snapshot in the annotation.  Two
    annotated nulls are the same unknown only when both base name and
    annotation coincide.
    """

    base: str
    annotation: Interval
    _hash: int = field(default=0, init=False, repr=False, compare=False)
    _skey: tuple | None = field(default=None, init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if not self.base:
            raise InstanceError("annotated null base name must be non-empty")
        if "@" in self.base:
            raise InstanceError(
                "annotated null base names must not contain '@' (reserved "
                f"for snapshot projection): {self.base!r}"
            )

    def __hash__(self) -> int:
        return self._hash or _cache_hash(
            self, hash((AnnotatedNull, self.base, self.annotation))
        )

    def __getstate__(self):
        return {"base": self.base, "annotation": self.annotation}

    def __setstate__(self, state) -> None:
        _restore_term(self, state)

    def project(self, point: int) -> LabeledNull:
        """``Π_ℓ(N^[s,e)) = N@ℓ`` — select the snapshot-level null at ℓ.

        Raises :class:`TemporalError` when ℓ lies outside the annotation.
        """
        if point not in self.annotation:
            raise TemporalError(
                f"cannot project {self} on time point {point}: "
                f"outside annotation {self.annotation}"
            )
        return LabeledNull(f"{self.base}@{point}")

    def reannotate(self, stamp: Interval) -> "AnnotatedNull":
        """The null for a fragment of the original fact.

        Fragmentation keeps the base but narrows the annotation to the
        fragment's stamp; the paper requires the annotation to always equal
        the time interval of the containing fact.
        """
        if not self.annotation.contains_interval(stamp):
            raise TemporalError(
                f"cannot re-annotate {self} with {stamp}: "
                f"not a sub-interval of {self.annotation}"
            )
        return AnnotatedNull(self.base, stamp)

    def __str__(self) -> str:
        return f"{self.base}^{self.annotation}"

    def __repr__(self) -> str:
        return f"AnnotatedNull({self.base!r}, {self.annotation!r})"


#: Terms that may appear in instances (facts must be variable-free).
GroundTerm = Union[Constant, LabeledNull, AnnotatedNull]


def is_ground(term: Term) -> bool:
    """``True`` iff *term* may appear in an instance (not a variable)."""
    return isinstance(term, (Constant, LabeledNull, AnnotatedNull))


def term_sort_key(term: Term) -> tuple:
    """A deterministic ordering over mixed terms, used for stable output.

    Orders constants before labeled nulls before annotated nulls before
    variables; within a kind, lexicographically by rendered value.  The
    key is cached on the term — sorting and index maintenance recompute
    it constantly on the same objects.
    """
    cached = term._skey  # type: ignore[attr-defined]
    if cached is not None:
        return cached
    if isinstance(term, Constant):
        key = (0, type(term.value).__name__, str(term.value))
    elif isinstance(term, LabeledNull):
        key = (1, "", term.name)
    elif isinstance(term, AnnotatedNull):
        key = (2, term.base, str(term.annotation))
    elif isinstance(term, Variable):
        key = (3, "", term.name)
    else:
        raise InstanceError(f"unknown term kind: {term!r}")
    object.__setattr__(term, "_skey", key)
    return key
