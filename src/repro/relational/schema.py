"""Database schemas and the lifting ``R → R+`` of Section 2.

A :class:`RelationSchema` fixes a relation's name and attribute names;
a :class:`Schema` is a named collection of relation schemas.  The paper
associates with every schema ``R`` the *concrete* schema ``R+`` in which
each n-ary relation gains an (n+1)-th temporal attribute ``T`` ranging
over time intervals.  :meth:`Schema.lift` performs that transformation.

Schemas are optional almost everywhere in the library — instances can be
built schema-free — but they drive validation and provide the attribute
headers used when regenerating the paper's figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping

from repro.errors import SchemaError

__all__ = ["RelationSchema", "Schema", "TEMPORAL_ATTRIBUTE"]

#: Conventional name of the temporal attribute added by lifting.
TEMPORAL_ATTRIBUTE = "Time"


@dataclass(frozen=True, slots=True)
class RelationSchema:
    """A relation name together with its ordered attribute names."""

    name: str
    attributes: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("relation name must be non-empty")
        if len(set(self.attributes)) != len(self.attributes):
            raise SchemaError(
                f"duplicate attribute names in relation {self.name}: {self.attributes}"
            )

    @property
    def arity(self) -> int:
        return len(self.attributes)

    def lift(self, temporal_attribute: str = TEMPORAL_ATTRIBUTE) -> "RelationSchema":
        """The concrete relation ``R+(A1, …, An, T)`` for this ``R``."""
        if temporal_attribute in self.attributes:
            raise SchemaError(
                f"relation {self.name} already has an attribute named "
                f"{temporal_attribute!r}; cannot lift"
            )
        return RelationSchema(self.name, self.attributes + (temporal_attribute,))

    def position_of(self, attribute: str) -> int:
        """Index of *attribute*, raising :class:`SchemaError` if absent."""
        try:
            return self.attributes.index(attribute)
        except ValueError as exc:
            raise SchemaError(
                f"relation {self.name} has no attribute {attribute!r}"
            ) from exc

    def __str__(self) -> str:
        return f"{self.name}({', '.join(self.attributes)})"


@dataclass(frozen=True)
class Schema:
    """An immutable collection of relation schemas keyed by name."""

    relations: Mapping[str, RelationSchema] = field(default_factory=dict)

    def __init__(self, relations: Iterable[RelationSchema] = ()):
        by_name: dict[str, RelationSchema] = {}
        for rel in relations:
            if rel.name in by_name:
                raise SchemaError(f"duplicate relation name {rel.name!r} in schema")
            by_name[rel.name] = rel
        object.__setattr__(self, "relations", by_name)

    # -- construction -----------------------------------------------------
    @classmethod
    def of(cls, **relations: Iterable[str]) -> "Schema":
        """Keyword-style construction.

        ``Schema.of(E=("name", "company"), S=("name", "salary"))``
        """
        return cls(
            RelationSchema(name, tuple(attrs)) for name, attrs in relations.items()
        )

    def lift(self, temporal_attribute: str = TEMPORAL_ATTRIBUTE) -> "Schema":
        """The concrete schema ``R+``: every relation gains attribute ``T``."""
        return Schema(rel.lift(temporal_attribute) for rel in self)

    def merge(self, other: "Schema") -> "Schema":
        """Disjoint union of two schemas (source ∪ target).

        Raises :class:`SchemaError` on a name clash — the paper requires
        source and target schemas to be disjoint.
        """
        overlap = set(self.relations) & set(other.relations)
        if overlap:
            raise SchemaError(
                f"schemas are not disjoint; shared relation names: {sorted(overlap)}"
            )
        return Schema(list(self) + list(other))

    # -- lookups ------------------------------------------------------------
    def __contains__(self, name: object) -> bool:
        return name in self.relations

    def __getitem__(self, name: str) -> RelationSchema:
        try:
            return self.relations[name]
        except KeyError as exc:
            raise SchemaError(f"unknown relation {name!r}") from exc

    def get(self, name: str) -> RelationSchema | None:
        return self.relations.get(name)

    def __iter__(self) -> Iterator[RelationSchema]:
        return iter(self.relations.values())

    def __len__(self) -> int:
        return len(self.relations)

    def relation_names(self) -> tuple[str, ...]:
        return tuple(self.relations)

    def arity_of(self, name: str) -> int:
        return self[name].arity

    def validate_arity(self, relation: str, arity: int) -> None:
        """Check that *relation* exists with the given arity."""
        expected = self[relation].arity
        if arity != expected:
            raise SchemaError(
                f"relation {relation} has arity {expected}, got {arity} arguments"
            )

    def __str__(self) -> str:
        return "{" + "; ".join(str(rel) for rel in self) + "}"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return dict(self.relations) == dict(other.relations)

    def __hash__(self) -> int:
        return hash(tuple(sorted((name, rel.attributes) for name, rel in self.relations.items())))
