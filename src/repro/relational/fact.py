"""Snapshot-level facts ``R(a1, …, an)``.

A fact is a relation name applied to ground terms (constants or nulls).
These populate the snapshots of the abstract view; concrete, interval-
stamped facts live in :mod:`repro.concrete.concrete_fact`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator

from repro.errors import InstanceError
from repro.relational.terms import (
    AnnotatedNull,
    Constant,
    GroundTerm,
    LabeledNull,
    Term,
    is_ground,
    term_sort_key,
)

__all__ = ["Fact", "fact"]


@dataclass(frozen=True, slots=True)
class Fact:
    """An immutable relational fact over ground terms.

    Facts live in hash sets and sorted index buckets, so both the hash
    and the sort key are cached after first use.
    """

    relation: str
    args: tuple[GroundTerm, ...]
    _hash: int = field(default=0, init=False, repr=False, compare=False)
    _sort_key: tuple | None = field(
        default=None, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if not self.relation:
            raise InstanceError("fact relation name must be non-empty")
        for arg in self.args:
            if not is_ground(arg):
                raise InstanceError(
                    f"fact argument must be ground (constant or null), got {arg!r}"
                )

    @classmethod
    def make(cls, relation: str, args: tuple[GroundTerm, ...]) -> "Fact":
        """Trusted constructor: the caller guarantees *args* are ground.

        The chase instantiates thousands of facts from values that are
        ground by construction (match bindings and fresh nulls); this
        path skips the dataclass ``__init__``/validation machinery.
        """
        self = object.__new__(cls)
        object.__setattr__(self, "relation", relation)
        object.__setattr__(self, "args", args)
        object.__setattr__(self, "_hash", 0)
        object.__setattr__(self, "_sort_key", None)
        return self

    def __hash__(self) -> int:
        cached = self._hash
        if cached == 0:
            cached = hash((self.relation, self.args)) or -2
            object.__setattr__(self, "_hash", cached)
        return cached

    def __getstate__(self):
        # Identity fields only: cached hashes are salted per process
        # (PYTHONHASHSEED) and must not cross a process boundary; the
        # sort key is cheap to rebuild and pure dead weight on the wire.
        return (self.relation, self.args)

    def __setstate__(self, state) -> None:
        relation, args = state
        object.__setattr__(self, "relation", relation)
        object.__setattr__(self, "args", args)
        object.__setattr__(self, "_hash", 0)
        object.__setattr__(self, "_sort_key", None)

    @property
    def arity(self) -> int:
        return len(self.args)

    def nulls(self) -> Iterator[LabeledNull | AnnotatedNull]:
        """The nulls occurring in this fact, in argument order."""
        for arg in self.args:
            if isinstance(arg, (LabeledNull, AnnotatedNull)):
                yield arg

    def constants(self) -> Iterator[Constant]:
        """The constants occurring in this fact, in argument order."""
        for arg in self.args:
            if isinstance(arg, Constant):
                yield arg

    def has_nulls(self) -> bool:
        return any(True for _ in self.nulls())

    def map_args(self, mapper: Callable[[GroundTerm], Term]) -> "Fact":
        """Apply *mapper* to every argument, producing a new fact."""
        return Fact(self.relation, tuple(mapper(arg) for arg in self.args))  # type: ignore[arg-type]

    def substitute(self, mapping: dict[Term, Term]) -> "Fact":
        """Replace arguments per *mapping* (identity where unmapped)."""
        return self.map_args(lambda arg: mapping.get(arg, arg))  # type: ignore[arg-type,return-value]

    def sort_key(self) -> tuple:
        """Deterministic ordering for stable rendering of instances."""
        cached = self._sort_key
        if cached is None:
            cached = (
                self.relation,
                tuple([term_sort_key(arg) for arg in self.args]),
            )
            object.__setattr__(self, "_sort_key", cached)
        return cached

    def __str__(self) -> str:
        rendered = ", ".join(str(arg) for arg in self.args)
        return f"{self.relation}({rendered})"

    def __repr__(self) -> str:
        return f"Fact({self.relation!r}, {self.args!r})"


def fact(relation: str, *values: object) -> Fact:
    """Convenience constructor wrapping raw Python values as constants.

    ``fact("E", "Ada", "IBM")`` builds ``E(Ada, IBM)``.  Term instances
    pass through unchanged, so nulls can be mixed in:
    ``fact("Emp", "Ada", "IBM", LabeledNull("N"))``.
    """
    args: list[GroundTerm] = []
    for value in values:
        if isinstance(value, Term):
            if not is_ground(value):
                raise InstanceError(f"fact() arguments must be ground, got {value!r}")
            args.append(value)  # type: ignore[arg-type]
        else:
            args.append(Constant(value))
    return Fact(relation, tuple(args))
