"""In-memory relational instances (the snapshots of the abstract view).

An :class:`Instance` stores facts grouped by relation with hash indexes
``(position, value) → facts`` for the homomorphism search.  Index buckets
are built lazily per relation on the first probe and from then on
**maintained incrementally** by :meth:`add` / :meth:`discard` — the chase
mutates its target between homomorphism checks constantly, and rebuilding
the index on every insert is what used to dominate chase runtime.

Each bucket is kept pre-sorted by :meth:`Fact.sort_key`, so
:meth:`lookup_ordered` hands the search deterministic candidate order for
free (no per-node sorting).  Instances compare by their fact sets, support
substitution (used by egd chase steps), and report their nulls/constants
(used by solution checks and naïve evaluation).

Instances may optionally carry a :class:`~repro.relational.schema.Schema`;
when present, every added fact is validated against it.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from typing import Callable, Iterable, Iterator, Mapping, Sequence

from repro.errors import InstanceError, SchemaError
from repro.relational.fact import Fact
from repro.relational.schema import Schema
from repro.relational.terms import (
    AnnotatedNull,
    Constant,
    GroundTerm,
    LabeledNull,
    Term,
)

__all__ = ["Instance"]


def _remove_sorted(bucket: list[Fact], item: Fact) -> None:
    """Delete *item* from a list kept sorted by ``Fact.sort_key``."""
    position = bisect_left(bucket, item.sort_key(), key=Fact.sort_key)
    while position < len(bucket):
        if bucket[position] == item:
            del bucket[position]
            return
        position += 1
    raise InstanceError(f"index bucket out of sync: {item} missing")


class Instance:
    """A mutable set of snapshot-level facts with per-relation indexes."""

    __slots__ = ("_facts_by_relation", "_index", "_ordered", "_max_arity", "schema")

    def __init__(
        self,
        facts: Iterable[Fact] = (),
        schema: Schema | None = None,
    ):
        self._facts_by_relation: dict[str, set[Fact]] = {}
        # (position, value) → facts, sorted; built lazily per relation,
        # then maintained incrementally on every mutation.
        self._index: dict[str, dict[tuple[int, GroundTerm], list[Fact]]] = {}
        # All facts of a relation, sorted; same lazy-then-incremental life.
        self._ordered: dict[str, list[Fact]] = {}
        # Largest arity ever seen per relation — bounds the positions the
        # term-level index probes of facts_with_term have to visit.
        self._max_arity: dict[str, int] = {}
        self.schema = schema
        for item in facts:
            self.add(item)

    # -- mutation -----------------------------------------------------------
    def add(self, item: Fact) -> bool:
        """Insert a fact; returns ``True`` iff it was not already present."""
        if self.schema is not None:
            if item.relation not in self.schema:
                raise SchemaError(
                    f"fact {item} uses relation {item.relation!r} "
                    f"absent from schema {self.schema}"
                )
            self.schema.validate_arity(item.relation, item.arity)
        bucket = self._facts_by_relation.setdefault(item.relation, set())
        if item in bucket:
            return False
        bucket.add(item)
        if item.arity > self._max_arity.get(item.relation, 0):
            self._max_arity[item.relation] = item.arity
        index = self._index.get(item.relation)
        if index is not None:
            for position, value in enumerate(item.args):
                insort(
                    index.setdefault((position, value), []),
                    item,
                    key=Fact.sort_key,
                )
        ordered = self._ordered.get(item.relation)
        if ordered is not None:
            insort(ordered, item, key=Fact.sort_key)
        return True

    def add_all(self, items: Iterable[Fact]) -> int:
        """Insert many facts; returns the number actually added."""
        return sum(1 for item in items if self.add(item))

    def discard(self, item: Fact) -> bool:
        """Remove a fact if present; returns ``True`` iff it was removed."""
        bucket = self._facts_by_relation.get(item.relation)
        if bucket is None or item not in bucket:
            return False
        bucket.remove(item)
        if not bucket:
            del self._facts_by_relation[item.relation]
        index = self._index.get(item.relation)
        if index is not None:
            for position, value in enumerate(item.args):
                entries = index[(position, value)]
                _remove_sorted(entries, item)
                if not entries:
                    del index[(position, value)]
        ordered = self._ordered.get(item.relation)
        if ordered is not None:
            _remove_sorted(ordered, item)
        return True

    # -- pickling ------------------------------------------------------------
    def __getstate__(self):
        """Facts and schema only — never the lazily-built indexes.

        The index buckets alias the fact objects heavily; pickling them
        would balloon the payload and ship per-process hash-ordering
        artifacts.  Buckets are stored sorted so the serialized form is
        deterministic for equal instances.
        """
        return (
            self.schema,
            tuple(
                (relation, tuple(sorted(bucket, key=Fact.sort_key)))
                for relation, bucket in sorted(self._facts_by_relation.items())
            ),
        )

    def __setstate__(self, state) -> None:
        schema, groups = state
        self.schema = schema
        self._facts_by_relation = {
            relation: set(bucket) for relation, bucket in groups
        }
        self._index = {}
        self._ordered = {}
        self._max_arity = {}

    # -- basic queries ---------------------------------------------------------
    def __contains__(self, item: object) -> bool:
        if not isinstance(item, Fact):
            return False
        return item in self._facts_by_relation.get(item.relation, ())

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._facts_by_relation.values())

    def __iter__(self) -> Iterator[Fact]:
        for relation in sorted(self._facts_by_relation):
            # Copy: the ordered cache is maintained in place, and callers
            # may mutate the instance while iterating.
            yield from tuple(self._ordered_for(relation))

    def __bool__(self) -> bool:
        return any(self._facts_by_relation.values())

    def relation_names(self) -> tuple[str, ...]:
        return tuple(sorted(self._facts_by_relation))

    def facts_of(self, relation: str) -> frozenset[Fact]:
        """All facts of one relation (empty set when the relation is absent)."""
        return frozenset(self._facts_by_relation.get(relation, ()))

    def facts(self) -> frozenset[Fact]:
        """All facts of the instance as a frozen set."""
        return frozenset(
            item for bucket in self._facts_by_relation.values() for item in bucket
        )

    # -- index-backed lookup (homomorphism search) ------------------------------
    def _index_for(self, relation: str) -> dict[tuple[int, GroundTerm], list[Fact]]:
        cached = self._index.get(relation)
        if cached is not None:
            return cached
        built: dict[tuple[int, GroundTerm], list[Fact]] = {}
        for item in self._ordered_for(relation):
            for position, value in enumerate(item.args):
                built.setdefault((position, value), []).append(item)
        self._index[relation] = built
        return built

    def _ordered_for(self, relation: str) -> list[Fact]:
        cached = self._ordered.get(relation)
        if cached is not None:
            return cached
        built = sorted(
            self._facts_by_relation.get(relation, ()), key=Fact.sort_key
        )
        self._ordered[relation] = built
        return built

    def lookup_ordered(
        self, relation: str, bindings: Mapping[int, GroundTerm]
    ) -> Sequence[Fact]:
        """Facts of *relation* matching *bindings*, in ``sort_key`` order.

        The search relies on this order being deterministic; because index
        buckets are kept pre-sorted, no sorting happens per probe.  With
        several bound positions the buckets are intersected *pairwise*,
        smallest first — each step keeps only the facts present in the
        next bucket, so the cost is bounded by the bucket sizes, never by
        candidate-times-positions filtering.

        The result may alias a live index bucket — treat it as read-only
        and snapshot it before mutating the instance mid-iteration.
        """
        bucket = self._facts_by_relation.get(relation)
        if not bucket:
            return ()
        if not bindings:
            return self._ordered_for(relation)
        index = self._index_for(relation)
        if len(bindings) == 1:
            ((position, value),) = bindings.items()
            entries = index.get((position, value))
            return () if entries is None else entries
        empty: list[Fact] = []
        probes = sorted(
            (
                index.get((position, value), empty)
                for position, value in bindings.items()
            ),
            key=len,
        )
        smallest = probes[0]
        if not smallest:
            return ()
        # Estimate: position-filtering touches every binding per smallest-
        # bucket fact; pairwise set intersection hashes every other bucket
        # once.  Pick the cheaper — tiny probes (the common chase shape)
        # stay on the filter, wide scans intersect pairwise.
        if len(smallest) * (len(probes) - 1) <= sum(len(p) for p in probes[1:]):
            return [
                item
                for item in smallest
                if all(item.args[pos] == val for pos, val in bindings.items())
            ]
        current: Sequence[Fact] = smallest
        for other in probes[1:]:
            if not current:
                return ()
            membership = set(other)
            current = [item for item in current if item in membership]
        return current

    def lookup(
        self, relation: str, bindings: Mapping[int, GroundTerm]
    ) -> frozenset[Fact]:
        """Facts of *relation* whose argument at each position matches.

        With empty *bindings* this is :meth:`facts_of`; order-sensitive
        callers use :meth:`lookup_ordered` instead.
        """
        return frozenset(self.lookup_ordered(relation, bindings))

    def candidate_count(
        self, relation: str, bindings: Mapping[int, GroundTerm]
    ) -> int:
        """Cheap upper bound on ``len(lookup(relation, bindings))``.

        The size of the most selective index bucket (no residual filtering)
        — what the homomorphism search uses to pick the next atom.
        """
        bucket = self._facts_by_relation.get(relation)
        if not bucket:
            return 0
        if not bindings:
            return len(bucket)
        index = self._index_for(relation)
        count = len(bucket)
        for position, value in bindings.items():
            entries = index.get((position, value))
            probe = 0 if entries is None else len(entries)
            if probe < count:
                count = probe
        return count

    # -- term-level queries -------------------------------------------------------
    def _arity_bound(self, relation: str) -> int:
        cached = self._max_arity.get(relation)
        if cached is None:
            bucket = self._facts_by_relation.get(relation, ())
            cached = max((item.arity for item in bucket), default=0)
            self._max_arity[relation] = cached
        return cached

    def facts_with_term(self, term: GroundTerm) -> set[Fact]:
        """Every fact mentioning *term* in some position."""
        return self.facts_with_any_term((term,))

    def facts_with_any_term(self, terms: Iterable[GroundTerm]) -> set[Fact]:
        """Every fact mentioning at least one of *terms*.

        Per relation: probes the ``(position, value)`` index where it is
        already built (one bucket per term and position up to the
        relation's arity bound), and otherwise makes a single
        ``isdisjoint`` pass over the relation's facts for *all* terms at
        once — the probe never forces an index build and never scans a
        bucket more than once per call.
        """
        term_set = frozenset(terms)
        found: set[Fact] = set()
        for relation, bucket in self._facts_by_relation.items():
            index = self._index.get(relation)
            if index is None:
                found.update(
                    item
                    for item in bucket
                    if not term_set.isdisjoint(item.args)
                )
                continue
            for term in term_set:
                for position in range(self._arity_bound(relation)):
                    entries = index.get((position, term))
                    if entries:
                        found.update(entries)
        return found

    def nulls(self) -> frozenset[LabeledNull | AnnotatedNull]:
        """``Null(db)``: every null occurring anywhere in the instance."""
        found: set[LabeledNull | AnnotatedNull] = set()
        for bucket in self._facts_by_relation.values():
            for item in bucket:
                found.update(item.nulls())
        return frozenset(found)

    def constants(self) -> frozenset[Constant]:
        """Every constant occurring anywhere in the instance."""
        found: set[Constant] = set()
        for bucket in self._facts_by_relation.values():
            for item in bucket:
                found.update(item.constants())
        return frozenset(found)

    def active_domain(self) -> frozenset[GroundTerm]:
        """All ground terms occurring in the instance."""
        found: set[GroundTerm] = set()
        for bucket in self._facts_by_relation.values():
            for item in bucket:
                found.update(item.args)
        return frozenset(found)

    @property
    def is_complete(self) -> bool:
        """``True`` iff no nulls occur (paper: a *complete* instance)."""
        return not self.nulls()

    # -- transformation --------------------------------------------------------
    def copy(self, preserve_caches: bool = False) -> "Instance":
        """A fact-level clone.

        With ``preserve_caches=True`` the lazily-built index buckets and
        ordered caches are cloned as flat list copies (no re-sorting) —
        worthwhile when the copy will be probed more than it is mutated,
        as in the egd fixpoint's working copy.  The default drops them:
        mutation-heavy consumers (normalization fragment replacement on a
        cold instance) are better off rebuilding once afterwards.
        """
        clone = Instance(schema=self.schema)
        for relation, bucket in self._facts_by_relation.items():
            clone._facts_by_relation[relation] = set(bucket)
        clone._max_arity.update(self._max_arity)
        if preserve_caches:
            for relation, index in self._index.items():
                clone._index[relation] = {
                    key: list(entries) for key, entries in index.items()
                }
            for relation, ordered in self._ordered.items():
                clone._ordered[relation] = list(ordered)
        return clone

    def substitute_in_place(self, mapping: Mapping[Term, Term]) -> list[Fact]:
        """Apply *mapping* by rewriting only the affected facts, in place.

        The value-level equivalent of :meth:`substitute`, built for the
        egd chase rounds: facts mentioning a mapped term are found through
        the index, discarded, and re-added in substituted form — every
        other fact (and the incrementally-maintained indexes over them)
        stays untouched.  Returns the facts that are *new* to the instance
        (images that merged into an existing fact are not new), in a
        deterministic order (their *replaced* facts' ``sort_key`` order) —
        exactly the delta the next semi-naive chase round has to look at.
        """
        if not mapping:
            return []
        lookup = dict(mapping)
        affected = self.facts_with_any_term(lookup)
        if not affected:
            return []
        images = [
            item.substitute(lookup)
            for item in sorted(affected, key=Fact.sort_key)
        ]
        for item in affected:
            self.discard(item)
        return [image for image in images if self.add(image)]

    def substitute(self, mapping: Mapping[Term, Term]) -> "Instance":
        """A new instance with every term replaced per *mapping*.

        Used by egd chase steps: replacing a null everywhere may merge
        facts, which the set-based storage handles automatically.  Facts
        not mentioning any mapped term are shared with the original.
        """
        if not mapping:
            return self.copy()
        lookup = dict(mapping)
        mapped_terms = frozenset(lookup)
        result = Instance(schema=self.schema)
        for relation, bucket in self._facts_by_relation.items():
            new_bucket = {
                item
                if mapped_terms.isdisjoint(item.args)
                else item.substitute(lookup)
                for item in bucket
            }
            result._facts_by_relation[relation] = new_bucket
        return result

    def map_facts(self, mapper: Callable[[Fact], Fact]) -> "Instance":
        """A new instance built by transforming every fact."""
        result = Instance(schema=self.schema)
        for bucket in self._facts_by_relation.values():
            for item in bucket:
                result.add(mapper(item))
        return result

    def union(self, other: "Instance") -> "Instance":
        """A new instance containing the facts of both."""
        result = self.copy()
        result.add_all(other.facts())
        return result

    def restrict_to(self, relations: Iterable[str]) -> "Instance":
        """Projection of the instance onto a subset of relation names."""
        wanted = set(relations)
        result = Instance(schema=self.schema)
        for relation in wanted:
            result.add_all(self._facts_by_relation.get(relation, ()))
        return result

    # -- comparison and rendering ----------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Instance):
            return NotImplemented
        return self.facts() == other.facts()

    def __hash__(self) -> int:
        return hash(self.facts())

    def __str__(self) -> str:
        if not self:
            return "{}"
        return "{" + ", ".join(str(item) for item in self) + "}"

    def __repr__(self) -> str:
        return f"Instance({len(self)} facts over {list(self.relation_names())})"
