"""In-memory relational instances (the snapshots of the abstract view).

An :class:`Instance` stores facts grouped by relation with hash indexes
``(position, value) → facts`` built lazily for the homomorphism search.
Instances compare by their fact sets, support substitution (used by egd
chase steps), and report their nulls/constants (used by solution checks
and naïve evaluation).

Instances may optionally carry a :class:`~repro.relational.schema.Schema`;
when present, every added fact is validated against it.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Mapping

from repro.errors import InstanceError, SchemaError
from repro.relational.fact import Fact
from repro.relational.schema import Schema
from repro.relational.terms import (
    AnnotatedNull,
    Constant,
    GroundTerm,
    LabeledNull,
    Term,
)

__all__ = ["Instance"]


class Instance:
    """A mutable set of snapshot-level facts with per-relation indexes."""

    __slots__ = ("_facts_by_relation", "_index", "schema")

    def __init__(
        self,
        facts: Iterable[Fact] = (),
        schema: Schema | None = None,
    ):
        self._facts_by_relation: dict[str, set[Fact]] = {}
        self._index: dict[str, dict[tuple[int, GroundTerm], set[Fact]]] = {}
        self.schema = schema
        for item in facts:
            self.add(item)

    # -- mutation -----------------------------------------------------------
    def add(self, item: Fact) -> bool:
        """Insert a fact; returns ``True`` iff it was not already present."""
        if self.schema is not None:
            if item.relation not in self.schema:
                raise SchemaError(
                    f"fact {item} uses relation {item.relation!r} "
                    f"absent from schema {self.schema}"
                )
            self.schema.validate_arity(item.relation, item.arity)
        bucket = self._facts_by_relation.setdefault(item.relation, set())
        if item in bucket:
            return False
        bucket.add(item)
        self._index.pop(item.relation, None)
        return True

    def add_all(self, items: Iterable[Fact]) -> int:
        """Insert many facts; returns the number actually added."""
        return sum(1 for item in items if self.add(item))

    def discard(self, item: Fact) -> bool:
        """Remove a fact if present; returns ``True`` iff it was removed."""
        bucket = self._facts_by_relation.get(item.relation)
        if bucket is None or item not in bucket:
            return False
        bucket.remove(item)
        if not bucket:
            del self._facts_by_relation[item.relation]
        self._index.pop(item.relation, None)
        return True

    # -- basic queries ---------------------------------------------------------
    def __contains__(self, item: object) -> bool:
        if not isinstance(item, Fact):
            return False
        return item in self._facts_by_relation.get(item.relation, ())

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._facts_by_relation.values())

    def __iter__(self) -> Iterator[Fact]:
        for relation in sorted(self._facts_by_relation):
            yield from sorted(self._facts_by_relation[relation], key=Fact.sort_key)

    def __bool__(self) -> bool:
        return any(self._facts_by_relation.values())

    def relation_names(self) -> tuple[str, ...]:
        return tuple(sorted(self._facts_by_relation))

    def facts_of(self, relation: str) -> frozenset[Fact]:
        """All facts of one relation (empty set when the relation is absent)."""
        return frozenset(self._facts_by_relation.get(relation, ()))

    def facts(self) -> frozenset[Fact]:
        """All facts of the instance as a frozen set."""
        return frozenset(
            item for bucket in self._facts_by_relation.values() for item in bucket
        )

    # -- index-backed lookup (homomorphism search) ------------------------------
    def _index_for(self, relation: str) -> dict[tuple[int, GroundTerm], set[Fact]]:
        cached = self._index.get(relation)
        if cached is not None:
            return cached
        built: dict[tuple[int, GroundTerm], set[Fact]] = {}
        for item in self._facts_by_relation.get(relation, ()):
            for position, value in enumerate(item.args):
                built.setdefault((position, value), set()).add(item)
        self._index[relation] = built
        return built

    def lookup(
        self, relation: str, bindings: Mapping[int, GroundTerm]
    ) -> frozenset[Fact]:
        """Facts of *relation* whose argument at each position matches.

        With empty *bindings* this is :meth:`facts_of`.  The most selective
        bound position drives the index probe; remaining positions filter.
        """
        bucket = self._facts_by_relation.get(relation)
        if not bucket:
            return frozenset()
        if not bindings:
            return frozenset(bucket)
        index = self._index_for(relation)
        probes = [
            index.get((position, value), set())
            for position, value in bindings.items()
        ]
        smallest = min(probes, key=len)
        result = {
            item
            for item in smallest
            if all(item.args[pos] == val for pos, val in bindings.items())
        }
        return frozenset(result)

    # -- term-level queries -------------------------------------------------------
    def nulls(self) -> frozenset[LabeledNull | AnnotatedNull]:
        """``Null(db)``: every null occurring anywhere in the instance."""
        found: set[LabeledNull | AnnotatedNull] = set()
        for bucket in self._facts_by_relation.values():
            for item in bucket:
                found.update(item.nulls())
        return frozenset(found)

    def constants(self) -> frozenset[Constant]:
        """Every constant occurring anywhere in the instance."""
        found: set[Constant] = set()
        for bucket in self._facts_by_relation.values():
            for item in bucket:
                found.update(item.constants())
        return frozenset(found)

    def active_domain(self) -> frozenset[GroundTerm]:
        """All ground terms occurring in the instance."""
        found: set[GroundTerm] = set()
        for bucket in self._facts_by_relation.values():
            for item in bucket:
                found.update(item.args)
        return frozenset(found)

    @property
    def is_complete(self) -> bool:
        """``True`` iff no nulls occur (paper: a *complete* instance)."""
        return not self.nulls()

    # -- transformation --------------------------------------------------------
    def copy(self) -> "Instance":
        clone = Instance(schema=self.schema)
        for relation, bucket in self._facts_by_relation.items():
            clone._facts_by_relation[relation] = set(bucket)
        return clone

    def substitute(self, mapping: Mapping[Term, Term]) -> "Instance":
        """A new instance with every term replaced per *mapping*.

        Used by egd chase steps: replacing a null everywhere may merge
        facts, which the set-based storage handles automatically.
        """
        if not mapping:
            return self.copy()
        result = Instance(schema=self.schema)
        for bucket in self._facts_by_relation.values():
            for item in bucket:
                result.add(item.substitute(dict(mapping)))
        return result

    def map_facts(self, mapper: Callable[[Fact], Fact]) -> "Instance":
        """A new instance built by transforming every fact."""
        result = Instance(schema=self.schema)
        for bucket in self._facts_by_relation.values():
            for item in bucket:
                result.add(mapper(item))
        return result

    def union(self, other: "Instance") -> "Instance":
        """A new instance containing the facts of both."""
        result = self.copy()
        result.add_all(other.facts())
        return result

    def restrict_to(self, relations: Iterable[str]) -> "Instance":
        """Projection of the instance onto a subset of relation names."""
        wanted = set(relations)
        result = Instance(schema=self.schema)
        for relation in wanted:
            result.add_all(self._facts_by_relation.get(relation, ()))
        return result

    # -- comparison and rendering ----------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Instance):
            return NotImplemented
        return self.facts() == other.facts()

    def __hash__(self) -> int:
        return hash(self.facts())

    def __str__(self) -> str:
        if not self:
            return "{}"
        return "{" + ", ".join(str(item) for item in self) + "}"

    def __repr__(self) -> str:
        return f"Instance({len(self)} facts over {list(self.relation_names())})"
