"""Homomorphism search: formulas into instances, instances into instances.

Two flavors, both central to the paper:

* **formula → instance** (:func:`find_homomorphisms`): assignments of the
  variables of a conjunction to ground terms of an instance such that every
  atom's image is a fact.  This drives chase steps, dependency-satisfaction
  checks and query evaluation.
* **instance → instance** (:func:`find_instance_homomorphism`): a map on
  terms that is the identity on constants and sends every fact to a fact.
  This is the homomorphism of Section 2 used to define universal solutions,
  and it also powers the core computation.

The search is plain backtracking, engineered for the chase hot path:

* candidate facts come from the instance's incrementally-maintained
  ``(position, value)`` hash index via
  :meth:`~repro.relational.instance.Instance.lookup_ordered`, whose
  buckets are pre-sorted — enumeration is deterministic without any
  per-node sorting;
* the variable assignment is a single dict extended by **bind/undo**
  rather than copied at every node;
* the next atom is the one with the smallest index-candidate cardinality
  (ties broken by input order), so the tightest relation drives the join
  instead of a purely structural unbound-variable count.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Sequence

from repro.relational.fact import Fact
from repro.relational.formulas import Atom, Conjunction
from repro.relational.instance import Instance
from repro.relational.terms import (
    Constant,
    GroundTerm,
    Term,
    Variable,
)

__all__ = [
    "find_homomorphisms",
    "find_homomorphism",
    "has_homomorphism",
    "find_homomorphisms_with_images",
    "iter_egd_equations",
    "find_instance_homomorphism",
    "has_instance_homomorphism",
    "is_homomorphism",
]


class _AtomPlan:
    """Pre-analyzed atom: constant positions split from variable positions.

    Candidates fetched through :meth:`Instance.lookup_ordered` already
    satisfy every *bound* position (constants and assigned variables are
    part of the index probe), so extending the assignment only has to
    visit the unbound variable positions of the chosen atom.
    """

    __slots__ = ("atom", "relation", "arity", "constants", "var_positions")

    def __init__(self, atom: Atom) -> None:
        self.atom = atom
        self.relation = atom.relation
        self.arity = atom.arity
        self.constants: dict[int, GroundTerm] = {}
        self.var_positions: list[tuple[int, Term]] = []
        for position, arg in enumerate(atom.args):
            if isinstance(arg, Constant):
                self.constants[position] = arg
            else:
                self.var_positions.append((position, arg))

    def bindings(
        self, assignment: Mapping[Variable, GroundTerm]
    ) -> dict[int, GroundTerm]:
        """Positions whose value is already forced under *assignment*."""
        bound = dict(self.constants)
        for position, variable in self.var_positions:
            value = assignment.get(variable)
            if value is not None:
                bound[position] = value
        return bound


def _plan_for(atom: Atom) -> _AtomPlan:
    """The cached search plan of *atom* (atoms are immutable)."""
    plan = atom._search_plan
    if plan is None:
        plan = _AtomPlan(atom)
        object.__setattr__(atom, "_search_plan", plan)
    return plan  # type: ignore[return-value]


def find_homomorphisms_with_images(
    atoms: Sequence[Atom] | Conjunction,
    instance: Instance,
    initial: Mapping[Variable, GroundTerm] | None = None,
    copy: bool = True,
) -> Iterator[tuple[dict[Variable, GroundTerm], tuple[Fact, ...]]]:
    """Yield every homomorphism together with the per-atom image facts.

    The image tuple is aligned with the input atom order — Algorithm 1
    needs to know *which* fact each atom mapped to, not just the variable
    assignment.  Enumeration order is deterministic: candidates arrive in
    ``Fact.sort_key`` order from the pre-sorted index buckets, and atom
    selection is by smallest candidate cardinality with ties keeping the
    written atom order.

    With ``copy=False`` the yielded assignment is the search's *live*
    dict: read it before resuming the iterator and never store it.  The
    chase phases use this to skip one dict allocation per match.
    """
    atom_list: tuple[Atom, ...] = (
        atoms.atoms if isinstance(atoms, Conjunction) else tuple(atoms)
    )
    assignment: dict[Variable, GroundTerm] = dict(initial or {})
    plans = [_plan_for(atom) for atom in atom_list]
    images: list[Fact | None] = [None] * len(atom_list)
    lookup_ordered = instance.lookup_ordered
    candidate_count = instance.candidate_count

    def search(
        remaining: list[int],
    ) -> Iterator[tuple[dict[Variable, GroundTerm], tuple[Fact, ...]]]:
        # Pick the remaining atom with the fewest index candidates (a
        # cardinality-driven greedy join order; ties keep input order).
        if len(remaining) == 1:
            chosen = remaining[0]
            bindings = plans[chosen].bindings(assignment)
        else:
            chosen = remaining[0]
            bindings = plans[chosen].bindings(assignment)
            best_count = candidate_count(plans[chosen].relation, bindings)
            for index in remaining[1:]:
                if best_count == 0:
                    break
                other = plans[index].bindings(assignment)
                count = candidate_count(plans[index].relation, other)
                if count < best_count:
                    chosen, bindings, best_count = index, other, count
        plan = plans[chosen]
        unbound = [
            entry for entry in plan.var_positions if entry[0] not in bindings
        ]
        last = len(remaining) == 1
        rest = [index for index in remaining if index != chosen] if not last else []
        arity = plan.arity
        for candidate in lookup_ordered(plan.relation, bindings):
            if candidate.arity != arity:
                continue
            args = candidate.args
            newly_bound: list[Term] = []
            clash = False
            for position, variable in unbound:
                value = args[position]
                current = assignment.get(variable)
                if current is None:
                    assignment[variable] = value
                    newly_bound.append(variable)
                elif current != value:
                    clash = True
                    break
            if clash:
                for variable in newly_bound:
                    del assignment[variable]
                continue
            images[chosen] = candidate
            if last:
                yield (
                    dict(assignment) if copy else assignment
                ), tuple(images)  # type: ignore[misc]
            else:
                yield from search(rest)
            for variable in newly_bound:
                del assignment[variable]
        images[chosen] = None

    if not atom_list:
        yield dict(assignment), ()
        return
    if len(atom_list) == 1:
        # Flat fast path: no recursion, no per-call closure machinery.
        # Single-atom conjunctions are the chase's most common shape
        # (tgd rhs extension checks, copy tgd lhs, decoupled singletons).
        yield from _search_single(plans[0], instance, assignment, copy)
        return
    yield from search(list(range(len(atom_list))))


def _search_single(
    plan: _AtomPlan,
    instance: Instance,
    assignment: dict[Variable, GroundTerm],
    copy: bool = True,
) -> Iterator[tuple[dict[Variable, GroundTerm], tuple[Fact, ...]]]:
    """Enumerate the matches of one atom (flat loop, no recursion).

    Deliberately mirrors the candidate bind/undo loop of ``search`` in
    :func:`find_homomorphisms_with_images` — keep the two in sync.  The
    duplication buys the hottest call shape (single-atom conjunctions)
    a run without the recursive generator machinery.
    """
    bindings = plan.bindings(assignment)
    unbound = [
        entry for entry in plan.var_positions if entry[0] not in bindings
    ]
    arity = plan.arity
    for candidate in instance.lookup_ordered(plan.relation, bindings):
        if candidate.arity != arity:
            continue
        args = candidate.args
        newly_bound: list[Term] = []
        clash = False
        for position, variable in unbound:
            value = args[position]
            current = assignment.get(variable)
            if current is None:
                assignment[variable] = value
                newly_bound.append(variable)
            elif current != value:
                clash = True
                break
        if clash:
            for variable in newly_bound:
                del assignment[variable]
            continue
        yield (dict(assignment) if copy else assignment), (candidate,)
        for variable in newly_bound:
            del assignment[variable]


def find_homomorphisms(
    atoms: Sequence[Atom] | Conjunction,
    instance: Instance,
    initial: Mapping[Variable, GroundTerm] | None = None,
    copy: bool = True,
) -> Iterator[dict[Variable, GroundTerm]]:
    """Yield every assignment mapping the conjunction into the instance.

    ``copy=False`` yields the live search dict (see
    :func:`find_homomorphisms_with_images`).
    """
    for assignment, _images in find_homomorphisms_with_images(
        atoms, instance, initial, copy
    ):
        yield assignment


def find_homomorphism(
    atoms: Sequence[Atom] | Conjunction,
    instance: Instance,
    initial: Mapping[Variable, GroundTerm] | None = None,
) -> dict[Variable, GroundTerm] | None:
    """The first homomorphism, or ``None`` when none exists."""
    for assignment, _images in find_homomorphisms_with_images(
        atoms, instance, initial
    ):
        return assignment
    return None


def has_homomorphism(
    atoms: Sequence[Atom] | Conjunction,
    instance: Instance,
    initial: Mapping[Variable, GroundTerm] | None = None,
) -> bool:
    """``True`` iff some homomorphism exists."""
    return find_homomorphism(atoms, instance, initial) is not None


# ---------------------------------------------------------------------------
# Specialized egd match enumeration
# ---------------------------------------------------------------------------


def _egd_pair_shape(
    atoms: Sequence[Atom], left_var: Variable, right_var: Variable
) -> tuple[str, int, int, bool] | None:
    """Detect the canonical key-egd shape ``R(x̄,y) ∧ R(x̄,y′) → y = y′``.

    Returns ``(relation, arity, position, swapped)`` when the lhs is two
    atoms over one relation whose argument lists are distinct variables
    agreeing everywhere except one position carrying the equated pair
    (*swapped* marks ``left_var`` sitting in the second atom), else
    ``None``.
    """
    if len(atoms) != 2:
        return None
    first, second = atoms
    if first.relation != second.relation or first.arity != second.arity:
        return None
    args1, args2 = first.args, second.args
    if not all(isinstance(arg, Variable) for arg in args1 + args2):
        return None
    if len(set(args1)) != len(args1) or len(set(args2)) != len(args2):
        return None
    differing = [
        position
        for position, (one, two) in enumerate(zip(args1, args2))
        if one != two
    ]
    if len(differing) != 1:
        return None
    position = differing[0]
    one, two = args1[position], args2[position]
    if one in args2 or two in args1:
        return None
    if (one, two) == (left_var, right_var):
        return first.relation, first.arity, position, False
    if (two, one) == (left_var, right_var):
        return first.relation, first.arity, position, True
    return None


def iter_egd_equations(
    atoms: Sequence[Atom],
    left_var: Variable,
    right_var: Variable,
    instance: Instance,
) -> Iterator[tuple[GroundTerm, GroundTerm]]:
    """Yield ``(h(left_var), h(right_var))`` for every lhs homomorphism.

    The egd phases only consume the equated pair, so the canonical key-egd
    shape takes a flat group-by-join-key path: facts of the relation are
    grouped on every position but the equated one, and each group emits
    its ordered pairs.  Enumeration order is identical to the generic
    search (outer facts in ``sort_key`` order, partners in ``sort_key``
    order within the join group); other shapes fall back to that search.
    """
    atom_list = tuple(atoms)
    shape = _egd_pair_shape(atom_list, left_var, right_var)
    if shape is None:
        for assignment in find_homomorphisms(
            atom_list, instance, copy=False
        ):
            yield assignment[left_var], assignment[right_var]
        return
    relation, arity, position, swapped = shape
    ordered = instance.lookup_ordered(relation, {})
    after = position + 1
    groups: dict[tuple, list[Fact]] = {}
    for item in ordered:
        if item.arity != arity:
            continue
        key = item.args[:position] + item.args[after:]
        groups.setdefault(key, []).append(item)
    for item in ordered:
        if item.arity != arity:
            continue
        partners = groups[item.args[:position] + item.args[after:]]
        value = item.args[position]
        if swapped:
            for other in partners:
                yield other.args[position], value
        else:
            for other in partners:
                yield value, other.args[position]


# ---------------------------------------------------------------------------
# Instance-to-instance homomorphisms (Section 2)
# ---------------------------------------------------------------------------


def find_instance_homomorphism(
    source: Instance,
    target: Instance,
    fixed: Mapping[Term, GroundTerm] | None = None,
    frozen_nulls: Iterable[Term] = (),
) -> dict[Term, GroundTerm] | None:
    """A homomorphism ``h : source → target``, or ``None``.

    * constants map to themselves,
    * nulls map to arbitrary ground terms of the target,
    * every source fact's image must be a target fact.

    *fixed* pre-binds some nulls (used by the abstract-view search to keep
    a global assignment of rigid nulls consistent across snapshots);
    *frozen_nulls* lists nulls that must map to themselves (used by the
    core computation to test foldings that fix a sub-instance).
    """
    mapping: dict[Term, GroundTerm] = dict(fixed or {})
    for null in frozen_nulls:
        mapping.setdefault(null, null)  # type: ignore[arg-type]

    source_facts = sorted(source.facts(), key=Fact.sort_key)

    def fact_bindings(item: Fact) -> dict[int, GroundTerm]:
        bound: dict[int, GroundTerm] = {}
        for position, arg in enumerate(item.args):
            if isinstance(arg, Constant):
                bound[position] = arg
            elif arg in mapping:
                bound[position] = mapping[arg]
        return bound

    def extend(item: Fact, image: Fact) -> list[Term] | None:
        """Bind unbound nulls of *item* to the values in *image*."""
        newly_bound: list[Term] = []
        for arg, value in zip(item.args, image.args):
            if isinstance(arg, Constant):
                if arg != value:
                    return None
            else:
                current = mapping.get(arg)
                if current is None:
                    mapping[arg] = value
                    newly_bound.append(arg)
                elif current != value:
                    for bound_arg in newly_bound:
                        del mapping[bound_arg]
                    return None
        return newly_bound

    def search(position: int) -> bool:
        if position == len(source_facts):
            return True
        item = source_facts[position]
        candidates = target.lookup_ordered(item.relation, fact_bindings(item))
        for candidate in candidates:
            newly_bound = extend(item, candidate)
            if newly_bound is None:
                continue
            if search(position + 1):
                return True
            for bound_arg in newly_bound:
                del mapping[bound_arg]
        return False

    if search(0):
        return mapping
    return None


def has_instance_homomorphism(source: Instance, target: Instance) -> bool:
    """``True`` iff some homomorphism ``source → target`` exists."""
    return find_instance_homomorphism(source, target) is not None


def is_homomorphism(
    mapping: Mapping[Term, Term], source: Instance, target: Instance
) -> bool:
    """Verify that *mapping* is a homomorphism ``source → target``.

    Checks the two defining conditions: identity on constants (constants
    may simply be absent from the mapping) and fact preservation.
    """
    for term, image in mapping.items():
        if isinstance(term, Constant) and image != term:
            return False
    lookup = dict(mapping)
    for item in source.facts():
        mapped = item.substitute(lookup)
        if mapped not in target:
            return False
    return True
