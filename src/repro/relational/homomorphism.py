"""Homomorphism search: formulas into instances, instances into instances.

Two flavors, both central to the paper:

* **formula → instance** (:func:`find_homomorphisms`): assignments of the
  variables of a conjunction to ground terms of an instance such that every
  atom's image is a fact.  This drives chase steps, dependency-satisfaction
  checks and query evaluation.
* **instance → instance** (:func:`find_instance_homomorphism`): a map on
  terms that is the identity on constants and sends every fact to a fact.
  This is the homomorphism of Section 2 used to define universal solutions,
  and it also powers the core computation.

The search is plain backtracking with two optimizations that matter at
benchmark scale: candidate facts are fetched through the instance's
``(position, value)`` hash index, and the next atom is always the one with
the fewest unbound variables (a greedy join order).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Sequence

from repro.relational.fact import Fact
from repro.relational.formulas import Atom, Conjunction
from repro.relational.instance import Instance
from repro.relational.terms import (
    Constant,
    GroundTerm,
    Term,
    Variable,
)

__all__ = [
    "find_homomorphisms",
    "find_homomorphism",
    "has_homomorphism",
    "find_homomorphisms_with_images",
    "find_instance_homomorphism",
    "has_instance_homomorphism",
    "is_homomorphism",
]


def _atom_bindings(
    atom: Atom, assignment: Mapping[Variable, GroundTerm]
) -> dict[int, GroundTerm]:
    """Positions of *atom* whose value is already forced."""
    bound: dict[int, GroundTerm] = {}
    for position, arg in enumerate(atom.args):
        if isinstance(arg, Constant):
            bound[position] = arg
        elif isinstance(arg, Variable) and arg in assignment:
            bound[position] = assignment[arg]
    return bound


def _unify_atom(
    atom: Atom, fact: Fact, assignment: dict[Variable, GroundTerm]
) -> dict[Variable, GroundTerm] | None:
    """Extend *assignment* so that atom ↦ fact, or ``None`` on clash."""
    if atom.relation != fact.relation or atom.arity != fact.arity:
        return None
    extension = dict(assignment)
    for arg, value in zip(atom.args, fact.args):
        if isinstance(arg, Constant):
            if arg != value:
                return None
        else:  # variable
            current = extension.get(arg)
            if current is None:
                extension[arg] = value
            elif current != value:
                return None
    return extension


def _select_atom(
    remaining: Sequence[int],
    atoms: Sequence[Atom],
    assignment: Mapping[Variable, GroundTerm],
) -> int:
    """Pick the most-bound remaining atom (greedy join ordering)."""
    best = remaining[0]
    best_unbound = sum(
        1 for v in atoms[best].variables() if v not in assignment
    )
    for index in remaining[1:]:
        unbound = sum(1 for v in atoms[index].variables() if v not in assignment)
        if unbound < best_unbound:
            best, best_unbound = index, unbound
            if unbound == 0:
                break
    return best


def find_homomorphisms_with_images(
    atoms: Sequence[Atom] | Conjunction,
    instance: Instance,
    initial: Mapping[Variable, GroundTerm] | None = None,
) -> Iterator[tuple[dict[Variable, GroundTerm], tuple[Fact, ...]]]:
    """Yield every homomorphism together with the per-atom image facts.

    The image tuple is aligned with the input atom order — Algorithm 1
    needs to know *which* fact each atom mapped to, not just the variable
    assignment.  Enumeration order is deterministic.
    """
    atom_list: tuple[Atom, ...] = (
        atoms.atoms if isinstance(atoms, Conjunction) else tuple(atoms)
    )
    base: dict[Variable, GroundTerm] = dict(initial or {})
    images: list[Fact | None] = [None] * len(atom_list)

    def search(
        remaining: list[int], assignment: dict[Variable, GroundTerm]
    ) -> Iterator[tuple[dict[Variable, GroundTerm], tuple[Fact, ...]]]:
        if not remaining:
            yield dict(assignment), tuple(images)  # type: ignore[arg-type]
            return
        chosen = _select_atom(remaining, atom_list, assignment)
        rest = [index for index in remaining if index != chosen]
        atom = atom_list[chosen]
        candidates = instance.lookup(atom.relation, _atom_bindings(atom, assignment))
        for candidate in sorted(candidates, key=Fact.sort_key):
            extended = _unify_atom(atom, candidate, assignment)
            if extended is None:
                continue
            images[chosen] = candidate
            yield from search(rest, extended)
        images[chosen] = None

    yield from search(list(range(len(atom_list))), base)


def find_homomorphisms(
    atoms: Sequence[Atom] | Conjunction,
    instance: Instance,
    initial: Mapping[Variable, GroundTerm] | None = None,
) -> Iterator[dict[Variable, GroundTerm]]:
    """Yield every assignment mapping the conjunction into the instance."""
    for assignment, _images in find_homomorphisms_with_images(
        atoms, instance, initial
    ):
        yield assignment


def find_homomorphism(
    atoms: Sequence[Atom] | Conjunction,
    instance: Instance,
    initial: Mapping[Variable, GroundTerm] | None = None,
) -> dict[Variable, GroundTerm] | None:
    """The first homomorphism, or ``None`` when none exists."""
    for assignment in find_homomorphisms(atoms, instance, initial):
        return assignment
    return None


def has_homomorphism(
    atoms: Sequence[Atom] | Conjunction,
    instance: Instance,
    initial: Mapping[Variable, GroundTerm] | None = None,
) -> bool:
    """``True`` iff some homomorphism exists."""
    return find_homomorphism(atoms, instance, initial) is not None


# ---------------------------------------------------------------------------
# Instance-to-instance homomorphisms (Section 2)
# ---------------------------------------------------------------------------


def find_instance_homomorphism(
    source: Instance,
    target: Instance,
    fixed: Mapping[Term, GroundTerm] | None = None,
    frozen_nulls: Iterable[Term] = (),
) -> dict[Term, GroundTerm] | None:
    """A homomorphism ``h : source → target``, or ``None``.

    * constants map to themselves,
    * nulls map to arbitrary ground terms of the target,
    * every source fact's image must be a target fact.

    *fixed* pre-binds some nulls (used by the abstract-view search to keep
    a global assignment of rigid nulls consistent across snapshots);
    *frozen_nulls* lists nulls that must map to themselves (used by the
    core computation to test foldings that fix a sub-instance).
    """
    mapping: dict[Term, GroundTerm] = dict(fixed or {})
    for null in frozen_nulls:
        mapping.setdefault(null, null)  # type: ignore[arg-type]

    source_facts = sorted(source.facts(), key=Fact.sort_key)

    def fact_bindings(item: Fact) -> dict[int, GroundTerm]:
        bound: dict[int, GroundTerm] = {}
        for position, arg in enumerate(item.args):
            if isinstance(arg, Constant):
                bound[position] = arg
            elif arg in mapping:
                bound[position] = mapping[arg]
        return bound

    def extend(item: Fact, image: Fact) -> list[Term] | None:
        """Bind unbound nulls of *item* to the values in *image*."""
        newly_bound: list[Term] = []
        for arg, value in zip(item.args, image.args):
            if isinstance(arg, Constant):
                if arg != value:
                    return None
            else:
                current = mapping.get(arg)
                if current is None:
                    mapping[arg] = value
                    newly_bound.append(arg)
                elif current != value:
                    for bound_arg in newly_bound:
                        del mapping[bound_arg]
                    return None
        return newly_bound

    def search(position: int) -> bool:
        if position == len(source_facts):
            return True
        item = source_facts[position]
        candidates = target.lookup(item.relation, fact_bindings(item))
        for candidate in sorted(candidates, key=Fact.sort_key):
            newly_bound = extend(item, candidate)
            if newly_bound is None:
                continue
            if search(position + 1):
                return True
            for bound_arg in newly_bound:
                del mapping[bound_arg]
        return False

    if search(0):
        return mapping
    return None


def has_instance_homomorphism(source: Instance, target: Instance) -> bool:
    """``True`` iff some homomorphism ``source → target`` exists."""
    return find_instance_homomorphism(source, target) is not None


def is_homomorphism(
    mapping: Mapping[Term, Term], source: Instance, target: Instance
) -> bool:
    """Verify that *mapping* is a homomorphism ``source → target``.

    Checks the two defining conditions: identity on constants (constants
    may simply be absent from the mapping) and fact preservation.
    """
    for term, image in mapping.items():
        if isinstance(term, Constant) and image != term:
            return False
    lookup = dict(mapping)
    for item in source.facts():
        mapped = item.substitute(lookup)
        if mapped not in target:
            return False
    return True
