"""Homomorphism search: formulas into instances, instances into instances.

Two flavors, both central to the paper:

* **formula → instance** (:func:`find_homomorphisms`): assignments of the
  variables of a conjunction to ground terms of an instance such that every
  atom's image is a fact.  This drives chase steps, dependency-satisfaction
  checks and query evaluation.
* **instance → instance** (:func:`find_instance_homomorphism`): a map on
  terms that is the identity on constants and sends every fact to a fact.
  This is the homomorphism of Section 2 used to define universal solutions,
  and it also powers the core computation.

The search is plain backtracking, engineered for the chase hot path:

* candidate facts come from the instance's incrementally-maintained
  ``(position, value)`` hash index via
  :meth:`~repro.relational.instance.Instance.lookup_ordered`, whose
  buckets are pre-sorted — enumeration is deterministic without any
  per-node sorting;
* the variable assignment is a single dict extended by **bind/undo**
  rather than copied at every node;
* the next atom is the one with the smallest index-candidate cardinality
  (ties broken by input order), so the tightest relation drives the join
  instead of a purely structural unbound-variable count.
"""

from __future__ import annotations

from collections import Counter
from contextlib import contextmanager
from typing import Iterable, Iterator, Mapping, Sequence

from repro.errors import FormulaError
from repro.relational.fact import Fact
from repro.relational.formulas import Atom, Conjunction
from repro.relational.instance import Instance
from repro.relational.terms import (
    Constant,
    GroundTerm,
    Term,
    Variable,
    term_sort_key,
)

__all__ = [
    "find_homomorphisms",
    "find_homomorphism",
    "has_homomorphism",
    "find_homomorphisms_with_images",
    "iter_egd_equations",
    "iter_egd_equations_delta",
    "match_atom_against_fact",
    "find_instance_homomorphism",
    "has_instance_homomorphism",
    "is_homomorphism",
    "set_join_mode",
    "get_join_mode",
    "join_mode",
]


# ---------------------------------------------------------------------------
# Join-mode selection (flat written-order join vs worst-case-optimal join)
# ---------------------------------------------------------------------------

_JOIN_MODES = ("auto", "flat", "wcoj")
_join_mode = "auto"


def set_join_mode(mode: str) -> None:
    """Select the join algorithm for multi-atom all-variable conjunctions.

    * ``"auto"`` (default): worst-case-optimal generic join for ≥3-atom
      *cyclic* bodies over large-enough relations (see
      ``_WCOJ_MIN_FACTS``), flat written-order join everywhere else;
    * ``"flat"``: always the flat written-order join (the reference
      engine for equivalence sweeps);
    * ``"wcoj"``: generic join for every ≥3-atom plan, cyclic or not.

    The setting is process-global (the CLI maps ``--join`` onto it); both
    modes enumerate rows in the identical written-variable-order sequence,
    so switching never changes results or their order — only the work done
    to produce them.
    """
    if mode not in _JOIN_MODES:
        raise FormulaError(
            f"unknown join mode {mode!r}; expected one of {_JOIN_MODES}"
        )
    global _join_mode
    _join_mode = mode


def get_join_mode() -> str:
    """The current process-global join mode."""
    return _join_mode


@contextmanager
def join_mode(mode: str):
    """Temporarily switch the join mode (tests and benchmarks)."""
    previous = get_join_mode()
    set_join_mode(mode)
    try:
        yield
    finally:
        set_join_mode(previous)


class _AtomPlan:
    """Pre-analyzed atom: constant positions split from variable positions.

    Candidates fetched through :meth:`Instance.lookup_ordered` already
    satisfy every *bound* position (constants and assigned variables are
    part of the index probe), so extending the assignment only has to
    visit the unbound variable positions of the chosen atom.
    """

    __slots__ = ("atom", "relation", "arity", "constants", "var_positions")

    def __init__(self, atom: Atom) -> None:
        self.atom = atom
        self.relation = atom.relation
        self.arity = atom.arity
        self.constants: dict[int, GroundTerm] = {}
        self.var_positions: list[tuple[int, Term]] = []
        for position, arg in enumerate(atom.args):
            if isinstance(arg, Constant):
                self.constants[position] = arg
            else:
                self.var_positions.append((position, arg))

    def bindings(
        self, assignment: Mapping[Variable, GroundTerm]
    ) -> dict[int, GroundTerm]:
        """Positions whose value is already forced under *assignment*."""
        bound = dict(self.constants)
        for position, variable in self.var_positions:
            value = assignment.get(variable)
            if value is not None:
                bound[position] = value
        return bound


def _plan_for(atom: Atom) -> _AtomPlan:
    """The cached search plan of *atom* (atoms are immutable)."""
    plan = atom._search_plan
    if plan is None:
        plan = _AtomPlan(atom)
        object.__setattr__(atom, "_search_plan", plan)
    return plan  # type: ignore[return-value]


def find_homomorphisms_with_images(
    atoms: Sequence[Atom] | Conjunction,
    instance: Instance,
    initial: Mapping[Variable, GroundTerm] | None = None,
    copy: bool = True,
    atom_order: str = "cardinality",
) -> Iterator[tuple[dict[Variable, GroundTerm], tuple[Fact, ...]]]:
    """Yield every homomorphism together with the per-atom image facts.

    The image tuple is aligned with the input atom order — Algorithm 1
    needs to know *which* fact each atom mapped to, not just the variable
    assignment.  Enumeration order is deterministic: candidates arrive in
    ``Fact.sort_key`` order from the pre-sorted index buckets, and atom
    selection is by smallest candidate cardinality with ties keeping the
    written atom order.

    ``atom_order="written"`` skips the cardinality-driven selection and
    joins the atoms strictly left to right — the flat enumeration the egd
    and normalization enumerators rely on for their documented order
    (and to avoid per-node cardinality probes on shapes where the written
    order is already the right one).

    With ``copy=False`` the yielded assignment is the search's *live*
    dict: read it before resuming the iterator and never store it.  The
    chase phases use this to skip one dict allocation per match.
    """
    atom_list: tuple[Atom, ...] = (
        atoms.atoms if isinstance(atoms, Conjunction) else tuple(atoms)
    )
    assignment: dict[Variable, GroundTerm] = dict(initial or {})
    plans = [_plan_for(atom) for atom in atom_list]
    images: list[Fact | None] = [None] * len(atom_list)
    lookup_ordered = instance.lookup_ordered
    candidate_count = instance.candidate_count
    written_order = atom_order == "written"

    def search(
        remaining: list[int],
    ) -> Iterator[tuple[dict[Variable, GroundTerm], tuple[Fact, ...]]]:
        # Pick the remaining atom with the fewest index candidates (a
        # cardinality-driven greedy join order; ties keep input order),
        # or simply the leftmost one in written-order mode.
        if len(remaining) == 1 or written_order:
            chosen = remaining[0]
            bindings = plans[chosen].bindings(assignment)
        else:
            chosen = remaining[0]
            bindings = plans[chosen].bindings(assignment)
            best_count = candidate_count(plans[chosen].relation, bindings)
            for index in remaining[1:]:
                if best_count == 0:
                    break
                other = plans[index].bindings(assignment)
                count = candidate_count(plans[index].relation, other)
                if count < best_count:
                    chosen, bindings, best_count = index, other, count
        plan = plans[chosen]
        unbound = [
            entry for entry in plan.var_positions if entry[0] not in bindings
        ]
        last = len(remaining) == 1
        rest = [index for index in remaining if index != chosen] if not last else []
        arity = plan.arity
        for candidate in lookup_ordered(plan.relation, bindings):
            if candidate.arity != arity:
                continue
            args = candidate.args
            newly_bound: list[Term] = []
            clash = False
            for position, variable in unbound:
                value = args[position]
                current = assignment.get(variable)
                if current is None:
                    assignment[variable] = value
                    newly_bound.append(variable)
                elif current != value:
                    clash = True
                    break
            if clash:
                for variable in newly_bound:
                    del assignment[variable]
                continue
            images[chosen] = candidate
            if last:
                yield (
                    dict(assignment) if copy else assignment
                ), tuple(images)  # type: ignore[misc]
            else:
                yield from search(rest)
            for variable in newly_bound:
                del assignment[variable]
        images[chosen] = None

    if not atom_list:
        yield dict(assignment), ()
        return
    if len(atom_list) == 1:
        # Flat fast path: no recursion, no per-call closure machinery.
        # Single-atom conjunctions are the chase's most common shape
        # (tgd rhs extension checks, copy tgd lhs, decoupled singletons).
        yield from _search_single(plans[0], instance, assignment, copy)
        return
    if not assignment and len(atom_list) == 2:
        # Flat pair join for unconstrained two-atom conjunctions (the
        # dominant tgd-lhs shape).  With no initial bindings and all-
        # variable atoms, the cardinality rule reduces to "outer = the
        # smaller relation, ties keep written order; inner = its join
        # partners" — so a group join enumerates in exactly the generic
        # search's order, without per-node candidate counts or bindings
        # dicts.
        plan = _flat_join_plan(atom_list)
        if plan is not None:
            if written_order:
                outer_index = 0
            else:
                counts = [
                    candidate_count(atom.relation, _EMPTY_BINDINGS)
                    for atom in atom_list
                ]
                outer_index = 1 if counts[1] < counts[0] else 0
            yield from _iter_pair_matches(atom_list, outer_index, instance, copy)
            return
    if not assignment and len(atom_list) > 2:
        plan = _flat_join_plan(atom_list)
        if plan is not None and _wcoj_selected(plan, instance):
            # Cyclic ≥3-atom bodies (or forced "wcoj" mode): per-variable
            # intersection beats any atom-at-a-time order here, and its
            # enumeration order is content-determined (written-order
            # lexicographic) rather than cardinality-driven — the same
            # rows for every engine, index state, and mutation history.
            slots = tuple(plan.slot_of.items())
            live: dict[Variable, GroundTerm] = {}
            for row in _iter_wcoj_rows(plan, instance):
                for variable, (index, position) in slots:
                    live[variable] = row[index].args[position]
                yield (dict(live) if copy else live), row
            return
    yield from search(list(range(len(atom_list))))


_EMPTY_BINDINGS: dict[int, GroundTerm] = {}


def _iter_pair_matches(
    atom_list: tuple[Atom, ...],
    outer_index: int,
    instance: Instance,
    copy: bool = True,
) -> Iterator[tuple[dict[Variable, GroundTerm], tuple[Fact, ...]]]:
    """Group join for an unconstrained all-variable two-atom conjunction.

    *outer_index* selects which atom drives the outer loop (the caller
    replicates the generic search's cardinality rule); the inner atom's
    facts are grouped once on the positions of the shared variables.
    Enumeration order equals the generic search's: outer facts in
    ``sort_key`` order, partners in ``sort_key`` order within the join
    group, images aligned with the written atom order.
    """
    inner_index = 1 - outer_index
    outer_atom = atom_list[outer_index]
    inner_atom = atom_list[inner_index]
    outer_positions = {arg: pos for pos, arg in enumerate(outer_atom.args)}
    inner_key_positions: list[int] = []
    outer_key_positions: list[int] = []
    inner_new_slots: list[tuple[Term, int]] = []
    for position, arg in enumerate(inner_atom.args):
        outer_position = outer_positions.get(arg)
        if outer_position is None:
            inner_new_slots.append((arg, position))
        else:
            inner_key_positions.append(position)
            outer_key_positions.append(outer_position)
    outer_slots = tuple(enumerate(outer_atom.args))
    outer_first = outer_index == 0
    inner_arity = inner_atom.arity
    live: dict[Variable, GroundTerm] = {}
    if len(inner_key_positions) == 1:
        # One shared variable: the inner candidates are exactly one
        # `(position, value)` index bucket — probe it instead of building
        # a group map.  The index is maintained incrementally on
        # mutation, so a long-lived instance (the abstract chase's
        # region-sweep source) amortizes it across every probe.
        inner_position = inner_key_positions[0]
        outer_position = outer_key_positions[0]
        inner_lookup = instance.lookup_ordered
        inner_relation = inner_atom.relation
        for outer_fact in instance.lookup_ordered(
            outer_atom.relation, _EMPTY_BINDINGS
        ):
            if outer_fact.arity != outer_atom.arity:
                continue
            args = outer_fact.args
            partners = inner_lookup(
                inner_relation, {inner_position: args[outer_position]}
            )
            if not partners:
                continue
            for position, variable in outer_slots:
                live[variable] = args[position]  # type: ignore[index]
            for inner_fact in partners:
                if inner_fact.arity != inner_arity:
                    continue
                inner_args = inner_fact.args
                for variable, position in inner_new_slots:
                    live[variable] = inner_args[position]  # type: ignore[index]
                images = (
                    (outer_fact, inner_fact)
                    if outer_first
                    else (inner_fact, outer_fact)
                )
                yield (dict(live) if copy else live), images
        return
    grouped: dict[tuple, list[Fact]] = {}
    for item in instance.lookup_ordered(inner_atom.relation, _EMPTY_BINDINGS):
        if item.arity != inner_atom.arity:
            continue
        key = tuple(item.args[p] for p in inner_key_positions)
        grouped.setdefault(key, []).append(item)
    for outer_fact in instance.lookup_ordered(
        outer_atom.relation, _EMPTY_BINDINGS
    ):
        if outer_fact.arity != outer_atom.arity:
            continue
        args = outer_fact.args
        partners = grouped.get(tuple(args[p] for p in outer_key_positions))
        if not partners:
            continue
        for position, variable in outer_slots:
            live[variable] = args[position]  # type: ignore[index]
        for inner_fact in partners:
            inner_args = inner_fact.args
            for variable, position in inner_new_slots:
                live[variable] = inner_args[position]  # type: ignore[index]
            images = (
                (outer_fact, inner_fact)
                if outer_first
                else (inner_fact, outer_fact)
            )
            yield (dict(live) if copy else live), images


def _search_single(
    plan: _AtomPlan,
    instance: Instance,
    assignment: dict[Variable, GroundTerm],
    copy: bool = True,
) -> Iterator[tuple[dict[Variable, GroundTerm], tuple[Fact, ...]]]:
    """Enumerate the matches of one atom (flat loop, no recursion).

    Deliberately mirrors the candidate bind/undo loop of ``search`` in
    :func:`find_homomorphisms_with_images` — keep the two in sync.  The
    duplication buys the hottest call shape (single-atom conjunctions)
    a run without the recursive generator machinery.  An unconstrained
    all-distinct-variable atom (the copy-tgd lhs) additionally skips the
    bind/undo bookkeeping: every candidate matches, so the loop just
    overwrites one live assignment dict per fact.
    """
    if not assignment and not plan.constants:
        var_positions = plan.var_positions
        if len({variable for _p, variable in var_positions}) == len(
            var_positions
        ):
            arity = plan.arity
            live: dict[Variable, GroundTerm] = {}
            for candidate in instance.lookup_ordered(
                plan.relation, _EMPTY_BINDINGS
            ):
                if candidate.arity != arity:
                    continue
                args = candidate.args
                for position, variable in var_positions:
                    live[variable] = args[position]  # type: ignore[index]
                yield (dict(live) if copy else live), (candidate,)
            return
    bindings = plan.bindings(assignment)
    unbound = [
        entry for entry in plan.var_positions if entry[0] not in bindings
    ]
    arity = plan.arity
    for candidate in instance.lookup_ordered(plan.relation, bindings):
        if candidate.arity != arity:
            continue
        args = candidate.args
        newly_bound: list[Term] = []
        clash = False
        for position, variable in unbound:
            value = args[position]
            current = assignment.get(variable)
            if current is None:
                assignment[variable] = value
                newly_bound.append(variable)
            elif current != value:
                clash = True
                break
        if clash:
            for variable in newly_bound:
                del assignment[variable]
            continue
        yield (dict(assignment) if copy else assignment), (candidate,)
        for variable in newly_bound:
            del assignment[variable]


def find_homomorphisms(
    atoms: Sequence[Atom] | Conjunction,
    instance: Instance,
    initial: Mapping[Variable, GroundTerm] | None = None,
    copy: bool = True,
) -> Iterator[dict[Variable, GroundTerm]]:
    """Yield every assignment mapping the conjunction into the instance.

    ``copy=False`` yields the live search dict (see
    :func:`find_homomorphisms_with_images`).
    """
    for assignment, _images in find_homomorphisms_with_images(
        atoms, instance, initial, copy
    ):
        yield assignment


def find_homomorphism(
    atoms: Sequence[Atom] | Conjunction,
    instance: Instance,
    initial: Mapping[Variable, GroundTerm] | None = None,
) -> dict[Variable, GroundTerm] | None:
    """The first homomorphism, or ``None`` when none exists."""
    for assignment, _images in find_homomorphisms_with_images(
        atoms, instance, initial
    ):
        return assignment
    return None


def has_homomorphism(
    atoms: Sequence[Atom] | Conjunction,
    instance: Instance,
    initial: Mapping[Variable, GroundTerm] | None = None,
) -> bool:
    """``True`` iff some homomorphism exists."""
    return find_homomorphism(atoms, instance, initial) is not None


# ---------------------------------------------------------------------------
# Flat written-order joins and egd match enumeration (full and semi-naive)
# ---------------------------------------------------------------------------


class _FlatJoinPlan:
    """A written-order join plan over an all-variable conjunction.

    Covers any number of atoms whose arguments are variables, distinct
    within each atom (repeats *across* atoms are the join conditions).
    ``slot_of`` maps each variable to the ``(atom, position)`` that binds
    it first; ``key_positions[i]`` lists atom *i*'s positions carrying an
    earlier-bound variable, and ``key_sources[i]`` the matching source
    slots — so atom *i*'s join key is read straight off the already
    chosen facts, with no assignment dict in sight.
    """

    __slots__ = (
        "atoms",
        "slot_of",
        "key_positions",
        "key_sources",
        "cyclic",
        "wcoj_plan",
    )

    def __init__(self, atoms: tuple[Atom, ...]) -> None:
        self.atoms = atoms
        self.slot_of: dict[Term, tuple[int, int]] = {}
        self.key_positions: list[tuple[int, ...]] = []
        self.key_sources: list[tuple[tuple[int, int], ...]] = []
        # Both lazily computed on the first auto-mode selection probe.
        self.cyclic: bool | None = None
        self.wcoj_plan: _WcojPlan | None = None
        for index, atom in enumerate(atoms):
            positions: list[int] = []
            sources: list[tuple[int, int]] = []
            for position, arg in enumerate(atom.args):
                slot = self.slot_of.get(arg)
                if slot is None:
                    self.slot_of[arg] = (index, position)
                else:
                    positions.append(position)
                    sources.append(slot)
            self.key_positions.append(tuple(positions))
            self.key_sources.append(tuple(sources))


# Capped like _INTERVAL_CONSTANTS: distinct dependency shapes are few in
# any one workload, but a long-running process generating many settings
# must not grow this without bound (clearing only re-plans, never breaks).
_flat_join_plans: dict[tuple[Atom, ...], _FlatJoinPlan | None] = {}
_FLAT_JOIN_PLAN_CAP = 4096


def _flat_join_plan(atoms: tuple[Atom, ...]) -> _FlatJoinPlan | None:
    """The cached flat-join plan of *atoms*, or ``None`` for shapes
    (constants, repeated variables within an atom) that need the generic
    backtracking search."""
    try:
        return _flat_join_plans[atoms]
    except KeyError:
        pass
    if len(_flat_join_plans) >= _FLAT_JOIN_PLAN_CAP:
        _flat_join_plans.clear()
    plan: _FlatJoinPlan | None = _FlatJoinPlan(atoms)
    for atom in atoms:
        if not all(isinstance(arg, Variable) for arg in atom.args):
            plan = None
            break
        if len(set(atom.args)) != len(atom.args):
            plan = None
            break
    _flat_join_plans[atoms] = plan
    return plan


def _iter_flat_join_rows(
    plan: _FlatJoinPlan, instance: Instance
) -> Iterator[tuple[Fact, ...]]:
    """All image tuples of the plan's conjunction, in written-atom order.

    Atom 0 ranges over its sorted relation list; each later atom's
    partners come from a group map keyed on its join-key values — one
    linear pass per atom to build, dict lookups to enumerate.  The
    resulting order is exactly the written-order backtracking search's
    (outer facts in ``sort_key`` order, partners in ``sort_key`` order
    within each group).
    """
    atoms = plan.atoms
    count = len(atoms)
    first = atoms[0]
    outer = [
        item
        for item in instance.lookup_ordered(first.relation, {})
        if item.arity == first.arity
    ]
    if count == 1:
        for item in outer:
            yield (item,)
        return
    groups: list[dict[tuple, list[Fact]]] = []
    for index in range(1, count):
        atom = atoms[index]
        key_positions = plan.key_positions[index]
        grouped: dict[tuple, list[Fact]] = {}
        for item in instance.lookup_ordered(atom.relation, {}):
            if item.arity != atom.arity:
                continue
            key = tuple(item.args[position] for position in key_positions)
            grouped.setdefault(key, []).append(item)
        groups.append(grouped)
    if count == 2:
        # Flat loop for the by-far-most-common shape (key egds, decoupled
        # pairs) — same plan, no recursion.
        sources = plan.key_sources[1]
        partner_groups = groups[0]
        for item in outer:
            args = item.args
            key = tuple(args[position] for _atom, position in sources)
            for partner in partner_groups.get(key, ()):
                yield item, partner
        return
    row: list[Fact] = [None] * count  # type: ignore[list-item]

    def descend(index: int) -> Iterator[tuple[Fact, ...]]:
        key = tuple(
            row[atom_index].args[position]
            for atom_index, position in plan.key_sources[index]
        )
        for item in groups[index - 1].get(key, ()):
            row[index] = item
            if index + 1 == count:
                yield tuple(row)
            else:
                yield from descend(index + 1)

    for item in outer:
        row[0] = item
        yield from descend(1)


# ---------------------------------------------------------------------------
# Worst-case-optimal (generic) join over the same plans
# ---------------------------------------------------------------------------
#
# The flat join binds one *atom* at a time, so a cyclic body enumerates
# every binding of a prefix of its atoms before the closing atom gets to
# prune — Θ(paths) intermediate work for Θ(triangles) output on the
# canonical skew shapes.  The generic join binds one *variable* at a
# time instead: the candidate values for each variable come from the
# smallest index bucket among the atoms containing it, and every other
# such atom filters the value by an exact index probe (a leapfrog over
# the existing ``(position, value)`` buckets — no new index structures).
#
# Order contract: the variable order is the plan's first-occurrence
# order (``slot_of`` insertion order), and candidate values enumerate in
# ``term_sort_key`` order.  Because ``Fact.sort_key`` compares arguments
# componentwise in position order, the flat join's row sequence is
# exactly the lexicographic order in those same variable values — so
# :func:`_iter_wcoj_rows` yields byte-identical rows in the identical
# sequence to :func:`_iter_flat_join_rows`, for *any* plan shape.  The
# property suite sweeps this equality; everything downstream (traces,
# null numbering, goldens) is therefore unchanged by the mode switch.


def _plan_is_cyclic(plan: _FlatJoinPlan) -> bool:
    """GYO ear reduction on the body's variable hypergraph.

    Repeatedly drop variables occurring in a single atom and atoms whose
    variable set is contained in another's; the body is *cyclic* iff a
    non-empty irreducible core remains.  Acyclic bodies (paths, stars,
    hierarchical shapes) keep the flat join in auto mode: atom-at-a-time
    with group maps is cheaper there than per-variable intersection.
    """
    edges = [set(atom.args) for atom in plan.atoms]
    changed = True
    while changed and edges:
        changed = False
        counts = Counter(var for edge in edges for var in edge)
        for edge in edges:
            ears = [var for var in edge if counts[var] == 1]
            if ears:
                edge.difference_update(ears)
                for var in ears:
                    del counts[var]
                changed = True
        kept: list[set] = []
        for index, edge in enumerate(edges):
            if not edge:
                changed = True
                continue
            absorbed = False
            for other_index, other in enumerate(edges):
                if other_index == index or not other:
                    continue
                if edge <= other and (
                    len(edge) < len(other) or index > other_index
                ):
                    absorbed = True
                    break
            if absorbed:
                changed = True
                continue
            kept.append(edge)
        edges = kept
    return bool(edges)


# Below this many facts in every body relation, auto mode keeps the
# flat join even for cyclic bodies: the generic join's per-variable
# candidate probes are a constant-factor overhead, and the flat join's
# quadratic intermediate is bounded by the input size anyway.  Measured
# crossover on the hub-skewed triangle workload sits between 144 and
# 432 facts per relation; either engine enumerates byte-identical rows,
# so the cutoff can never change results.
_WCOJ_MIN_FACTS = 256


def _wcoj_selected(plan: _FlatJoinPlan, instance: Instance | None = None) -> bool:
    """Whether the current join mode routes *plan* to the generic join.

    Two-atom plans always stay flat (the pair paths are already optimal);
    ``auto`` selects the generic join for ≥3-atom cyclic bodies whose
    input is big enough to matter (some body relation holds at least
    ``_WCOJ_MIN_FACTS`` facts — skipped when no *instance* is supplied),
    ``wcoj`` forces it for every ≥3-atom plan, ``flat`` never selects it.
    """
    if len(plan.atoms) < 3 or _join_mode == "flat":
        return False
    if _join_mode == "wcoj":
        return True
    cyclic = plan.cyclic
    if cyclic is None:
        cyclic = plan.cyclic = _plan_is_cyclic(plan)
    if not cyclic:
        return False
    if instance is None:
        return True
    return any(
        instance.candidate_count(atom.relation, _EMPTY_BINDINGS)
        >= _WCOJ_MIN_FACTS
        for atom in plan.atoms
    )


class _WcojPlan:
    """Static per-variable schedule for the generic join of one plan.

    ``steps[k]`` lists the occurrences of the k-th variable (in
    first-occurrence order) as ``(atom, position, completes, sorted)``
    tuples: *completes* marks the occurrence whose binding fixes the
    atom's last open position (the exact probe there also fetches the
    image fact), and *sorted* marks positions where the driving atom's
    candidate projection is already in ``term_sort_key`` order (the
    position is the atom's first still-open one, so the pre-sorted
    bucket order projects monotonically — no per-node sort needed).
    """

    __slots__ = ("var_order", "steps", "relations", "arities")

    def __init__(self, plan: _FlatJoinPlan) -> None:
        atoms = plan.atoms
        var_order = tuple(plan.slot_of)
        index_of = {var: index for index, var in enumerate(var_order)}
        completes_at = [
            max(index_of[arg] for arg in atom.args) for atom in atoms
        ]
        steps: list[tuple[tuple[int, int, bool, bool], ...]] = []
        for rank, var in enumerate(var_order):
            entries: list[tuple[int, int, bool, bool]] = []
            for atom_index, atom in enumerate(atoms):
                for position, arg in enumerate(atom.args):
                    if arg != var:
                        continue
                    first_open = min(
                        open_position
                        for open_position, open_arg in enumerate(atom.args)
                        if index_of[open_arg] >= rank
                    )
                    entries.append(
                        (
                            atom_index,
                            position,
                            completes_at[atom_index] == rank,
                            position == first_open,
                        )
                    )
            steps.append(tuple(entries))
        self.var_order = var_order
        self.steps = tuple(steps)
        self.relations = tuple(atom.relation for atom in atoms)
        self.arities = tuple(atom.arity for atom in atoms)


def _iter_wcoj_rows(
    plan: _FlatJoinPlan, instance: Instance
) -> Iterator[tuple[Fact, ...]]:
    """Generic-join enumeration of the plan's image tuples.

    Byte-identical rows in the identical sequence to
    :func:`_iter_flat_join_rows` (see the order contract above); only
    the work to produce them differs — per-variable candidate
    intersection instead of atom-at-a-time enumeration.
    """
    wplan = plan.wcoj_plan
    if wplan is None:
        wplan = plan.wcoj_plan = _WcojPlan(plan)
    steps = wplan.steps
    relations = wplan.relations
    arities = wplan.arities
    last_rank = len(steps) - 1
    lookup = instance.lookup_ordered
    candidate_count = instance.candidate_count
    atom_count = len(relations)
    bindings: list[dict[int, GroundTerm]] = [{} for _ in range(atom_count)]
    images: list[Fact | None] = [None] * atom_count

    def descend(rank: int) -> Iterator[tuple[Fact, ...]]:
        entries = steps[rank]
        driver = entries[0]
        best = candidate_count(relations[driver[0]], bindings[driver[0]])
        for entry in entries[1:]:
            if best == 0:
                return
            count = candidate_count(relations[entry[0]], bindings[entry[0]])
            if count < best:
                driver, best = entry, count
        if best == 0:
            return
        driver_atom, driver_position, _completes, projection_sorted = driver
        driver_arity = arities[driver_atom]
        candidates = lookup(relations[driver_atom], bindings[driver_atom])
        values: list[GroundTerm] = []
        if projection_sorted:
            for item in candidates:
                if item.arity != driver_arity:
                    continue
                value = item.args[driver_position]
                if not values or values[-1] != value:
                    values.append(value)
        else:
            seen: set[GroundTerm] = set()
            for item in candidates:
                if item.arity != driver_arity:
                    continue
                value = item.args[driver_position]
                if value not in seen:
                    seen.add(value)
                    values.append(value)
            values.sort(key=term_sort_key)
        last = rank == last_rank
        for value in values:
            for atom_index, position, _c, _s in entries:
                bindings[atom_index][position] = value
            supported = True
            for atom_index, _position, completes, _s in entries:
                hits = lookup(relations[atom_index], bindings[atom_index])
                if completes:
                    arity = arities[atom_index]
                    image = None
                    for item in hits:
                        if item.arity == arity:
                            image = item
                            break
                    if image is None:
                        supported = False
                        break
                    images[atom_index] = image
                elif not hits:
                    supported = False
                    break
            if supported:
                if last:
                    yield tuple(images)  # type: ignore[misc]
                else:
                    yield from descend(rank + 1)
            for atom_index, position, _c, _s in entries:
                del bindings[atom_index][position]

    if steps:
        yield from descend(0)


def _iter_join_rows(
    plan: _FlatJoinPlan, instance: Instance
) -> Iterator[tuple[Fact, ...]]:
    """The plan's image tuples via whichever join the mode selects.

    The single dispatch point shared by the chase engine's match
    enumeration, egd equation enumeration, normalization's decoupled
    matching, and the query evaluator — one ``--join`` switch covers
    them all, and the two engines' row sequences are identical.
    """
    if _wcoj_selected(plan, instance):
        return _iter_wcoj_rows(plan, instance)
    return _iter_flat_join_rows(plan, instance)


def iter_egd_equations(
    atoms: Sequence[Atom],
    left_var: Variable,
    right_var: Variable,
    instance: Instance,
) -> Iterator[tuple[GroundTerm, GroundTerm]]:
    """Yield ``(h(left_var), h(right_var))`` for every lhs homomorphism.

    The egd phases only consume the equated pair, so any all-variable lhs
    — two atoms or ten — takes the flat written-order group join of
    :func:`_iter_flat_join_rows` and reads the equated values straight
    off the matched facts.  For the canonical key-egd shape
    ``R(x̄,y) ∧ R(x̄,y′) → y = y′`` this reproduces the historical
    specialized enumeration order exactly (outer facts in ``sort_key``
    order, join partners in ``sort_key`` order within the join group) —
    the order the golden traces were captured under.  Shapes with
    constants or repeated variables fall back to the written-order
    backtracking search.
    """
    atom_list = tuple(atoms)
    plan = _flat_join_plan(atom_list)
    if plan is None:
        for assignment, _images in find_homomorphisms_with_images(
            atom_list, instance, copy=False, atom_order="written"
        ):
            yield assignment[left_var], assignment[right_var]
        return
    left_atom, left_position = plan.slot_of[left_var]
    right_atom, right_position = plan.slot_of[right_var]
    if len(atom_list) == 2:
        # Flat loop for the key-egd shape: pairs come straight off the
        # group join, values straight off the matched facts.
        first, second = atom_list
        key_positions = plan.key_positions[1]
        grouped: dict[tuple, list[Fact]] = {}
        for item in instance.lookup_ordered(second.relation, _EMPTY_BINDINGS):
            if item.arity != second.arity:
                continue
            grouped.setdefault(
                tuple([item.args[p] for p in key_positions]), []
            ).append(item)
        sources = tuple(position for _atom, position in plan.key_sources[1])
        for item in instance.lookup_ordered(first.relation, _EMPTY_BINDINGS):
            if item.arity != first.arity:
                continue
            args = item.args
            partners = grouped.get(tuple([args[p] for p in sources]))
            if not partners:
                continue
            if left_atom == 0 and right_atom == 0:
                pair = (args[left_position], args[right_position])
                for _partner in partners:
                    yield pair
            elif left_atom == 0:
                left_value = args[left_position]
                for partner in partners:
                    yield left_value, partner.args[right_position]
            elif right_atom == 0:
                right_value = args[right_position]
                for partner in partners:
                    yield partner.args[left_position], right_value
            else:
                for partner in partners:
                    partner_args = partner.args
                    yield (
                        partner_args[left_position],
                        partner_args[right_position],
                    )
        return
    for row in _iter_join_rows(plan, instance):
        yield row[left_atom].args[left_position], row[right_atom].args[
            right_position
        ]


def match_atom_against_fact(
    atom: Atom, item: Fact
) -> dict[Variable, GroundTerm] | None:
    """The assignment binding *atom* to exactly *item*, or ``None``.

    Respects constants and repeated variables; this is the anchor step of
    the semi-naive enumeration (one atom pinned to one delta fact).
    """
    if atom.relation != item.relation or atom.arity != item.arity:
        return None
    assignment: dict[Variable, GroundTerm] = {}
    for arg, value in zip(atom.args, item.args, strict=True):
        if isinstance(arg, Constant):
            if arg != value:
                return None
        else:
            bound = assignment.get(arg)
            if bound is None:
                assignment[arg] = value  # type: ignore[index]
            elif bound != value:
                return None
    return assignment


def iter_egd_equations_delta(
    atoms: Sequence[Atom],
    left_var: Variable,
    right_var: Variable,
    instance: Instance,
    delta: Sequence[Fact],
) -> Iterator[tuple[GroundTerm, GroundTerm]]:
    """Equations from lhs matches that touch at least one *delta* fact.

    The classic semi-naive decomposition: for each anchor position ``i``,
    atom ``i`` ranges over the delta facts, atoms before ``i`` over old
    (non-delta) facts only, atoms after ``i`` over the whole instance —
    so every match involving a delta fact is produced exactly once.
    Matches among old facts only cannot yield a *new* non-trivial
    equation (their equation was already resolved in the round that left
    those facts untouched), which is what makes the delta rounds of the
    engine exhaustive.
    """
    atom_list = tuple(atoms)
    delta_set = set(delta)
    for anchor, atom in enumerate(atom_list):
        rest = atom_list[:anchor] + atom_list[anchor + 1 :]
        for item in delta:
            initial = match_atom_against_fact(atom, item)
            if initial is None:
                continue
            for assignment, images in find_homomorphisms_with_images(
                rest, instance, initial=initial, copy=False, atom_order="written"
            ):
                if any(image in delta_set for image in images[:anchor]):
                    continue
                yield assignment[left_var], assignment[right_var]


# ---------------------------------------------------------------------------
# Instance-to-instance homomorphisms (Section 2)
# ---------------------------------------------------------------------------


def find_instance_homomorphism(
    source: Instance,
    target: Instance,
    fixed: Mapping[Term, GroundTerm] | None = None,
    frozen_nulls: Iterable[Term] = (),
) -> dict[Term, GroundTerm] | None:
    """A homomorphism ``h : source → target``, or ``None``.

    * constants map to themselves,
    * nulls map to arbitrary ground terms of the target,
    * every source fact's image must be a target fact.

    *fixed* pre-binds some nulls (used by the abstract-view search to keep
    a global assignment of rigid nulls consistent across snapshots);
    *frozen_nulls* lists nulls that must map to themselves (used by the
    core computation to test foldings that fix a sub-instance).
    """
    mapping: dict[Term, GroundTerm] = dict(fixed or {})
    for null in frozen_nulls:
        mapping.setdefault(null, null)  # type: ignore[arg-type]

    source_facts = sorted(source.facts(), key=Fact.sort_key)

    def fact_bindings(item: Fact) -> dict[int, GroundTerm]:
        bound: dict[int, GroundTerm] = {}
        for position, arg in enumerate(item.args):
            if isinstance(arg, Constant):
                bound[position] = arg
            elif arg in mapping:
                bound[position] = mapping[arg]
        return bound

    def extend(item: Fact, image: Fact) -> list[Term] | None:
        """Bind unbound nulls of *item* to the values in *image*."""
        newly_bound: list[Term] = []
        for arg, value in zip(item.args, image.args, strict=True):
            if isinstance(arg, Constant):
                if arg != value:
                    return None
            else:
                current = mapping.get(arg)
                if current is None:
                    mapping[arg] = value
                    newly_bound.append(arg)
                elif current != value:
                    for bound_arg in newly_bound:
                        del mapping[bound_arg]
                    return None
        return newly_bound

    def search(position: int) -> bool:
        if position == len(source_facts):
            return True
        item = source_facts[position]
        candidates = target.lookup_ordered(item.relation, fact_bindings(item))
        for candidate in candidates:
            newly_bound = extend(item, candidate)
            if newly_bound is None:
                continue
            if search(position + 1):
                return True
            for bound_arg in newly_bound:
                del mapping[bound_arg]
        return False

    if search(0):
        return mapping
    return None


def has_instance_homomorphism(source: Instance, target: Instance) -> bool:
    """``True`` iff some homomorphism ``source → target`` exists."""
    return find_instance_homomorphism(source, target) is not None


def is_homomorphism(
    mapping: Mapping[Term, Term], source: Instance, target: Instance
) -> bool:
    """Verify that *mapping* is a homomorphism ``source → target``.

    Checks the two defining conditions: identity on constants (constants
    may simply be absent from the mapping) and fact preservation.
    """
    for term, image in mapping.items():
        if isinstance(term, Constant) and image != term:
            return False
    lookup = dict(mapping)
    for item in source.facts():
        mapped = item.substitute(lookup)
        if mapped not in target:
            return False
    return True
