"""``SourceDelta`` — the one canonical "the source changed" value.

Before this module, the repository had three incompatible private ways
to say a source instance changed: the server's strict add/remove JSON
dicts, the incremental chase's snapshot diffs, and ad-hoc fact lists in
tests and examples.  :class:`SourceDelta` is the shared seam: a frozen
add/remove pair of concrete facts with a canonical JSON codec, strict
application semantics, and the set algebra the event-sourced ingestion
layer composes deltas with.

Canonical form
--------------

Both sides are stored sorted by :meth:`ConcreteFact.sort_key` and
duplicate-free, and a fact may not appear on both sides — so two equal
deltas always serialize to byte-identical JSON::

    {"add":    [{"relation": …, "data": […], "interval": "[2, 5)"}, …],
     "remove": […]}

Strictness
----------

:meth:`SourceDelta.apply` refuses to remove an absent fact or add a
present one (:class:`~repro.errors.DeltaError`).  Silently absorbing
either would let the producer's view of the cumulative source drift
from the consumer's — and every byte-identity guarantee downstream of a
delta (server target ≡ from-scratch chase of the cumulative source) is
only meaningful while both sides agree on what that source is.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable

from repro.concrete.concrete_fact import ConcreteFact
from repro.concrete.concrete_instance import ConcreteInstance
from repro.errors import DeltaError
from repro.serialize.jsonio import concrete_fact_from_json, concrete_fact_to_json

__all__ = ["SourceDelta"]


def _canonical_side(facts: Iterable[ConcreteFact], side: str) -> tuple[ConcreteFact, ...]:
    """Sort, validate and freeze one side of a delta."""
    items = list(facts)
    for item in items:
        if not isinstance(item, ConcreteFact):
            raise DeltaError(
                f"delta {side!r} entries must be concrete facts, got {item!r}"
            )
    ordered = sorted(set(items), key=ConcreteFact.sort_key)
    if len(ordered) != len(items):
        raise DeltaError(f"delta {side!r} side lists a fact twice")
    return tuple(ordered)


@dataclass(frozen=True)
class SourceDelta:
    """A strict add/remove change to a concrete source instance."""

    add: tuple[ConcreteFact, ...] = ()
    remove: tuple[ConcreteFact, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "add", _canonical_side(self.add, "add"))
        object.__setattr__(self, "remove", _canonical_side(self.remove, "remove"))
        overlap = set(self.add) & set(self.remove)
        if overlap:
            sample = min(overlap, key=ConcreteFact.sort_key)
            raise DeltaError(
                f"delta adds and removes the same fact {sample} "
                f"({len(overlap)} overlapping)"
            )

    # -- construction ------------------------------------------------------

    @classmethod
    def empty(cls) -> "SourceDelta":
        return cls()

    @classmethod
    def between(
        cls, old: ConcreteInstance, new: ConcreteInstance
    ) -> "SourceDelta":
        """The delta taking *old* to *new*; empty iff the two are equal.

        Instance iteration is content-sorted, so the result is canonical
        regardless of how either instance was built.
        """
        add = tuple(item for item in new if item not in old)
        remove = tuple(item for item in old if item not in new)
        return cls(add=add, remove=remove)

    # -- codec -------------------------------------------------------------

    def to_json(self) -> dict[str, Any]:
        """The canonical JSON form (both sides in canonical fact order)."""
        return {
            "add": [concrete_fact_to_json(item) for item in self.add],
            "remove": [concrete_fact_to_json(item) for item in self.remove],
        }

    @classmethod
    def from_json(cls, payload: Any) -> "SourceDelta":
        """Decode the canonical form, reporting the offending entry."""
        if not isinstance(payload, dict):
            raise DeltaError(
                f"a source delta is a JSON object with 'add'/'remove' "
                f"fact lists, got {type(payload).__name__}"
            )
        unknown = set(payload) - {"add", "remove"}
        if unknown:
            raise DeltaError(
                f"unknown source-delta field(s) {sorted(unknown)!r} "
                "(expected only 'add' and 'remove')"
            )
        sides: dict[str, list[ConcreteFact]] = {}
        for side in ("add", "remove"):
            entries = payload.get(side, [])
            if not isinstance(entries, list):
                raise DeltaError(f"delta field {side!r} must be a list of facts")
            facts = []
            for index, entry in enumerate(entries):
                if not isinstance(entry, dict):
                    raise DeltaError(f"{side}[{index}] must be a fact object")
                try:
                    facts.append(concrete_fact_from_json(entry))
                except Exception as exc:  # parse errors come in several types
                    raise DeltaError(
                        f"{side}[{index}] is not a valid fact: {exc}"
                    ) from exc
            sides[side] = facts
        return cls(add=tuple(sides["add"]), remove=tuple(sides["remove"]))

    # -- predicates --------------------------------------------------------

    @property
    def is_empty(self) -> bool:
        return not self.add and not self.remove

    def __bool__(self) -> bool:
        return not self.is_empty

    def __len__(self) -> int:
        """Total number of changed facts."""
        return len(self.add) + len(self.remove)

    # -- application -------------------------------------------------------

    def apply(self, instance: ConcreteInstance) -> ConcreteInstance:
        """Apply the delta to *instance* in place (strict); returns it.

        Removals run first so an interval revision (remove the stale
        fragment, add its replacements) never trips the duplicate check.
        Raises :class:`DeltaError` naming the first offending fact; the
        instance is left partially modified only if that happens — use
        :meth:`applied_to` when the input must survive a failed apply.
        """
        for item in self.remove:
            if not instance.discard(item):
                raise DeltaError(f"cannot remove absent source fact {item}")
        for item in self.add:
            if not instance.add(item):
                raise DeltaError(f"source fact {item} is already present")
        return instance

    def applied_to(self, instance: ConcreteInstance) -> ConcreteInstance:
        """A copy of *instance* with the delta applied (strict)."""
        return self.apply(instance.copy())

    # -- algebra -----------------------------------------------------------

    def inverse(self) -> "SourceDelta":
        """The delta undoing this one."""
        return SourceDelta(add=self.remove, remove=self.add)

    def then(self, other: "SourceDelta") -> "SourceDelta":
        """The net delta of applying *self* and then *other*.

        A fact added then removed (or removed then re-added) cancels
        out, so following a delta chain and applying its composition
        reach the same instance — the event log's follow cursor relies
        on this to batch consecutive deltas.
        """
        add1, rem1 = set(self.add), set(self.remove)
        add2, rem2 = set(other.add), set(other.remove)
        net_add = (add1 - rem2) | (add2 - rem1)
        net_remove = (rem1 - add2) | (rem2 - add1)
        return SourceDelta(add=tuple(net_add), remove=tuple(net_remove))

    def __str__(self) -> str:
        return f"SourceDelta(+{len(self.add)}, -{len(self.remove)})"
