"""Generic coalescing of interval-stamped items (Böhlen, Snodgrass & Soo).

A concrete instance is *coalesced* when facts with identical data-attribute
values carry disjoint, non-adjacent intervals (paper, Section 2).  Any
abstract database has a unique coalesced concrete representation, and the
paper assumes source instances are coalesced.

This module implements coalescing generically over ``(key, interval)``
pairs so the same machinery serves concrete facts, query answers and
abstract-instance templates.  :mod:`repro.concrete.concrete_instance`
builds its null-aware fact coalescing on top of these primitives.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Mapping, Sequence, TypeVar

from repro.temporal.interval import Interval
from repro.temporal.interval_set import IntervalSet

__all__ = [
    "coalesce_intervals",
    "coalesce_pairs",
    "is_coalesced_intervals",
    "group_is_coalesced",
]

K = TypeVar("K", bound=Hashable)


def coalesce_intervals(intervals: Iterable[Interval]) -> tuple[Interval, ...]:
    """Merge overlapping or adjacent intervals into canonical disjoint form.

    The result is sorted by start point and is the unique minimal set of
    disjoint, non-adjacent intervals with the same point set.
    """
    return IntervalSet(intervals).intervals


def coalesce_pairs(
    pairs: Iterable[tuple[K, Interval]],
) -> dict[K, tuple[Interval, ...]]:
    """Coalesce interval-stamped items grouped by key.

    ``[("ada", [2012,2014)), ("ada", [2014,2016))]`` coalesces to
    ``{"ada": ([2012,2016),)}``: same data value over adjacent stamps is a
    single fact in the coalesced representation.
    """
    grouped: dict[K, list[Interval]] = {}
    for key, stamp in pairs:
        grouped.setdefault(key, []).append(stamp)
    return {key: coalesce_intervals(stamps) for key, stamps in grouped.items()}


def is_coalesced_intervals(intervals: Sequence[Interval]) -> bool:
    """``True`` iff the intervals are pairwise disjoint and non-adjacent."""
    ordered = sorted(intervals, key=Interval.sort_key)
    for left, right in zip(ordered, ordered[1:], strict=False):
        if left.overlaps(right) or left.adjacent(right):
            return False
    return True


def group_is_coalesced(
    groups: Mapping[K, Sequence[Interval]],
) -> bool:
    """``True`` iff every key's stamps are coalesced."""
    return all(is_coalesced_intervals(stamps) for stamps in groups.values())
