"""Finite unions of disjoint intervals over the time domain.

Several constructions in the library manipulate *sets* of time points that
are not single intervals: the set of snapshots at which two abstract
instances differ, the domain where a query answer holds, the complement of
a fact's lifespan.  :class:`IntervalSet` represents such sets canonically —
as a sorted tuple of pairwise disjoint, non-adjacent intervals — so that
equality of interval sets coincides with equality of the point sets they
denote.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.errors import TemporalError
from repro.temporal.interval import Interval
from repro.temporal.timepoint import INFINITY, Infinity, TimePoint

__all__ = [
    "IntervalSet",
    "sweep_overlap_clusters",
    "sweep_bipartite_clusters",
]


def _canonicalize(intervals: Iterable[Interval]) -> tuple[Interval, ...]:
    """Sort and merge overlapping/adjacent intervals into canonical form."""
    items = sorted(intervals, key=Interval.sort_key)
    merged: list[Interval] = []
    for item in items:
        if merged and (merged[-1].overlaps(item) or merged[-1].adjacent(item)):
            merged[-1] = merged[-1].union(item)
        else:
            merged.append(item)
    return tuple(merged)


@dataclass(frozen=True)
class IntervalSet:
    """An immutable, canonical union of disjoint non-adjacent intervals."""

    intervals: tuple[Interval, ...]

    def __init__(self, intervals: Iterable[Interval] = ()):
        object.__setattr__(self, "intervals", _canonicalize(intervals))

    # -- constructors -----------------------------------------------------
    @classmethod
    def empty(cls) -> "IntervalSet":
        """The empty set of time points."""
        return cls(())

    @classmethod
    def all_time(cls) -> "IntervalSet":
        """The full time line ``[0, ∞)``."""
        return cls((Interval(0, INFINITY),))

    @classmethod
    def of(cls, *intervals: Interval) -> "IntervalSet":
        """Build from explicitly listed intervals."""
        return cls(intervals)

    @classmethod
    def point(cls, time_point: int) -> "IntervalSet":
        """The singleton set ``{ℓ}`` as ``[ℓ, ℓ+1)``."""
        return cls((Interval(time_point, time_point + 1),))

    @classmethod
    def _from_canonical(cls, pieces: Sequence[Interval]) -> "IntervalSet":
        """Trusted constructor: *pieces* must already be sorted, pairwise
        disjoint and non-adjacent.  The merge sweeps below produce exactly
        that shape, so they skip the ``_canonicalize`` sort."""
        result = object.__new__(cls)
        object.__setattr__(result, "intervals", tuple(pieces))
        return result

    # -- predicates --------------------------------------------------------
    @property
    def is_empty(self) -> bool:
        return not self.intervals

    @property
    def is_unbounded(self) -> bool:
        """``True`` iff the set contains arbitrarily late time points."""
        return bool(self.intervals) and self.intervals[-1].is_unbounded

    def __contains__(self, point: object) -> bool:
        return any(point in piece for piece in self.intervals)

    def __bool__(self) -> bool:
        return not self.is_empty

    def __iter__(self) -> Iterator[Interval]:
        return iter(self.intervals)

    def __len__(self) -> int:
        return len(self.intervals)

    def total_duration(self) -> TimePoint:
        """Number of covered time points (``∞`` when unbounded)."""
        if self.is_unbounded:
            return INFINITY
        total = 0
        for piece in self.intervals:
            total += piece.duration()  # type: ignore[operator]
        return total

    # -- set algebra ---------------------------------------------------------
    def union(self, other: "IntervalSet | Interval") -> "IntervalSet":
        other_intervals = (other,) if isinstance(other, Interval) else other.intervals
        return IntervalSet(self.intervals + tuple(other_intervals))

    def intersect(self, other: "IntervalSet | Interval") -> "IntervalSet":
        """Intersection by a linear merge over the two sorted piece lists.

        Both operands are canonical (sorted, disjoint, non-adjacent), so
        advancing whichever piece ends first visits every overlapping pair
        exactly once — ``O(n + m)`` instead of the pairwise ``O(n·m)`` —
        and the output pieces inherit canonical order.
        """
        other_intervals = (other,) if isinstance(other, Interval) else other.intervals
        mine = self.intervals
        pieces: list[Interval] = []
        i = j = 0
        size_mine, size_other = len(mine), len(other_intervals)
        while i < size_mine and j < size_other:
            a, b = mine[i], other_intervals[j]
            start = a.start if a.start >= b.start else b.start
            end = a.end if a.end <= b.end else b.end
            if start < end:
                pieces.append(Interval(start, end))
            if a.end <= b.end:
                i += 1
            else:
                j += 1
        return IntervalSet._from_canonical(pieces)

    def difference(self, other: "IntervalSet | Interval") -> "IntervalSet":
        """Difference by one forward sweep over both sorted piece lists.

        Each of our pieces is cut by the other pieces overlapping it; the
        cursor ``j`` never moves backwards, so the whole call is
        ``O(n + m)`` rather than re-cutting every piece per operand.
        """
        other_intervals = (other,) if isinstance(other, Interval) else other.intervals
        pieces: list[Interval] = []
        j = 0
        size_other = len(other_intervals)
        for mine in self.intervals:
            start, end = mine.start, mine.end
            while j < size_other and other_intervals[j].end <= start:
                j += 1
            k = j
            while k < size_other and other_intervals[k].start < end:
                cut = other_intervals[k]
                if cut.start > start:
                    pieces.append(Interval(start, cut.start))
                if cut.end >= end:
                    start = end
                    break
                start = cut.end
                k += 1
            if start < end:
                pieces.append(Interval(start, end))
            j = k
        return IntervalSet._from_canonical(pieces)

    def complement(self) -> "IntervalSet":
        """Complement with respect to the full time line ``[0, ∞)``."""
        return IntervalSet.all_time().difference(self)

    def symmetric_difference(self, other: "IntervalSet") -> "IntervalSet":
        return self.difference(other).union(other.difference(self))

    # -- queries ---------------------------------------------------------------
    def covers(self, other: "IntervalSet | Interval") -> bool:
        """``True`` iff *other* ⊆ *self*.

        One early-exit merge pass: each of *other*'s pieces must sit inside
        a single one of ours (canonical pieces never bridge our gaps), and
        both piece lists are sorted, so the cursor only moves forward.
        """
        other_intervals = (other,) if isinstance(other, Interval) else other.intervals
        mine = self.intervals
        i, size_mine = 0, len(mine)
        for piece in other_intervals:
            while i < size_mine and mine[i].end < piece.end:
                i += 1
            if i == size_mine or mine[i].start > piece.start:
                return False
        return True

    def min_point(self) -> int:
        """Earliest covered time point."""
        if self.is_empty:
            raise TemporalError("empty interval set has no minimum point")
        return self.intervals[0].start

    def max_finite_bound(self) -> int | None:
        """Largest finite endpoint mentioned, or ``None`` for the empty set.

        For ``[2, 5) ∪ [9, ∞)`` this is ``9``; every structural change in
        the set happens before this bound.
        """
        if self.is_empty:
            return None
        bound = self.intervals[0].start
        for piece in self.intervals:
            bound = max(bound, piece.start)
            if not isinstance(piece.end, Infinity):
                bound = max(bound, piece.end)
        return bound

    def breakpoints(self) -> tuple[TimePoint, ...]:
        """All distinct endpoints in ascending order (∞ included if present)."""
        seen: set[TimePoint] = set()
        for piece in self.intervals:
            seen.add(piece.start)
            seen.add(piece.end)
        finite = sorted(p for p in seen if isinstance(p, int))
        if INFINITY in seen:
            return tuple(finite) + (INFINITY,)
        return tuple(finite)

    def points(self, limit: TimePoint | None = None) -> Iterator[int]:
        """Iterate covered time points; unbounded sets require *limit*."""
        for piece in self.intervals:
            yield from piece.points(limit=limit)

    # -- rendering ------------------------------------------------------------
    def __str__(self) -> str:
        if self.is_empty:
            return "{}"
        return " ∪ ".join(str(piece) for piece in self.intervals)

    def __repr__(self) -> str:
        return f"IntervalSet({list(self.intervals)!r})"


# ---------------------------------------------------------------------------
# Endpoint sweeps (the normalization engine's primitives)
# ---------------------------------------------------------------------------


def sweep_overlap_clusters(
    intervals: Sequence[Interval],
) -> tuple[tuple[tuple[int, ...], ...], int]:
    """Transitive-overlap clusters of *intervals*, plus the overlap count.

    One endpoint sweep in ``O(g log g)``: indices are visited in
    :meth:`Interval.sort_key` order while a min-heap tracks the active
    right endpoints.  An interval whose start sees an empty active set
    opens a new cluster; otherwise it overlaps every still-active
    interval (their starts are not later, their ends are strictly
    greater), which both extends the current cluster and contributes
    ``len(active)`` to the returned count of *unordered* overlapping
    pairs.  Clusters are the connected components of the pairwise
    overlap graph — exactly what Algorithm 1's per-pair union-find
    computes by enumeration — returned as index tuples in sweep order.

    Half-open semantics are preserved: an end event at coordinate ``t``
    expires before a start at ``t``, so adjacent intervals neither pair
    up nor share a cluster.
    """
    order = sorted(range(len(intervals)), key=lambda i: intervals[i].sort_key())
    clusters: list[tuple[int, ...]] = []
    current: list[int] = []
    active: list[float] = []  # right endpoints; ∞ as math.inf
    pairs = 0
    push, pop = heapq.heappush, heapq.heappop
    for index in order:
        item = intervals[index]
        start = item.start
        while active and active[0] <= start:
            pop(active)
        if not active and current:
            clusters.append(tuple(current))
            current = []
        pairs += len(active)
        current.append(index)
        end = item.end
        push(active, math.inf if isinstance(end, Infinity) else end)
    if current:
        clusters.append(tuple(current))
    return tuple(clusters), pairs


def sweep_bipartite_clusters(
    left: Sequence[Interval],
    right: Sequence[Interval],
) -> tuple[tuple[tuple[tuple[int, ...], tuple[int, ...]], ...], int]:
    """Connected components of the *bipartite* overlap graph, plus pairs.

    Edges exist only between a left and a right interval that overlap —
    the shape of an asymmetric two-atom decoupled conjunction, where two
    same-side facts share a component only through an opposite-side
    witness.  The sweep processes start events in time order and, for
    each, merges the new interval with every component that still has an
    *opposite-side* member alive; merged components collapse into one
    list entry, so each entry is touched at most once after its
    insertion and the whole sweep is ``O(g α(g))`` after sorting.  The
    count accumulates ``len(active opposite facts)`` per start event —
    the exact number of unordered left/right overlapping pairs.

    Returns the components **with at least two members** (a singleton
    has no cross edge, hence no match) as ``(left_indices,
    right_indices)`` pairs ordered by first sweep appearance, and the
    pair count.  (The normalization engine additionally inlines its own
    fast path for tiny groups — see ``_sweep_two_atom`` — so this
    function always runs the one event-sweep implementation.)
    """
    sizes = (len(left), len(right))
    total = sizes[0] + sizes[1]
    # Node ids: left 0..|L|-1, right |L|..total-1.
    events = sorted(
        (
            (item.start, side, index)
            for side, items in enumerate((left, right))
            for index, item in enumerate(items)
        ),
    )
    parent = list(range(total))
    size = [1] * total
    # Per component root: the latest right endpoint per side, -1 when the
    # component has no member on that side (ends are >= 1, starts >= 0).
    # Ends stay exact ints (only ∞ becomes math.inf): float coercion
    # would round TimePoints beyond 2**53 and silently drop overlaps.
    comp_max: list[list[float | int]] = [[-1, -1] for _ in range(total)]
    # Per side: heap of active fact ends, and the list of component
    # entries that may still have an active member on that side.
    active_ends: tuple[list[float | int], list[float | int]] = ([], [])
    active_comps: tuple[list[int], list[int]] = ([], [])
    pairs = 0

    def find(node: int) -> int:
        while parent[node] != node:
            parent[node] = parent[parent[node]]
            node = parent[node]
        return node

    push, pop = heapq.heappush, heapq.heappop
    for start, side, index in events:
        other = 1 - side
        node = index if side == 0 else sizes[0] + index
        item = (left, right)[side][index]
        end = item.end
        end_coord = math.inf if isinstance(end, Infinity) else end
        for ends in active_ends:
            while ends and ends[0] <= start:
                pop(ends)
        pairs += len(active_ends[other])
        comp_max[node][side] = end_coord
        # Merge with every component still alive on the opposite side:
        # each carries an opposite-side fact whose start is past and
        # whose end is ahead, i.e. an overlap witness for the new
        # interval.  All such components collapse into one, which
        # becomes the list's sole entry; entries whose opposite side has
        # expired leave the list for good (their maximum only grows by
        # merging, which re-inserts).  Every component is listed on each
        # side it has members on, so each entry is scanned at most once
        # after its insertion: the sweep is near-linear after sorting.
        root = node
        merged = False
        seen: set[int] = set()
        for entry in active_comps[other]:
            entry_root = find(entry)
            if entry_root in seen or entry_root == root:
                continue
            seen.add(entry_root)
            if comp_max[entry_root][other] <= start:
                continue
            if size[entry_root] < size[root]:
                small, root = entry_root, root
            else:
                small, root = root, entry_root
            parent[small] = root
            size[root] += size[small]
            comp_max[root][0] = max(comp_max[root][0], comp_max[small][0])
            comp_max[root][1] = max(comp_max[root][1], comp_max[small][1])
            merged = True
        active_comps[other][:] = [root] if merged else []
        active_comps[side].append(root)
        push(active_ends[side], end_coord)

    grouped: dict[int, tuple[list[int], list[int]]] = {}
    appearance: list[int] = []
    for _start, side, index in events:
        node = index if side == 0 else sizes[0] + index
        root = find(node)
        entry = grouped.get(root)
        if entry is None:
            entry = grouped[root] = ([], [])
            appearance.append(root)
        entry[side].append(index)
    clusters = tuple(
        (tuple(grouped[root][0]), tuple(grouped[root][1]))
        for root in appearance
        if size[root] > 1
    )
    return clusters, pairs


def refine_breakpoints(intervals: Sequence[Interval]) -> tuple[Interval, ...]:
    """Partition the union of *intervals* into maximal pieces that never
    straddle an endpoint of any input interval.

    This is the common-refinement step used when aligning two concrete
    instances or abstract-instance representations on a shared timeline.
    """
    if not intervals:
        return ()
    points: set[int] = set()
    unbounded = False
    for item in intervals:
        points.add(item.start)
        if isinstance(item.end, Infinity):
            unbounded = True
        else:
            points.add(item.end)
    ordered: list[TimePoint] = sorted(points)
    if unbounded:
        ordered.append(INFINITY)
    pieces: list[Interval] = []
    covered = IntervalSet(intervals)
    for index in range(len(ordered) - 1):
        start = ordered[index]
        end = ordered[index + 1]
        assert isinstance(start, int)
        candidate = Interval(start, end)
        if start in covered:
            pieces.append(candidate)
    return tuple(pieces)


__all__.append("refine_breakpoints")
