"""Finite unions of disjoint intervals over the time domain.

Several constructions in the library manipulate *sets* of time points that
are not single intervals: the set of snapshots at which two abstract
instances differ, the domain where a query answer holds, the complement of
a fact's lifespan.  :class:`IntervalSet` represents such sets canonically —
as a sorted tuple of pairwise disjoint, non-adjacent intervals — so that
equality of interval sets coincides with equality of the point sets they
denote.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.errors import TemporalError
from repro.temporal.interval import Interval
from repro.temporal.timepoint import INFINITY, Infinity, TimePoint

__all__ = ["IntervalSet"]


def _canonicalize(intervals: Iterable[Interval]) -> tuple[Interval, ...]:
    """Sort and merge overlapping/adjacent intervals into canonical form."""
    items = sorted(intervals, key=Interval.sort_key)
    merged: list[Interval] = []
    for item in items:
        if merged and (merged[-1].overlaps(item) or merged[-1].adjacent(item)):
            merged[-1] = merged[-1].union(item)
        else:
            merged.append(item)
    return tuple(merged)


@dataclass(frozen=True)
class IntervalSet:
    """An immutable, canonical union of disjoint non-adjacent intervals."""

    intervals: tuple[Interval, ...]

    def __init__(self, intervals: Iterable[Interval] = ()):
        object.__setattr__(self, "intervals", _canonicalize(intervals))

    # -- constructors -----------------------------------------------------
    @classmethod
    def empty(cls) -> "IntervalSet":
        """The empty set of time points."""
        return cls(())

    @classmethod
    def all_time(cls) -> "IntervalSet":
        """The full time line ``[0, ∞)``."""
        return cls((Interval(0, INFINITY),))

    @classmethod
    def of(cls, *intervals: Interval) -> "IntervalSet":
        """Build from explicitly listed intervals."""
        return cls(intervals)

    @classmethod
    def point(cls, time_point: int) -> "IntervalSet":
        """The singleton set ``{ℓ}`` as ``[ℓ, ℓ+1)``."""
        return cls((Interval(time_point, time_point + 1),))

    # -- predicates --------------------------------------------------------
    @property
    def is_empty(self) -> bool:
        return not self.intervals

    @property
    def is_unbounded(self) -> bool:
        """``True`` iff the set contains arbitrarily late time points."""
        return bool(self.intervals) and self.intervals[-1].is_unbounded

    def __contains__(self, point: object) -> bool:
        return any(point in piece for piece in self.intervals)

    def __bool__(self) -> bool:
        return not self.is_empty

    def __iter__(self) -> Iterator[Interval]:
        return iter(self.intervals)

    def __len__(self) -> int:
        return len(self.intervals)

    def total_duration(self) -> TimePoint:
        """Number of covered time points (``∞`` when unbounded)."""
        if self.is_unbounded:
            return INFINITY
        total = 0
        for piece in self.intervals:
            total += piece.duration()  # type: ignore[operator]
        return total

    # -- set algebra ---------------------------------------------------------
    def union(self, other: "IntervalSet | Interval") -> "IntervalSet":
        other_intervals = (other,) if isinstance(other, Interval) else other.intervals
        return IntervalSet(self.intervals + tuple(other_intervals))

    def intersect(self, other: "IntervalSet | Interval") -> "IntervalSet":
        other_intervals = (other,) if isinstance(other, Interval) else other.intervals
        pieces: list[Interval] = []
        for mine in self.intervals:
            for theirs in other_intervals:
                common = mine.intersect(theirs)
                if common is not None:
                    pieces.append(common)
        return IntervalSet(pieces)

    def difference(self, other: "IntervalSet | Interval") -> "IntervalSet":
        other_intervals = (other,) if isinstance(other, Interval) else other.intervals
        pieces: list[Interval] = list(self.intervals)
        for theirs in other_intervals:
            next_pieces: list[Interval] = []
            for mine in pieces:
                next_pieces.extend(mine.difference(theirs))
            pieces = next_pieces
        return IntervalSet(pieces)

    def complement(self) -> "IntervalSet":
        """Complement with respect to the full time line ``[0, ∞)``."""
        return IntervalSet.all_time().difference(self)

    def symmetric_difference(self, other: "IntervalSet") -> "IntervalSet":
        return self.difference(other).union(other.difference(self))

    # -- queries ---------------------------------------------------------------
    def covers(self, other: "IntervalSet | Interval") -> bool:
        """``True`` iff *other* ⊆ *self*."""
        other_set = IntervalSet((other,)) if isinstance(other, Interval) else other
        return other_set.difference(self).is_empty

    def min_point(self) -> int:
        """Earliest covered time point."""
        if self.is_empty:
            raise TemporalError("empty interval set has no minimum point")
        return self.intervals[0].start

    def max_finite_bound(self) -> int | None:
        """Largest finite endpoint mentioned, or ``None`` for the empty set.

        For ``[2, 5) ∪ [9, ∞)`` this is ``9``; every structural change in
        the set happens before this bound.
        """
        if self.is_empty:
            return None
        bound = self.intervals[0].start
        for piece in self.intervals:
            bound = max(bound, piece.start)
            if not isinstance(piece.end, Infinity):
                bound = max(bound, piece.end)
        return bound

    def breakpoints(self) -> tuple[TimePoint, ...]:
        """All distinct endpoints in ascending order (∞ included if present)."""
        seen: set[TimePoint] = set()
        for piece in self.intervals:
            seen.add(piece.start)
            seen.add(piece.end)
        finite = sorted(p for p in seen if isinstance(p, int))
        if INFINITY in seen:
            return tuple(finite) + (INFINITY,)
        return tuple(finite)

    def points(self, limit: TimePoint | None = None) -> Iterator[int]:
        """Iterate covered time points; unbounded sets require *limit*."""
        for piece in self.intervals:
            yield from piece.points(limit=limit)

    # -- rendering ------------------------------------------------------------
    def __str__(self) -> str:
        if self.is_empty:
            return "{}"
        return " ∪ ".join(str(piece) for piece in self.intervals)

    def __repr__(self) -> str:
        return f"IntervalSet({list(self.intervals)!r})"


def refine_breakpoints(intervals: Sequence[Interval]) -> tuple[Interval, ...]:
    """Partition the union of *intervals* into maximal pieces that never
    straddle an endpoint of any input interval.

    This is the common-refinement step used when aligning two concrete
    instances or abstract-instance representations on a shared timeline.
    """
    if not intervals:
        return ()
    points: set[int] = set()
    unbounded = False
    for item in intervals:
        points.add(item.start)
        if isinstance(item.end, Infinity):
            unbounded = True
        else:
            points.add(item.end)
    ordered: list[TimePoint] = sorted(points)
    if unbounded:
        ordered.append(INFINITY)
    pieces: list[Interval] = []
    covered = IntervalSet(intervals)
    for index in range(len(ordered) - 1):
        start = ordered[index]
        end = ordered[index + 1]
        assert isinstance(start, int)
        candidate = Interval(start, end)
        if start in covered:
            pieces.append(candidate)
    return tuple(pieces)


__all__.append("refine_breakpoints")
