"""The time-point domain of the paper: N0 extended with positive infinity.

The paper (Section 2) fixes the domain of time points to a totally ordered
set isomorphic to the non-negative integers.  Interval endpoints come from
``N0 ∪ {∞}``: a right endpoint of ``∞`` encodes an interval that is open
into the indefinite future, e.g. ``[2014, ∞)``.

We model finite time points as plain ``int`` and infinity as the singleton
:data:`INFINITY`, an instance of :class:`Infinity` that compares strictly
greater than every integer, supports the arithmetic the library needs
(saturating addition/subtraction), hashes, and renders as ``"inf"``.

Plain integers are deliberately kept as the finite representation — every
arithmetic path in the library stays on native ints, and only endpoint
comparisons need to be infinity-aware.
"""

from __future__ import annotations

from typing import Union

from repro.errors import TemporalError

__all__ = [
    "Infinity",
    "INFINITY",
    "TimePoint",
    "is_time_point",
    "check_time_point",
    "time_point_to_str",
    "parse_time_point",
    "min_point",
    "max_point",
]


class Infinity:
    """Positive infinity for the time domain.

    A singleton: ``Infinity() is INFINITY`` always holds, which lets the
    rest of the library compare with ``is`` as well as ``==``.
    """

    _instance: "Infinity | None" = None

    def __new__(cls) -> "Infinity":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    # -- ordering -------------------------------------------------------
    def __lt__(self, other: object) -> bool:
        if isinstance(other, (int, Infinity)):
            return False
        return NotImplemented

    def __le__(self, other: object) -> bool:
        if isinstance(other, Infinity):
            return True
        if isinstance(other, int):
            return False
        return NotImplemented

    def __gt__(self, other: object) -> bool:
        if isinstance(other, Infinity):
            return False
        if isinstance(other, int):
            return True
        return NotImplemented

    def __ge__(self, other: object) -> bool:
        if isinstance(other, (int, Infinity)):
            return True
        return NotImplemented

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Infinity)

    def __ne__(self, other: object) -> bool:
        return not isinstance(other, Infinity)

    def __hash__(self) -> int:
        return hash("repro.temporal.INFINITY")

    # -- arithmetic (saturating) ---------------------------------------
    def __add__(self, other: object) -> "Infinity":
        if isinstance(other, (int, Infinity)):
            return self
        return NotImplemented

    __radd__ = __add__

    def __sub__(self, other: object):
        if isinstance(other, int):
            return self
        if isinstance(other, Infinity):
            raise TemporalError("infinity - infinity is undefined")
        return NotImplemented

    def __rsub__(self, other: object):
        if isinstance(other, int):
            raise TemporalError("finite - infinity is undefined in the time domain")
        return NotImplemented

    # -- misc -----------------------------------------------------------
    def __repr__(self) -> str:
        return "INFINITY"

    def __str__(self) -> str:
        return "inf"

    def __bool__(self) -> bool:
        return True

    def __reduce__(self):
        # Keep the singleton property across pickling.
        return (Infinity, ())


#: The unique positive-infinity time point.
INFINITY = Infinity()

#: A time point is a non-negative integer or :data:`INFINITY`.
TimePoint = Union[int, Infinity]


def is_time_point(value: object) -> bool:
    """Return ``True`` iff *value* is a valid time point (``N0 ∪ {∞}``)."""
    if isinstance(value, Infinity):
        return True
    return isinstance(value, int) and not isinstance(value, bool) and value >= 0


def check_time_point(value: object, role: str = "time point") -> TimePoint:
    """Validate *value* as a time point, raising :class:`TemporalError` otherwise."""
    if not is_time_point(value):
        raise TemporalError(f"invalid {role}: {value!r} (expected n >= 0 or INFINITY)")
    return value  # type: ignore[return-value]


def time_point_to_str(value: TimePoint) -> str:
    """Render a time point; infinity renders as ``"inf"``."""
    return str(value)


def parse_time_point(text: str) -> TimePoint:
    """Parse ``"7"`` to ``7`` and any of ``"inf"/"∞"/"infinity"`` to INFINITY."""
    stripped = text.strip().lower()
    if stripped in {"inf", "infinity", "∞", "oo"}:
        return INFINITY
    try:
        value = int(stripped)
    except ValueError as exc:
        raise TemporalError(f"cannot parse time point from {text!r}") from exc
    return check_time_point(value)


def min_point(first: TimePoint, second: TimePoint) -> TimePoint:
    """Minimum of two time points under the extended order."""
    return first if first <= second else second


def max_point(first: TimePoint, second: TimePoint) -> TimePoint:
    """Maximum of two time points under the extended order."""
    return first if first >= second else second
