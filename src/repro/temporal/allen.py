"""Allen's interval algebra over the paper's half-open intervals.

The thirteen basic relations of Allen (1983) classify how two intervals
relate on the time line.  The library uses them in tests and in the
normalization diagnostics: Example 12 of the paper enumerates the four
*proper overlap* cases that force fragmentation, and those are exactly the
Allen relations ``OVERLAPS``, ``OVERLAPPED_BY``, ``CONTAINS``/``DURING``
plus the endpoint-sharing variants.

Half-open ``[s, e)`` semantics: "meets" corresponds to adjacency
(``e1 == s2``), which shares no time point.
"""

from __future__ import annotations

from enum import Enum

from repro.temporal.interval import Interval

__all__ = ["AllenRelation", "allen_relation", "requires_fragmentation"]


class AllenRelation(Enum):
    """The 13 basic Allen relations, named from the first interval's view."""

    BEFORE = "before"
    MEETS = "meets"
    OVERLAPS = "overlaps"
    STARTS = "starts"
    DURING = "during"
    FINISHES = "finishes"
    EQUALS = "equals"
    FINISHED_BY = "finished-by"
    CONTAINS = "contains"
    STARTED_BY = "started-by"
    OVERLAPPED_BY = "overlapped-by"
    MET_BY = "met-by"
    AFTER = "after"

    @property
    def inverse(self) -> "AllenRelation":
        """The converse relation (how the second interval sees the first)."""
        return _INVERSES[self]

    @property
    def shares_points(self) -> bool:
        """``True`` iff the relation implies a non-empty intersection."""
        return self not in (
            AllenRelation.BEFORE,
            AllenRelation.AFTER,
            AllenRelation.MEETS,
            AllenRelation.MET_BY,
        )


_INVERSES = {
    AllenRelation.BEFORE: AllenRelation.AFTER,
    AllenRelation.AFTER: AllenRelation.BEFORE,
    AllenRelation.MEETS: AllenRelation.MET_BY,
    AllenRelation.MET_BY: AllenRelation.MEETS,
    AllenRelation.OVERLAPS: AllenRelation.OVERLAPPED_BY,
    AllenRelation.OVERLAPPED_BY: AllenRelation.OVERLAPS,
    AllenRelation.STARTS: AllenRelation.STARTED_BY,
    AllenRelation.STARTED_BY: AllenRelation.STARTS,
    AllenRelation.DURING: AllenRelation.CONTAINS,
    AllenRelation.CONTAINS: AllenRelation.DURING,
    AllenRelation.FINISHES: AllenRelation.FINISHED_BY,
    AllenRelation.FINISHED_BY: AllenRelation.FINISHES,
    AllenRelation.EQUALS: AllenRelation.EQUALS,
}


def allen_relation(first: Interval, second: Interval) -> AllenRelation:
    """Classify how *first* relates to *second*.

    Endpoint comparisons treat ``∞ == ∞`` as equal endpoints, matching the
    extensional reading of unbounded intervals as point sets.
    """
    s1, e1 = first.start, first.end
    s2, e2 = second.start, second.end

    if e1 < s2:
        return AllenRelation.BEFORE
    if e1 == s2:
        return AllenRelation.MEETS
    if e2 < s1:
        return AllenRelation.AFTER
    if e2 == s1:
        return AllenRelation.MET_BY

    # Intervals share at least one point from here on.
    if s1 == s2 and e1 == e2:
        return AllenRelation.EQUALS
    if s1 == s2:
        return AllenRelation.STARTS if e1 < e2 else AllenRelation.STARTED_BY
    if e1 == e2:
        return AllenRelation.FINISHES if s1 > s2 else AllenRelation.FINISHED_BY
    if s1 < s2:
        return AllenRelation.CONTAINS if e1 > e2 else AllenRelation.OVERLAPS
    # s1 > s2
    return AllenRelation.DURING if e1 < e2 else AllenRelation.OVERLAPPED_BY


def requires_fragmentation(first: Interval, second: Interval) -> bool:
    """``True`` iff two facts with these stamps violate the empty
    intersection property (Definition 10): they intersect but are unequal.

    These are precisely the overlap configurations of Example 12 that the
    normalization algorithms must resolve by fragmenting.
    """
    rel = allen_relation(first, second)
    return rel.shares_points and rel is not AllenRelation.EQUALS
