"""Half-open time intervals ``[s, e)`` — the temporal attribute domain.

The paper time-stamps every concrete fact with an interval ``[s, e)``
where ``s, e ∈ N0`` and ``e`` may be ``∞`` (Section 2, footnote 1).  An
interval denotes the set of snapshots ``{ℓ | s <= ℓ < e}``; ``[2010, 2014)``
denotes the years 2010..2013 and ``[2014, ∞)`` every year from 2014 on.

:class:`Interval` is immutable and hashable so it can appear inside facts
and interval-annotated nulls.  Besides the set-theoretic operations the
normalization algorithms need (overlap, intersection, splitting at time
points), it offers adjacency (used by coalescing) and containment tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.errors import TemporalError
from repro.temporal.timepoint import (
    INFINITY,
    Infinity,
    TimePoint,
    check_time_point,
    parse_time_point,
)

__all__ = ["Interval", "interval", "span_of"]


@dataclass(frozen=True)
class Interval:
    """A non-empty half-open interval ``[start, end)`` over the time domain.

    Invariants (enforced at construction):

    * ``start`` is a finite non-negative integer,
    * ``end`` is a non-negative integer or :data:`INFINITY`,
    * ``start < end`` (intervals are never empty).
    """

    start: int
    end: TimePoint

    def __hash__(self) -> int:
        # Intervals end up inside every lifted fact and annotated null;
        # cache the hash (0 doubles as the unset sentinel).
        cached = self.__dict__.get("_hash", 0)
        if cached == 0:
            cached = hash((self.start, self.end)) or -2
            object.__setattr__(self, "_hash", cached)
        return cached

    def __post_init__(self) -> None:
        check_time_point(self.start, role="interval start")
        if isinstance(self.start, Infinity):
            raise TemporalError("interval start must be finite")
        check_time_point(self.end, role="interval end")
        if not self.start < self.end:
            raise TemporalError(
                f"empty interval [{self.start}, {self.end}): start must be < end"
            )

    def __getstate__(self):
        # Identity fields only: the cached hash is PYTHONHASHSEED-salted
        # through Infinity's string hash and must never cross a process
        # boundary (a stale one would poison every fact hash derived
        # from it, silently defeating cross-process normalization
        # replay); _str/_sort_key rebuild lazily.
        return (self.start, self.end)

    def __setstate__(self, state) -> None:
        start, end = state
        object.__setattr__(self, "start", start)
        object.__setattr__(self, "end", end)

    @classmethod
    def make(cls, start: int, end: TimePoint) -> "Interval":
        """Trusted constructor: the caller guarantees the invariants
        (finite non-negative ``start``, ``start < end``).  The sweep
        engine fragments facts at cut points already known to lie
        strictly inside the stamp, so re-validating every fragment would
        only re-prove what the cut selection established.
        """
        self = object.__new__(cls)
        object.__setattr__(self, "start", start)
        object.__setattr__(self, "end", end)
        return self

    # -- basic predicates ----------------------------------------------
    @property
    def is_finite(self) -> bool:
        """``True`` iff the right endpoint is finite."""
        return not isinstance(self.end, Infinity)

    @property
    def is_unbounded(self) -> bool:
        """``True`` iff the interval extends to ``∞``."""
        return isinstance(self.end, Infinity)

    def duration(self) -> TimePoint:
        """Number of snapshots covered (``∞`` for unbounded intervals)."""
        if self.is_unbounded:
            return INFINITY
        return self.end - self.start  # type: ignore[operator]

    def __contains__(self, point: object) -> bool:
        """``ℓ in interval`` iff ``start <= ℓ < end``."""
        if isinstance(point, Infinity):
            return False
        if not isinstance(point, int) or isinstance(point, bool):
            return False
        return self.start <= point < self.end

    def contains_interval(self, other: "Interval") -> bool:
        """``True`` iff *other* ⊆ *self* as sets of time points."""
        return self.start <= other.start and other.end <= self.end

    # -- relationships ---------------------------------------------------
    def overlaps(self, other: "Interval") -> bool:
        """``True`` iff the two intervals share at least one time point."""
        return self.start < other.end and other.start < self.end

    def intersect(self, other: "Interval") -> "Interval | None":
        """The common sub-interval, or ``None`` when disjoint."""
        start = max(self.start, other.start)
        end = self.end if self.end <= other.end else other.end
        if start < end:
            return Interval(start, end)
        return None

    def adjacent(self, other: "Interval") -> bool:
        """Adjacency per the paper: ``s' = e`` or ``s = e'``.

        Adjacent intervals do not overlap but their union is an interval;
        coalescing merges value-equivalent facts over adjacent intervals.
        """
        return other.start == self.end or self.start == other.end

    def union(self, other: "Interval") -> "Interval":
        """Union of overlapping or adjacent intervals.

        Raises :class:`TemporalError` when the union is not an interval.
        """
        if not (self.overlaps(other) or self.adjacent(other)):
            raise TemporalError(
                f"union of {self} and {other} is not an interval "
                "(neither overlapping nor adjacent)"
            )
        start = min(self.start, other.start)
        end = self.end if self.end >= other.end else other.end
        return Interval(start, end)

    def difference(self, other: "Interval") -> tuple["Interval", ...]:
        """Set difference *self* − *other* as 0, 1 or 2 intervals."""
        common = self.intersect(other)
        if common is None:
            return (self,)
        pieces: list[Interval] = []
        if self.start < common.start:
            pieces.append(Interval(self.start, common.start))
        if common.end < self.end:
            pieces.append(Interval(common.end, self.end))  # type: ignore[arg-type]
        return tuple(pieces)

    def precedes(self, other: "Interval") -> bool:
        """``True`` iff every point of *self* is before every point of *other*."""
        return self.end <= other.start

    # -- splitting (the workhorse of normalization) ----------------------
    def split_at(self, points: Iterable[TimePoint]) -> tuple["Interval", ...]:
        """Fragment the interval at the given time points.

        Only points strictly inside ``(start, end)`` have an effect; the
        result is the ordered tuple of sub-intervals whose concatenation
        is *self*.  This realizes the fact-fragmentation step of the
        normalization algorithms (paper, Section 4.2): a fact stamped
        ``[5, 11)`` split at ``{7, 8, 10}`` yields stamps
        ``[5,7) [7,8) [8,10) [10,11)``.
        """
        cuts = sorted(
            {p for p in points if isinstance(p, int) and self.start < p < self.end}
        )
        if not cuts:
            return (self,)
        return self.split_at_sorted(cuts)

    def split_at_sorted(self, cuts: Sequence[int]) -> tuple["Interval", ...]:
        """Fragment at *pre-vetted* cut points: trusted fast path.

        The caller guarantees *cuts* is sorted ascending, duplicate-free,
        and every point lies strictly inside ``(start, end)`` — which is
        what the sweep engine's bisected slice of a component's endpoint
        array delivers.  :meth:`split_at` filters and defers here; the
        two produce identical fragments.
        """
        if not cuts:
            return (self,)
        make = Interval.make
        bounds: list[TimePoint] = [self.start, *cuts, self.end]
        return tuple(
            make(bounds[i], bounds[i + 1])  # type: ignore[arg-type]
            for i in range(len(bounds) - 1)
        )

    def endpoints(self) -> tuple[TimePoint, TimePoint]:
        """The pair ``(start, end)``."""
        return (self.start, self.end)

    # -- iteration --------------------------------------------------------
    def points(self, limit: TimePoint | None = None) -> Iterator[int]:
        """Iterate the covered time points.

        For unbounded intervals a finite *limit* (exclusive) is required.
        """
        end = self.end
        if isinstance(end, Infinity):
            if limit is None:
                raise TemporalError(
                    f"cannot enumerate the points of unbounded interval {self} "
                    "without a limit"
                )
            end = limit
        elif limit is not None and limit < end:
            end = limit
        return iter(range(self.start, end))  # type: ignore[arg-type]

    # -- ordering and rendering -------------------------------------------
    def sort_key(self) -> tuple[int, int, TimePoint]:
        """Stable ordering: by start, then bounded-before-unbounded, then end.

        Cached (like the hash): the endpoint sweeps sort every group by
        this key, usually over the same interned interval objects the
        chase already touched.
        """
        cached = self.__dict__.get("_sort_key")
        if cached is None:
            cached = (self.start, 1 if self.is_unbounded else 0, self.end)
            object.__setattr__(self, "_sort_key", cached)
        return cached

    def __str__(self) -> str:
        cached = self.__dict__.get("_str")
        if cached is None:
            cached = f"[{self.start}, {self.end})"
            object.__setattr__(self, "_str", cached)
        return cached

    def __repr__(self) -> str:
        return f"Interval({self.start}, {self.end!r})"

    # -- parsing ------------------------------------------------------------
    @classmethod
    def parse(cls, text: str) -> "Interval":
        """Parse ``"[s, e)"`` (or bare ``"s,e"``) into an interval.

        Accepts ``inf``/``∞`` as the right endpoint.
        """
        body = text.strip()
        if body.startswith("["):
            body = body[1:]
        if body.endswith(")"):
            body = body[:-1]
        parts = body.split(",")
        if len(parts) != 2:
            raise TemporalError(f"cannot parse interval from {text!r}")
        start = parse_time_point(parts[0])
        if isinstance(start, Infinity):
            raise TemporalError("interval start must be finite")
        end = parse_time_point(parts[1])
        return cls(start, end)


def interval(start: int, end: TimePoint | str | None = None) -> Interval:
    """Convenience constructor.

    ``interval(3, 7)`` is ``[3, 7)``; ``interval(3)`` and
    ``interval(3, "inf")`` are ``[3, ∞)``.
    """
    if end is None:
        return Interval(start, INFINITY)
    if isinstance(end, str):
        return Interval(start, parse_time_point(end))
    return Interval(start, end)


def span_of(intervals: Sequence[Interval]) -> Interval | None:
    """Smallest single interval containing every input, ``None`` if empty."""
    if not intervals:
        return None
    start = min(item.start for item in intervals)
    end = intervals[0].end
    for item in intervals[1:]:
        if item.end >= end:
            end = item.end
    return Interval(start, end)
