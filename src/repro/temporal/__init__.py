"""Temporal substrate: time points, intervals, interval sets, coalescing.

This package implements the time domain of the paper (Section 2): time
points are non-negative integers extended with ``∞``, and the temporal
attribute of concrete relations ranges over half-open intervals ``[s, e)``.
"""

from repro.temporal.allen import AllenRelation, allen_relation, requires_fragmentation
from repro.temporal.coalesce import (
    coalesce_intervals,
    coalesce_pairs,
    group_is_coalesced,
    is_coalesced_intervals,
)
from repro.temporal.interval import Interval, interval, span_of
from repro.temporal.interval_set import (
    IntervalSet,
    refine_breakpoints,
    sweep_bipartite_clusters,
    sweep_overlap_clusters,
)
from repro.temporal.timepoint import (
    INFINITY,
    Infinity,
    TimePoint,
    check_time_point,
    is_time_point,
    max_point,
    min_point,
    parse_time_point,
    time_point_to_str,
)

__all__ = [
    "AllenRelation",
    "allen_relation",
    "requires_fragmentation",
    "coalesce_intervals",
    "coalesce_pairs",
    "group_is_coalesced",
    "is_coalesced_intervals",
    "Interval",
    "interval",
    "span_of",
    "IntervalSet",
    "refine_breakpoints",
    "sweep_bipartite_clusters",
    "sweep_overlap_clusters",
    "INFINITY",
    "Infinity",
    "TimePoint",
    "check_time_point",
    "is_time_point",
    "max_point",
    "min_point",
    "parse_time_point",
    "time_point_to_str",
]
