"""Query answering over exchanged temporal data (Section 5)."""

from repro.query.answers import AnswerTuple, ConcreteAnswerSet, TemporalAnswerSet
from repro.query.builder import (
    QueryBuilder,
    nonsequenced_join,
    select,
    sequenced_join,
    val,
)
from repro.query.certain import (
    certain_answers_abstract,
    certain_answers_concrete,
    certain_contained_in_solution,
)
from repro.query.containment import (
    are_equivalent,
    canonical_instance,
    is_contained_in,
    minimize,
    union_contained_in,
)
from repro.query.eval import Engine, QueryLog, check_engine
from repro.query.naive_eval import (
    evaluate_snapshot,
    naive_evaluate_abstract,
    naive_evaluate_concrete,
    naive_evaluate_snapshot,
    verify_evaluation_correspondence,
)
from repro.query.query import ConjunctiveQuery, UnionQuery

__all__ = [
    "AnswerTuple",
    "ConcreteAnswerSet",
    "TemporalAnswerSet",
    "QueryBuilder",
    "select",
    "val",
    "sequenced_join",
    "nonsequenced_join",
    "certain_answers_abstract",
    "certain_answers_concrete",
    "certain_contained_in_solution",
    "are_equivalent",
    "canonical_instance",
    "is_contained_in",
    "minimize",
    "union_contained_in",
    "Engine",
    "QueryLog",
    "check_engine",
    "evaluate_snapshot",
    "naive_evaluate_abstract",
    "naive_evaluate_concrete",
    "naive_evaluate_snapshot",
    "verify_evaluation_correspondence",
    "ConjunctiveQuery",
    "UnionQuery",
]
