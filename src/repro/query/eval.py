"""Indexed evaluation of (unions of) conjunctive queries.

The scan-based procedures of :mod:`repro.query.naive_eval` re-enumerate
full instances on every call: the abstract route materializes a fresh
snapshot per region, and the concrete four-step route copies the whole
solution twice per disjunct (normalization and null-freezing) before a
dict-per-match homomorphism walk.  This module gives query answering the
machinery the chase already has:

* **plan probing** — disjunct bodies compile to the flat written-order
  join plans of :mod:`repro.relational.homomorphism`
  (:func:`_flat_join_plan` / :func:`_iter_flat_join_rows`), so head
  tuples project straight off the matched facts via the plan's
  ``slot_of`` map, with no assignment dicts; shapes the flat join cannot
  handle (constants, repeated variables within an atom) fall back to the
  cardinality-driven index search with the live-dict ``copy=False`` mode;
* **one live swept instance** for abstract evaluation — templates enter
  and leave a single :class:`~repro.relational.instance.Instance` whose
  ``(position, value)`` indexes stay warm across regions, and per-region
  answers are maintained by *counting* matches touched by the region's
  fact delta (the semi-naive anchor decomposition of
  :func:`iter_egd_equations_delta`) instead of re-evaluating from
  scratch;
* **no freezing** on the concrete route — interval-annotated nulls
  already join as themselves (equality is base + annotation), so step 2
  of the paper's procedure only exists to make step 4's "drop rows with
  fresh constants" a type check; the indexed path skips the two full
  instance copies and checks ``isinstance(value, AnnotatedNull)`` at
  head-projection time, and skips normalization entirely for single-atom
  bodies (a one-atom decoupled form matches single facts whose stamp set
  is trivially equal — Algorithm 1 never fragments anything);
* **recorded replay** — :class:`QueryLog` keeps per-disjunct answers in a
  :class:`~repro.chase.incremental.ReplayLedger` keyed by the disjunct
  and signed by the target facts of the disjunct's body relations, plus
  per-disjunct :class:`~repro.concrete.normalization.NormalizationLog`
  fragment plans and the c-chase's cross-run replay state — so repeated
  certain-answer computation against an unchanged (or
  delta-patched-elsewhere) target replays instead of re-running.

Everything here is answer-set equivalent (byte-identical) to the scan
procedures; the property suite in ``tests/property`` sweeps the
equivalence over colliding-endpoint and null-heavy instances.

**Per-region null renaming.**  The abstract sweep needs region-constant
facts, but a template carrying an interval-annotated null projects to a
*different* labeled null at every snapshot (``N@ℓ``).  Two projections
at one snapshot are equal iff their bases coincide, so replacing each
annotated null by the base-keyed placeholder ``N@?`` (the ``@`` keeps it
disjoint from rigid null names, which may not contain ``@``) preserves
the join structure of every snapshot exactly — and naive evaluation
drops null-carrying answer rows either way, so the answer sets are
unchanged while the projected facts become region-stable.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Iterator, Literal
from weakref import WeakKeyDictionary

from repro.abstract_view.abstract_instance import AbstractInstance
from repro.chase.incremental import ReplayLedger
from repro.concrete.concrete_instance import ConcreteInstance
from repro.concrete.normalization import (
    NormalizationLog,
    _lift_atoms,
    interval_of,
    normalize_with_report,
)
from repro.query.answers import (
    AnswerTuple,
    ConcreteAnswerSet,
    TemporalAnswerSet,
)
from repro.query.query import ConjunctiveQuery, UnionQuery
from repro.relational.fact import Fact
from repro.relational.formulas import Atom
from repro.relational.homomorphism import (
    _flat_join_plan,
    _iter_join_rows,
    find_homomorphisms_with_images,
    match_atom_against_fact,
)
from repro.relational.instance import Instance
from repro.relational.terms import (
    AnnotatedNull,
    LabeledNull,
    Variable,
)
from repro.temporal.interval import Interval
from repro.temporal.interval_set import IntervalSet
from repro.temporal.timepoint import INFINITY

__all__ = [
    "Engine",
    "check_engine",
    "QueryLog",
    "evaluate_snapshot_indexed",
    "evaluate_abstract_indexed",
    "evaluate_concrete_indexed",
]

#: ``"indexed"`` is the plan-probing evaluator of this module;
#: ``"scan"`` is the historical reference implementation in
#: :mod:`repro.query.naive_eval`, kept for the equivalence sweeps.
Engine = Literal["indexed", "scan"]

_ENGINES = ("indexed", "scan")


def check_engine(engine: str) -> Engine:
    """Validate an engine name (CLI and API entry points share this)."""
    if engine not in _ENGINES:
        raise ValueError(
            f"unknown query engine {engine!r}; expected one of {_ENGINES}"
        )
    return engine  # type: ignore[return-value]


def _as_union(query: ConjunctiveQuery | UnionQuery) -> UnionQuery:
    if isinstance(query, ConjunctiveQuery):
        return UnionQuery((query,))
    return query


# ---------------------------------------------------------------------------
# Head-row enumeration: flat-plan projection with a generic fallback
# ---------------------------------------------------------------------------


def _iter_head_rows(
    head: tuple[Variable, ...], atoms: tuple[Atom, ...], instance: Instance
) -> Iterator[AnswerTuple]:
    """Every head projection of a match of *atoms*, one per homomorphism.

    All-variable bodies take the flat written-order join and read the
    head values straight off the image facts; other shapes run the
    cardinality-driven backtracking search in live-dict mode.
    """
    plan = _flat_join_plan(atoms)
    if plan is not None:
        slots = tuple(plan.slot_of[var] for var in head)
        for row in _iter_join_rows(plan, instance):
            yield tuple(row[index].args[position] for index, position in slots)
        return
    for assignment, _images in find_homomorphisms_with_images(
        atoms, instance, copy=False
    ):
        yield tuple(assignment[var] for var in head)


def _iter_delta_head_rows(
    head: tuple[Variable, ...],
    atoms: tuple[Atom, ...],
    instance: Instance,
    delta: list[Fact],
) -> Iterator[AnswerTuple]:
    """Head projections of matches touching at least one *delta* fact.

    The semi-naive anchor decomposition of
    :func:`~repro.relational.homomorphism.iter_egd_equations_delta`: atom
    ``i`` is pinned to a delta fact, atoms before ``i`` may not map to
    delta facts, atoms after ``i`` are unrestricted — every qualifying
    match is produced exactly once (at its first delta position).
    """
    delta_set = set(delta)
    for anchor, atom in enumerate(atoms):
        rest = atoms[:anchor] + atoms[anchor + 1 :]
        for item in delta:
            initial = match_atom_against_fact(atom, item)
            if initial is None:
                continue
            if not rest:
                yield tuple(initial[var] for var in head)
                continue
            for assignment, images in find_homomorphisms_with_images(
                rest, instance, initial=initial, copy=False, atom_order="written"
            ):
                if any(image in delta_set for image in images[:anchor]):
                    continue
                yield tuple(assignment[var] for var in head)


def evaluate_snapshot_indexed(
    query: ConjunctiveQuery | UnionQuery, snapshot: Instance
) -> frozenset[AnswerTuple]:
    """Plain evaluation on one snapshot (nulls kept), via the flat plans."""
    results: set[AnswerTuple] = set()
    for disjunct in _as_union(query):
        results.update(
            _iter_head_rows(disjunct.head, disjunct.body.atoms, snapshot)
        )
    return frozenset(results)


# ---------------------------------------------------------------------------
# Abstract route: one live swept instance + counting-based maintenance
# ---------------------------------------------------------------------------


def _evaluation_fact(template) -> Fact:
    """The region-stable projection of a template (see module docstring)."""
    args = template.args
    if not any(isinstance(value, AnnotatedNull) for value in args):
        # Point-independent: `at` caches this projection on the template.
        return template.at(template.interval.start)
    return Fact(
        template.relation,
        tuple(
            LabeledNull(f"{value.base}@?")
            if isinstance(value, AnnotatedNull)
            else value
            for value in args
        ),
    )


def _null_free(row: AnswerTuple) -> bool:
    return not any(
        isinstance(value, (LabeledNull, AnnotatedNull)) for value in row
    )


def evaluate_abstract_indexed(
    query: ConjunctiveQuery | UnionQuery, instance: AbstractInstance
) -> TemporalAnswerSet:
    """``q(Ja)↓`` by incremental counting over the region sweep.

    One :class:`Instance` is maintained across the region partition —
    region-stable template projections enter at their stamp's start and
    leave at its end — and per answer tuple a count of supporting matches
    is maintained from the matches touching each region's fact delta.
    A tuple's support opens when its count leaves zero and closes when it
    returns, so the per-region work is proportional to the *churn*, not
    to the instance, and the warm indexes serve both the join probes and
    the anchored delta enumeration.
    """
    union = _as_union(query)
    disjuncts = tuple(
        (disjunct.head, disjunct.body.atoms) for disjunct in union
    )
    regions = instance.regions()
    if not instance:
        return TemporalAnswerSet({})

    # Template projections sorted by stamp start; ends feed an expiry heap.
    starts = [
        (template.interval.start, template.interval.end, _evaluation_fact(template))
        for template in instance  # sorted by TemplateFact.sort_key
    ]
    starts.sort(key=lambda entry: entry[0])

    live = Instance()
    fact_counts: dict[Fact, int] = {}
    match_counts: dict[AnswerTuple, int] = {}
    open_at: dict[AnswerTuple, int] = {}
    support: dict[AnswerTuple, list[Interval]] = {}
    heap: list[tuple[object, int, Fact]] = []
    sequence = 0
    start_index = 0
    first_region = True

    for region in regions:
        point = region.start
        removed: list[Fact] = []
        while heap and heap[0][0] <= point:
            _end, _seq, item = heapq.heappop(heap)
            fact_counts[item] -= 1
            if fact_counts[item] == 0:
                removed.append(item)
        added: list[Fact] = []
        while start_index < len(starts) and starts[start_index][0] <= point:
            _start, end, item = starts[start_index]
            start_index += 1
            heapq.heappush(heap, (end, sequence, item))
            sequence += 1
            count = fact_counts.get(item, 0)
            fact_counts[item] = count + 1
            if count == 0:
                added.append(item)
        if removed and added:
            # A fact leaving one template's coverage and entering
            # another's at the same boundary nets out.
            both = set(removed) & set(added)
            if both:
                removed = [item for item in removed if item not in both]
                added = [item for item in added if item not in both]

        touched: set[AnswerTuple] = set()
        if first_region:
            first_region = False
            for item in added:
                live.add(item)
            for head, atoms in disjuncts:
                for row in _iter_head_rows(head, atoms, live):
                    if _null_free(row):
                        match_counts[row] = match_counts.get(row, 0) + 1
                        touched.add(row)
        else:
            if removed:
                # Enumerate lost matches against the *pre-delta* live
                # instance (removed facts still present, added not yet).
                for head, atoms in disjuncts:
                    for row in _iter_delta_head_rows(head, atoms, live, removed):
                        if _null_free(row):
                            match_counts[row] -= 1
                            touched.add(row)
                for item in removed:
                    live.discard(item)
            if added:
                for item in added:
                    live.add(item)
                for head, atoms in disjuncts:
                    for row in _iter_delta_head_rows(head, atoms, live, added):
                        if _null_free(row):
                            match_counts[row] = match_counts.get(row, 0) + 1
                            touched.add(row)

        for row in touched:
            alive = match_counts.get(row, 0) > 0
            since = open_at.get(row)
            if alive and since is None:
                open_at[row] = point
            elif not alive and since is not None:
                del open_at[row]
                support.setdefault(row, []).append(Interval(since, point))

    # The last region is the unbounded tail: whatever is still open
    # holds forever.
    for row, since in open_at.items():
        support.setdefault(row, []).append(Interval(since, INFINITY))
    return TemporalAnswerSet(
        {
            row: IntervalSet._from_canonical(pieces)
            for row, pieces in support.items()
        }
    )


# ---------------------------------------------------------------------------
# Concrete route: direct projection off the lifted view, no freezing
# ---------------------------------------------------------------------------


@dataclass
class QueryLog:
    """Recorded query-evaluation state for cross-run replay.

    Three ledgers, mirroring the chase-side replay contracts:

    * ``answers`` — a :class:`ReplayLedger` keyed per concrete disjunct
      (signature: the frozenset of target facts of the disjunct's body
      relations; payload: the disjunct's answer rows) and per abstract
      query (key ``("abstract", query)``, signature: the universal
      solution's templates of the query's body relations, payload: the
      :class:`TemporalAnswerSet`).  A re-evaluation whose relevant facts
      are unchanged — including delta-patched targets where the delta
      missed the query's relations — returns the recorded answers.
    * ``normalization`` — per-disjunct
      :class:`~repro.concrete.normalization.NormalizationLog` fragment
      plans, so an answer-signature miss still replays every unchanged
      normalization group.
    * ``chase`` — the c-chase's cross-run
      :class:`~repro.concrete.cchase.CChaseReplayState`, threaded through
      :func:`~repro.query.certain.certain_answers_concrete` so repeated
      certain-answer calls replay the chase too.

    Pickles like ``NormalizationLog`` (the CLI persists it via
    ``--query-log``, same trust rules as ``--norm-log``: only load files
    this tool wrote).
    """

    answers: ReplayLedger = field(default_factory=ReplayLedger)
    normalization: dict[ConjunctiveQuery, NormalizationLog | None] = field(
        default_factory=dict
    )
    chase: object | None = None

    @property
    def hits(self) -> int:
        return self.answers.hits

    @property
    def misses(self) -> int:
        return self.answers.misses


def _disjunct_signature(
    disjunct: ConjunctiveQuery, solution: ConcreteInstance
) -> frozenset:
    relations = {atom.relation for atom in disjunct.body.atoms}
    return frozenset(
        item
        for relation in relations
        for item in solution.iter_facts_of(relation)
    )


#: Per-target normalization memo: for each live solution, a ledger of
#: fragmented instances keyed by disjunct and signed by the facts of the
#: disjunct's body relations — the same signature-checked replay contract
#: as :class:`QueryLog`, but ambient (re-evaluating any disjunct against
#: an unchanged target reuses the fragmented instance and its warm lifted
#: view, log or no log).  Weak keying means a dropped solution drops its
#: memo; a mutated solution misses the signature and re-normalizes.
_NORMALIZATION_MEMO: "WeakKeyDictionary[ConcreteInstance, ReplayLedger]" = (
    WeakKeyDictionary()
)


def abstract_query_signature(
    query: ConjunctiveQuery | UnionQuery, universal: AbstractInstance
) -> frozenset:
    """The templates an abstract evaluation of *query* can possibly read."""
    relations = {
        atom.relation
        for disjunct in _as_union(query)
        for atom in disjunct.body.atoms
    }
    return frozenset(
        template
        for template in universal.templates
        if template.relation in relations
    )


def _concrete_disjunct_rows(
    disjunct: ConjunctiveQuery,
    solution: ConcreteInstance,
    signature: frozenset,
    log: QueryLog | None,
) -> set[tuple[AnswerTuple, Interval]]:
    """The four-step procedure for one disjunct, indexed.

    Single-atom bodies skip normalization: the decoupled one-atom form
    matches single facts, whose stamp sets are trivially all-equal, so
    Algorithm 1 finds no overlapping Δ sets and fragments nothing — the
    output instance would equal the input.  Multi-atom bodies first
    consult the ambient normalization memo (signature hit: the body
    relations' facts are unchanged since the recorded fragmentation),
    then normalize with an optional recorded fragment-plan replay.
    Step 2 (freezing) is skipped entirely: annotated nulls join as
    themselves already, and step 4's row drop becomes an ``isinstance``
    check at projection time.
    """
    lifted_conjunction = disjunct.lift()
    if len(disjunct.body.atoms) == 1:
        normalized = solution
    else:
        memo = _NORMALIZATION_MEMO.get(solution)
        if memo is None:
            memo = _NORMALIZATION_MEMO[solution] = ReplayLedger()
        normalized = memo.recall(disjunct, signature)
        if normalized is None:
            previous = (
                log.normalization.get(disjunct) if log is not None else None
            )
            normalized, report = normalize_with_report(
                solution,
                [lifted_conjunction],
                previous=previous,
                record=log is not None,
            )
            if log is not None:
                log.normalization[disjunct] = report.log
            memo.record(disjunct, signature, normalized)
    lifted_atoms = _lift_atoms(lifted_conjunction)
    lifted_view = normalized.lifted()
    head = disjunct.head
    rows: set[tuple[AnswerTuple, Interval]] = set()
    plan = _flat_join_plan(lifted_atoms)
    if plan is not None:
        head_slots = tuple(plan.slot_of[var] for var in head)
        t_index, t_position = plan.slot_of[lifted_conjunction.shared_variable]
        for row in _iter_join_rows(plan, lifted_view):
            item = tuple(
                row[index].args[position] for index, position in head_slots
            )
            if any(isinstance(value, AnnotatedNull) for value in item):
                continue
            rows.add((item, row[t_index].args[t_position].value))
        return rows
    tvar = lifted_conjunction.shared_variable
    for assignment, _images in find_homomorphisms_with_images(
        lifted_atoms, lifted_view, copy=False
    ):
        item = tuple(assignment[var] for var in head)
        if any(isinstance(value, AnnotatedNull) for value in item):
            continue
        rows.add((item, interval_of(assignment, tvar)))
    return rows


def evaluate_concrete_indexed(
    query: ConjunctiveQuery | UnionQuery,
    solution: ConcreteInstance,
    log: QueryLog | None = None,
) -> ConcreteAnswerSet:
    """``q+(Jc)↓`` via the indexed per-disjunct procedure.

    With *log*, each disjunct first consults the answers ledger: a hit
    (its body relations' facts unchanged since the recorded run) returns
    the recorded rows; a miss evaluates — replaying unchanged
    normalization fragment plans — and records.
    """
    rows: set[tuple[AnswerTuple, Interval]] = set()
    for disjunct in _as_union(query):
        signature = _disjunct_signature(disjunct, solution)
        if log is not None:
            cached = log.answers.recall(disjunct, signature)
            if cached is not None:
                rows.update(cached)
                continue
        disjunct_rows = _concrete_disjunct_rows(
            disjunct, solution, signature, log
        )
        if log is not None:
            log.answers.record(disjunct, signature, frozenset(disjunct_rows))
        rows.update(disjunct_rows)
    return ConcreteAnswerSet(rows)
