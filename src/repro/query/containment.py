"""Conjunctive-query containment, equivalence and minimization.

The classical Chandra–Merlin homomorphism theorem: ``q1 ⊑ q2`` (every
answer of q1 is an answer of q2, on every instance) iff there is a
homomorphism from q2's *canonical instance* to q1's that maps head to
head.  This is the static-analysis companion to certain answers: two
equivalent queries have the same certain answers over every exchanged
instance, and a minimized body evaluates faster under naive evaluation.

The canonical instance construction freezes variables into labeled
nulls; head variables are frozen into *constants* so that the
homomorphism fixes them — the standard trick.  Minimization deletes one
redundant atom at a time until the body is a core, reusing the same
machinery.
"""

from __future__ import annotations

from repro.query.query import ConjunctiveQuery, UnionQuery
from repro.relational.fact import Fact
from repro.relational.homomorphism import find_homomorphisms
from repro.relational.instance import Instance
from repro.relational.terms import Constant, GroundTerm, LabeledNull, Variable

__all__ = [
    "canonical_instance",
    "is_contained_in",
    "are_equivalent",
    "minimize",
]


def _freezing(query: ConjunctiveQuery) -> dict[Variable, GroundTerm]:
    """Variables → frozen terms: head variables become marked constants
    (the homomorphism must fix them), others become labeled nulls."""
    frozen: dict[Variable, GroundTerm] = {}
    for variable in query.head:
        frozen[variable] = Constant(("frozen-head", variable.name))
    for variable in query.body.variables():
        if variable not in frozen:
            frozen[variable] = LabeledNull(f"frz_{variable.name}")
    return frozen


def canonical_instance(query: ConjunctiveQuery) -> tuple[Instance, tuple[GroundTerm, ...]]:
    """The frozen body of *query* plus the frozen head tuple."""
    frozen = _freezing(query)
    instance = Instance()
    for atom in query.body.atoms:
        args = tuple(
            frozen[arg] if isinstance(arg, Variable) else arg
            for arg in atom.args
        )
        instance.add(Fact(atom.relation, args))
    head = tuple(frozen[variable] for variable in query.head)
    return instance, head


def is_contained_in(first: ConjunctiveQuery, second: ConjunctiveQuery) -> bool:
    """``first ⊑ second`` by the homomorphism theorem.

    Looks for a homomorphism from *second*'s body into *first*'s frozen
    body that maps *second*'s head tuple onto *first*'s frozen head.
    """
    if first.arity != second.arity:
        return False
    frozen_body, frozen_head = canonical_instance(first)
    initial = dict(zip(second.head, frozen_head, strict=True))
    for _assignment in find_homomorphisms(
        second.body, frozen_body, initial=initial
    ):
        return True
    return False


def are_equivalent(first: ConjunctiveQuery, second: ConjunctiveQuery) -> bool:
    """Containment both ways."""
    return is_contained_in(first, second) and is_contained_in(second, first)


def minimize(query: ConjunctiveQuery) -> ConjunctiveQuery:
    """An equivalent query with a minimal body (the query's core).

    Repeatedly drops an atom whose removal leaves an equivalent query;
    the classical result guarantees the fixpoint is unique up to variable
    renaming.  Queries whose body is a single atom are already minimal.
    """
    from repro.relational.formulas import Conjunction

    atoms = list(query.body.atoms)
    changed = True
    while changed and len(atoms) > 1:
        changed = False
        for index in range(len(atoms)):
            reduced_atoms = atoms[:index] + atoms[index + 1 :]
            remaining_vars = {
                var for atom in reduced_atoms for var in atom.variables()
            }
            if any(variable not in remaining_vars for variable in query.head):
                continue  # dropping this atom would unsafely lose a head var
            candidate = ConjunctiveQuery(
                head=query.head,
                body=Conjunction(tuple(reduced_atoms)),
                name=query.name,
            )
            if are_equivalent(query, candidate):
                atoms = reduced_atoms
                changed = True
                break
    return ConjunctiveQuery(
        head=query.head, body=Conjunction(tuple(atoms)), name=query.name
    )


def union_contained_in(first: UnionQuery, second: UnionQuery) -> bool:
    """UCQ containment: every disjunct of *first* is contained in some
    disjunct of *second* (sound and complete for unions of CQs)."""
    return all(
        any(is_contained_in(d1, d2) for d2 in second.disjuncts)
        for d1 in first.disjuncts
    )


__all__.append("union_contained_in")
