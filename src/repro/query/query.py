"""Conjunctive queries and unions thereof over the target schema.

Queries are *non-temporal* (they speak about single snapshots); their
concrete lifting ``q+`` augments every body atom with one shared free
temporal variable ``t`` (Section 5).  The datalog-ish surface syntax::

    q(n, c) :- Emp(n, c, s)

names the output variables in the head; a union of conjunctive queries is
a list of rules sharing a head arity.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator

from repro.errors import FormulaError, ParseError
from repro.relational.formulas import Conjunction, TemporalConjunction
from repro.relational.parser import parse_conjunction
from repro.relational.schema import Schema
from repro.relational.terms import Variable

__all__ = ["ConjunctiveQuery", "UnionQuery"]

_RULE_PATTERN = re.compile(r"^\s*(?P<head>[^:]+?)\s*:-\s*(?P<body>.+)$", re.DOTALL)


@dataclass(frozen=True)
class ConjunctiveQuery:
    """``q(x̄) :- body`` with distinguished (head) variables ``x̄``."""

    head: tuple[Variable, ...]
    body: Conjunction
    name: str = "q"

    def __post_init__(self) -> None:
        body_vars = self.body.variable_set()
        for var in self.head:
            if var not in body_vars:
                raise FormulaError(
                    f"head variable {var} does not occur in the query body "
                    f"(unsafe query)"
                )

    @property
    def arity(self) -> int:
        return len(self.head)

    @property
    def existential_variables(self) -> tuple[Variable, ...]:
        """Body variables not exported through the head."""
        head_vars = frozenset(self.head)
        return tuple(
            var for var in self.body.variables() if var not in head_vars
        )

    def lift(self, temporal_variable: Variable | None = None) -> TemporalConjunction:
        """``q+``: each body atom gains the shared free variable ``t``."""
        return TemporalConjunction.from_conjunction(self.body, temporal_variable)

    def validate_against(self, schema: Schema) -> None:
        self.body.validate_against(schema)

    @classmethod
    def parse(cls, text: str) -> "ConjunctiveQuery":
        """Parse ``"q(n, c) :- Emp(n, c, s)"``."""
        match = _RULE_PATTERN.match(text)
        if match is None:
            raise ParseError("query rule must have the form head :- body", text)
        head_atom = parse_conjunction(match.group("head"))
        if len(head_atom.atoms) != 1:
            raise ParseError("query head must be a single atom", text)
        head = head_atom.atoms[0]
        head_vars: list[Variable] = []
        for arg in head.args:
            if not isinstance(arg, Variable):
                raise ParseError(
                    "query heads list output variables only "
                    f"(got constant {arg})",
                    text,
                )
            head_vars.append(arg)
        body = parse_conjunction(match.group("body"))
        return cls(head=tuple(head_vars), body=body, name=head.relation)

    def __str__(self) -> str:
        rendered = ", ".join(str(var) for var in self.head)
        return f"{self.name}({rendered}) :- {self.body}"


@dataclass(frozen=True)
class UnionQuery:
    """A union of conjunctive queries of equal arity."""

    disjuncts: tuple[ConjunctiveQuery, ...]

    def __post_init__(self) -> None:
        if not self.disjuncts:
            raise FormulaError("a union query needs at least one disjunct")
        arity = self.disjuncts[0].arity
        for disjunct in self.disjuncts[1:]:
            if disjunct.arity != arity:
                raise FormulaError(
                    "all disjuncts of a union query must share one arity: "
                    f"{arity} vs {disjunct.arity}"
                )

    @property
    def arity(self) -> int:
        return self.disjuncts[0].arity

    @property
    def name(self) -> str:
        return self.disjuncts[0].name

    def __iter__(self) -> Iterator[ConjunctiveQuery]:
        return iter(self.disjuncts)

    def __len__(self) -> int:
        return len(self.disjuncts)

    @classmethod
    def of(cls, *queries: ConjunctiveQuery | str) -> "UnionQuery":
        """Build from query objects and/or rule strings."""
        parsed = tuple(
            ConjunctiveQuery.parse(item) if isinstance(item, str) else item
            for item in queries
        )
        return cls(parsed)

    @classmethod
    def parse(cls, text: str) -> "UnionQuery":
        """Parse newline- or semicolon-separated rules into a union."""
        rules = [piece.strip() for piece in re.split(r"[;\n]+", text) if piece.strip()]
        return cls.of(*rules)

    def validate_against(self, schema: Schema) -> None:
        for disjunct in self.disjuncts:
            disjunct.validate_against(schema)

    def __str__(self) -> str:
        return " ∪ ".join(str(disjunct) for disjunct in self.disjuncts)
