"""Naïve evaluation of (unions of) conjunctive queries — Section 5.

Three evaluation modes are provided:

* **snapshot level** — classical evaluation on one relational instance,
  with the naive variant treating labeled nulls as fresh constants and
  dropping tuples that still contain them (``q(db)↓``);
* **abstract level** — evaluate region-wise on an abstract instance,
  producing a :class:`~repro.query.answers.TemporalAnswerSet`
  (``q(Ja)↓`` as a finite object);
* **concrete level** — the paper's four-step procedure ``q+(Jc)↓``:
  normalize the solution w.r.t. the disjunct, replace interval-annotated
  nulls by fresh constants, evaluate with ``t`` ranging over stamps,
  and drop rows mentioning a fresh constant.

Theorem 21 states ``⟦q+(Jc)↓⟧ = q(⟦Jc⟧)↓``;
:func:`verify_evaluation_correspondence` checks it on concrete inputs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.abstract_view.abstract_instance import AbstractInstance
from repro.abstract_view.semantics import semantics
from repro.concrete.concrete_instance import ConcreteInstance
from repro.concrete.normalization import (
    find_temporal_homomorphisms,
    interval_of,
    normalize,
)
from repro.query.answers import (
    AnswerTuple,
    ConcreteAnswerSet,
    TemporalAnswerSet,
)
from repro.query.query import ConjunctiveQuery, UnionQuery
from repro.relational.homomorphism import find_homomorphisms
from repro.relational.instance import Instance
from repro.relational.terms import (
    AnnotatedNull,
    Constant,
    GroundTerm,
    LabeledNull,
)
from repro.temporal.interval_set import IntervalSet

__all__ = [
    "evaluate_snapshot",
    "naive_evaluate_snapshot",
    "naive_evaluate_abstract",
    "naive_evaluate_concrete",
    "verify_evaluation_correspondence",
]


def _as_union(query: ConjunctiveQuery | UnionQuery) -> UnionQuery:
    if isinstance(query, ConjunctiveQuery):
        return UnionQuery((query,))
    return query


# ---------------------------------------------------------------------------
# Snapshot level
# ---------------------------------------------------------------------------


def evaluate_snapshot(
    query: ConjunctiveQuery | UnionQuery, snapshot: Instance
) -> frozenset[AnswerTuple]:
    """Plain evaluation: nulls behave as constants and *are* returned."""
    results: set[AnswerTuple] = set()
    for disjunct in _as_union(query):
        for assignment in find_homomorphisms(disjunct.body, snapshot):
            results.add(tuple(assignment[var] for var in disjunct.head))
    return frozenset(results)


def naive_evaluate_snapshot(
    query: ConjunctiveQuery | UnionQuery, snapshot: Instance
) -> frozenset[AnswerTuple]:
    """``q(db)↓``: evaluate, then drop tuples containing any null."""
    return frozenset(
        item
        for item in evaluate_snapshot(query, snapshot)
        if not any(isinstance(v, (LabeledNull, AnnotatedNull)) for v in item)
    )


# ---------------------------------------------------------------------------
# Abstract level
# ---------------------------------------------------------------------------


def naive_evaluate_abstract(
    query: ConjunctiveQuery | UnionQuery, instance: AbstractInstance
) -> TemporalAnswerSet:
    """``q(Ja)↓`` computed region-wise.

    Inside a region the snapshot is constant up to per-snapshot null
    renaming; since naive evaluation only keeps null-free tuples, the
    answer set at one representative point is the answer set everywhere
    in the region.
    """
    grouped: dict[AnswerTuple, IntervalSet] = {}
    for region in instance.regions():
        snapshot = instance.snapshot(region.start)
        for item in naive_evaluate_snapshot(query, snapshot):
            existing = grouped.get(item, IntervalSet.empty())
            grouped[item] = existing.union(region)
    return TemporalAnswerSet(grouped)


# ---------------------------------------------------------------------------
# Concrete level — the four-step q+(Jc)↓ of Section 5
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _FrozenNull:
    """The payload of a fresh constant standing in for an annotated null.

    Step 2 of the paper's procedure replaces each interval-annotated null
    with a fresh constant ``cn^[s,e)``; wrapping the null in this marker
    type makes step 4's "drop rows with fresh constants" a type check.
    """

    base: str
    annotation_repr: str

    def __str__(self) -> str:
        return f"c⟨{self.base}^{self.annotation_repr}⟩"


def _freeze_nulls(instance: ConcreteInstance) -> ConcreteInstance:
    """Step 2: each annotated null becomes a fresh marker constant."""
    mapping = {
        null: Constant(_FrozenNull(null.base, str(null.annotation)))
        for null in instance.nulls()
    }
    return instance.substitute(mapping)


def _is_frozen(value: GroundTerm) -> bool:
    return isinstance(value, Constant) and isinstance(value.value, _FrozenNull)


def naive_evaluate_concrete(
    query: ConjunctiveQuery | UnionQuery, solution: ConcreteInstance
) -> ConcreteAnswerSet:
    """``q+(Jc)↓``: the union over disjuncts of the four-step procedure."""
    rows: set[tuple[AnswerTuple, object]] = set()
    for disjunct in _as_union(query):
        lifted = disjunct.lift()
        tvar = lifted.shared_variable
        # Step 1: normalize the solution w.r.t. this disjunct's body.
        normalized = normalize(solution, [lifted])
        # Step 2: freeze annotated nulls into fresh constants.
        frozen = _freeze_nulls(normalized)
        # Step 3: evaluate; t maps to a single stamp per match.
        for assignment, _images in find_temporal_homomorphisms(lifted, frozen):
            item = tuple(assignment[var] for var in disjunct.head)
            # Step 4: drop rows that still mention a fresh constant.
            if any(_is_frozen(value) for value in item):
                continue
            rows.add((item, interval_of(assignment, tvar)))
    return ConcreteAnswerSet(rows)  # type: ignore[arg-type]


def verify_evaluation_correspondence(
    query: ConjunctiveQuery | UnionQuery, solution: ConcreteInstance
) -> bool:
    """Theorem 21: ``⟦q+(Jc)↓⟧ = q(⟦Jc⟧)↓`` on this input."""
    concrete = naive_evaluate_concrete(query, solution).to_temporal()
    abstract = naive_evaluate_abstract(query, semantics(solution))
    return concrete == abstract
