"""Naïve evaluation of (unions of) conjunctive queries — Section 5.

Three evaluation modes are provided:

* **snapshot level** — classical evaluation on one relational instance,
  with the naive variant treating labeled nulls as fresh constants and
  dropping tuples that still contain them (``q(db)↓``);
* **abstract level** — evaluate region-wise on an abstract instance,
  producing a :class:`~repro.query.answers.TemporalAnswerSet`
  (``q(Ja)↓`` as a finite object);
* **concrete level** — the paper's four-step procedure ``q+(Jc)↓``:
  normalize the solution w.r.t. the disjunct, replace interval-annotated
  nulls by fresh constants, evaluate with ``t`` ranging over stamps,
  and drop rows mentioning a fresh constant.

Each mode runs on one of two engines.  ``engine="indexed"`` (the
default) is the plan-probing evaluator of :mod:`repro.query.eval`: flat
join plans over the warm ``(position, value)`` indexes, one live swept
instance with counting-based maintenance on the abstract route, and a
freeze-free concrete route with optional :class:`~repro.query.eval.QueryLog`
replay.  ``engine="scan"`` is the historical reference implementation
kept in this module — a literal transcription of the paper's procedures
— which the property suite sweeps against the indexed engine for
byte-identical answers.

Theorem 21 states ``⟦q+(Jc)↓⟧ = q(⟦Jc⟧)↓``;
:func:`verify_evaluation_correspondence` checks it on concrete inputs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.abstract_view.abstract_instance import AbstractInstance
from repro.abstract_view.semantics import semantics
from repro.concrete.concrete_instance import ConcreteInstance
from repro.concrete.normalization import (
    find_temporal_homomorphisms,
    interval_of,
    normalize,
)
from repro.query.answers import (
    AnswerTuple,
    ConcreteAnswerSet,
    TemporalAnswerSet,
)
from repro.query.eval import (
    Engine,
    QueryLog,
    check_engine,
    evaluate_abstract_indexed,
    evaluate_concrete_indexed,
    evaluate_snapshot_indexed,
)
from repro.query.query import ConjunctiveQuery, UnionQuery
from repro.relational.homomorphism import find_homomorphisms
from repro.relational.instance import Instance
from repro.relational.terms import (
    AnnotatedNull,
    Constant,
    GroundTerm,
    LabeledNull,
)
from repro.temporal.interval_set import IntervalSet

__all__ = [
    "evaluate_snapshot",
    "naive_evaluate_snapshot",
    "naive_evaluate_abstract",
    "naive_evaluate_concrete",
    "verify_evaluation_correspondence",
]


def _as_union(query: ConjunctiveQuery | UnionQuery) -> UnionQuery:
    if isinstance(query, ConjunctiveQuery):
        return UnionQuery((query,))
    return query


# ---------------------------------------------------------------------------
# Snapshot level
# ---------------------------------------------------------------------------


def evaluate_snapshot(
    query: ConjunctiveQuery | UnionQuery,
    snapshot: Instance,
    engine: Engine = "indexed",
) -> frozenset[AnswerTuple]:
    """Plain evaluation: nulls behave as constants and *are* returned."""
    if check_engine(engine) == "indexed":
        return evaluate_snapshot_indexed(query, snapshot)
    results: set[AnswerTuple] = set()
    for disjunct in _as_union(query):
        for assignment in find_homomorphisms(disjunct.body, snapshot):
            results.add(tuple(assignment[var] for var in disjunct.head))
    return frozenset(results)


def naive_evaluate_snapshot(
    query: ConjunctiveQuery | UnionQuery,
    snapshot: Instance,
    engine: Engine = "indexed",
) -> frozenset[AnswerTuple]:
    """``q(db)↓``: evaluate, then drop tuples containing any null."""
    return frozenset(
        item
        for item in evaluate_snapshot(query, snapshot, engine=engine)
        if not any(isinstance(v, (LabeledNull, AnnotatedNull)) for v in item)
    )


# ---------------------------------------------------------------------------
# Abstract level
# ---------------------------------------------------------------------------


def naive_evaluate_abstract(
    query: ConjunctiveQuery | UnionQuery,
    instance: AbstractInstance,
    engine: Engine = "indexed",
) -> TemporalAnswerSet:
    """``q(Ja)↓`` computed region-wise.

    Inside a region the snapshot is constant up to per-snapshot null
    renaming; since naive evaluation only keeps null-free tuples, the
    answer set at one representative point is the answer set everywhere
    in the region.  The indexed engine maintains one live instance and
    per-answer match counts across the region sweep; the scan engine
    re-evaluates a fresh snapshot per region.
    """
    if check_engine(engine) == "indexed":
        return evaluate_abstract_indexed(query, instance)
    grouped: dict[AnswerTuple, IntervalSet] = {}
    for region in instance.regions():
        snapshot = instance.snapshot(region.start)
        for item in naive_evaluate_snapshot(query, snapshot, engine="scan"):
            existing = grouped.get(item, IntervalSet.empty())
            grouped[item] = existing.union(region)
    return TemporalAnswerSet(grouped)


# ---------------------------------------------------------------------------
# Concrete level — the four-step q+(Jc)↓ of Section 5
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _FrozenNull:
    """The payload of a fresh constant standing in for an annotated null.

    Step 2 of the paper's procedure replaces each interval-annotated null
    with a fresh constant ``cn^[s,e)``; wrapping the null in this marker
    type makes step 4's "drop rows with fresh constants" a type check.
    """

    base: str
    annotation_repr: str

    def __str__(self) -> str:
        return f"c⟨{self.base}^{self.annotation_repr}⟩"


def _freeze_nulls(instance: ConcreteInstance) -> ConcreteInstance:
    """Step 2: each annotated null becomes a fresh marker constant."""
    mapping = {
        null: Constant(_FrozenNull(null.base, str(null.annotation)))
        for null in instance.nulls()
    }
    return instance.substitute(mapping)


def _is_frozen(value: GroundTerm) -> bool:
    return isinstance(value, Constant) and isinstance(value.value, _FrozenNull)


def naive_evaluate_concrete(
    query: ConjunctiveQuery | UnionQuery,
    solution: ConcreteInstance,
    engine: Engine = "indexed",
    log: QueryLog | None = None,
) -> ConcreteAnswerSet:
    """``q+(Jc)↓``: the union over disjuncts of the four-step procedure.

    The indexed engine skips the freeze copy (annotated nulls already
    join as themselves; step 4 becomes a type check at projection time)
    and accepts a :class:`QueryLog` for recorded replay.  The scan
    engine is the literal four-step transcription and does not support
    a log.
    """
    if check_engine(engine) == "indexed":
        return evaluate_concrete_indexed(query, solution, log=log)
    if log is not None:
        raise ValueError(
            "engine='scan' does not support a QueryLog; "
            "use engine='indexed' for recorded replay"
        )
    rows: set[tuple[AnswerTuple, object]] = set()
    for disjunct in _as_union(query):
        lifted = disjunct.lift()
        tvar = lifted.shared_variable
        # Step 1: normalize the solution w.r.t. this disjunct's body.
        normalized = normalize(solution, [lifted])
        # Step 2: freeze annotated nulls into fresh constants.
        frozen = _freeze_nulls(normalized)
        # Step 3: evaluate; t maps to a single stamp per match.
        for assignment, _images in find_temporal_homomorphisms(lifted, frozen):
            item = tuple(assignment[var] for var in disjunct.head)
            # Step 4: drop rows that still mention a fresh constant.
            if any(_is_frozen(value) for value in item):
                continue
            rows.add((item, interval_of(assignment, tvar)))
    return ConcreteAnswerSet(rows)  # type: ignore[arg-type]


def verify_evaluation_correspondence(
    query: ConjunctiveQuery | UnionQuery,
    solution: ConcreteInstance,
    engine: Engine = "indexed",
) -> bool:
    """Theorem 21: ``⟦q+(Jc)↓⟧ = q(⟦Jc⟧)↓`` on this input."""
    concrete = naive_evaluate_concrete(query, solution, engine=engine)
    abstract = naive_evaluate_abstract(
        query, semantics(solution), engine=engine
    )
    return concrete.to_temporal() == abstract
