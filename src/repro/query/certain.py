"""Certain answers in temporal data exchange (Section 5).

``certain(q, Ia, M)`` is, snapshot by snapshot, the intersection of
``q(db')`` over every solution ``db'`` — and by the classical result
(Fagin et al., inherited through Proposition 4), it equals the naive
evaluation of ``q`` on any universal solution.  Corollary 22 transfers
this to the concrete view: ``certain(q, ⟦Ic⟧, M) = ⟦q+(Jc)↓⟧`` where
``Jc`` is the c-chase result.

Both routes are implemented, plus a falsification helper used by tests:
certain answers must be contained in the (plain) answers of every witness
solution.

Both routes accept the shared ``engine`` switch and, on the indexed
engine, a :class:`~repro.query.eval.QueryLog`.  The log threads replay
through the whole pipeline: the concrete route passes the recorded
:class:`~repro.concrete.cchase.CChaseReplayState` into ``c_chase`` and
stores the new state back, and both routes keep per-query answers in the
log's ledger so a repeat call against an unchanged source replays
instead of re-running.
"""

from __future__ import annotations


from repro.abstract_view.abstract_chase import abstract_chase
from repro.abstract_view.abstract_instance import AbstractInstance
from repro.concrete.cchase import c_chase
from repro.concrete.concrete_instance import ConcreteInstance
from repro.dependencies.mapping import DataExchangeSetting
from repro.query.answers import TemporalAnswerSet
from repro.query.eval import (
    Engine,
    QueryLog,
    abstract_query_signature,
    check_engine,
)
from repro.query.naive_eval import (
    evaluate_snapshot,
    naive_evaluate_abstract,
    naive_evaluate_concrete,
)
from repro.query.query import ConjunctiveQuery, UnionQuery
from repro.relational.terms import LabeledNull, AnnotatedNull
from repro.temporal.interval_set import IntervalSet

__all__ = [
    "certain_answers_abstract",
    "certain_answers_concrete",
    "certain_contained_in_solution",
]


def _check_log(engine: Engine, log: QueryLog | None) -> None:
    if log is not None and check_engine(engine) == "scan":
        raise ValueError(
            "engine='scan' does not support a QueryLog; "
            "use engine='indexed' for recorded replay"
        )


def certain_answers_abstract(
    query: ConjunctiveQuery | UnionQuery,
    source: AbstractInstance,
    setting: DataExchangeSetting,
    engine: Engine = "indexed",
    log: QueryLog | None = None,
) -> TemporalAnswerSet:
    """``certain(q, Ia, M)`` via the abstract chase's universal solution.

    Raises :class:`~repro.errors.ChaseFailureError` when no solution
    exists (certain answers are then vacuously everything; following the
    data exchange literature we surface the failure instead).

    With *log*, the computed answer set is kept in the log's ledger
    keyed by the query and signed by the universal solution's templates
    of the query's body relations, so a repeat call whose relevant
    templates are unchanged replays the recorded answers.  (The abstract
    chase keeps no cross-run state of its own — its incremental engine
    works region-to-region within one run.)
    """
    _check_log(engine, log)
    result = abstract_chase(source, setting)
    universal = result.unwrap()
    if log is not None:
        signature = abstract_query_signature(query, universal)
        key = ("abstract", query)
        cached = log.answers.recall(key, signature)
        if cached is not None:
            return cached  # type: ignore[return-value]
        answers = naive_evaluate_abstract(query, universal, engine=engine)
        log.answers.record(key, signature, answers)
        return answers
    return naive_evaluate_abstract(query, universal, engine=engine)


def certain_answers_concrete(
    query: ConjunctiveQuery | UnionQuery,
    source: ConcreteInstance,
    setting: DataExchangeSetting,
    engine: Engine = "indexed",
    log: QueryLog | None = None,
) -> TemporalAnswerSet:
    """``certain(q, ⟦Ic⟧, M)`` computed wholly on the concrete side.

    Runs the c-chase and naive-evaluates ``q+`` on the concrete solution
    (Corollary 22).  Agreement with :func:`certain_answers_abstract` is a
    theorem — and a test in this repository.

    With *log*, the chase replays its recorded
    :class:`~repro.concrete.cchase.CChaseReplayState` (normalization
    group/fragment plans) and stores the new state back on the log, and
    evaluation replays per-disjunct answers against the chased target —
    so a repeat call on an unchanged source does no join work at all.
    """
    _check_log(engine, log)
    if log is not None:
        result = c_chase(
            source,
            setting,
            incremental=log.chase if log.chase is not None else True,
        )
        log.chase = result.replay_state
    else:
        result = c_chase(source, setting)
    solution = result.unwrap()
    return naive_evaluate_concrete(
        query, solution, engine=engine, log=log
    ).to_temporal()


def certain_contained_in_solution(
    certain: TemporalAnswerSet,
    query: ConjunctiveQuery | UnionQuery,
    solution: AbstractInstance,
    engine: Engine = "indexed",
) -> bool:
    """Soundness probe: certain answers must hold in *solution* too.

    Evaluates ``q`` naively (null-carrying rows dropped) region-wise on
    the witness solution and checks pointwise containment of the certain
    answers.  Used by tests to falsify the certain-answer computation
    against hand-built alternative solutions.
    """
    if check_engine(engine) == "indexed":
        # Identical to the scan loop below: naive abstract evaluation is
        # exactly region-wise plain evaluation with null rows dropped.
        return certain.is_subset_of(naive_evaluate_abstract(query, solution))
    witness: dict = {}
    for region in solution.regions():
        snapshot = solution.snapshot(region.start)
        for item in evaluate_snapshot(query, snapshot, engine="scan"):
            if any(isinstance(v, (LabeledNull, AnnotatedNull)) for v in item):
                continue
            existing = witness.get(item, IntervalSet.empty())
            witness[item] = existing.union(region)
    return certain.is_subset_of(TemporalAnswerSet(witness))
