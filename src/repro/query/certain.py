"""Certain answers in temporal data exchange (Section 5).

``certain(q, Ia, M)`` is, snapshot by snapshot, the intersection of
``q(db')`` over every solution ``db'`` — and by the classical result
(Fagin et al., inherited through Proposition 4), it equals the naive
evaluation of ``q`` on any universal solution.  Corollary 22 transfers
this to the concrete view: ``certain(q, ⟦Ic⟧, M) = ⟦q+(Jc)↓⟧`` where
``Jc`` is the c-chase result.

Both routes are implemented, plus a falsification helper used by tests:
certain answers must be contained in the (plain) answers of every witness
solution.
"""

from __future__ import annotations


from repro.abstract_view.abstract_chase import abstract_chase
from repro.abstract_view.abstract_instance import AbstractInstance
from repro.concrete.cchase import c_chase
from repro.concrete.concrete_instance import ConcreteInstance
from repro.dependencies.mapping import DataExchangeSetting
from repro.query.answers import TemporalAnswerSet
from repro.query.naive_eval import (
    evaluate_snapshot,
    naive_evaluate_abstract,
    naive_evaluate_concrete,
)
from repro.query.query import ConjunctiveQuery, UnionQuery
from repro.relational.terms import LabeledNull, AnnotatedNull
from repro.temporal.interval_set import IntervalSet

__all__ = [
    "certain_answers_abstract",
    "certain_answers_concrete",
    "certain_contained_in_solution",
]


def certain_answers_abstract(
    query: ConjunctiveQuery | UnionQuery,
    source: AbstractInstance,
    setting: DataExchangeSetting,
) -> TemporalAnswerSet:
    """``certain(q, Ia, M)`` via the abstract chase's universal solution.

    Raises :class:`~repro.errors.ChaseFailureError` when no solution
    exists (certain answers are then vacuously everything; following the
    data exchange literature we surface the failure instead).
    """
    result = abstract_chase(source, setting)
    universal = result.unwrap()
    return naive_evaluate_abstract(query, universal)


def certain_answers_concrete(
    query: ConjunctiveQuery | UnionQuery,
    source: ConcreteInstance,
    setting: DataExchangeSetting,
) -> TemporalAnswerSet:
    """``certain(q, ⟦Ic⟧, M)`` computed wholly on the concrete side.

    Runs the c-chase and naive-evaluates ``q+`` on the concrete solution
    (Corollary 22).  Agreement with :func:`certain_answers_abstract` is a
    theorem — and a test in this repository.
    """
    result = c_chase(source, setting)
    solution = result.unwrap()
    return naive_evaluate_concrete(query, solution).to_temporal()


def certain_contained_in_solution(
    certain: TemporalAnswerSet,
    query: ConjunctiveQuery | UnionQuery,
    solution: AbstractInstance,
) -> bool:
    """Soundness probe: certain answers must hold in *solution* too.

    Evaluates ``q`` (plain, nulls allowed) region-wise on the witness
    solution and checks pointwise containment of the certain answers.
    Used by tests to falsify the certain-answer computation against
    hand-built alternative solutions.
    """
    witness: dict = {}
    for region in solution.regions():
        snapshot = solution.snapshot(region.start)
        for item in evaluate_snapshot(query, snapshot):
            if any(isinstance(v, (LabeledNull, AnnotatedNull)) for v in item):
                continue
            existing = witness.get(item, IntervalSet.empty())
            witness[item] = existing.union(region)
    return certain.is_subset_of(TemporalAnswerSet(witness))
