"""A compositional builder for temporal queries.

Programs rarely want to splice datalog strings together; this module
grows :class:`~repro.query.query.ConjunctiveQuery` /
:class:`~repro.query.query.UnionQuery` objects from small combinators::

    query = (
        select("n", "s")
        .where("Emp", "n", "c", "s")
        .join("Dept", "c", "m")
        .build()
    )

``select`` names the output columns, ``where`` adds a body atom, ``join``
adds a body atom that must share at least one variable with the body so
far (a genuine join condition), and ``project`` re-selects the output
columns.  Plain strings are variables; wrap data values in :func:`val`
(or pass any non-string Python value directly).  ``build`` compiles to a
:class:`ConjunctiveQuery` — the same object the parser produces, so the
whole evaluation stack (naive evaluation, certain answers, both engines,
:class:`~repro.query.eval.QueryLog` replay) applies unchanged; ``|``
unions builders/queries into a :class:`UnionQuery`.

Two temporal-join combinators follow TSQL2's taxonomy ("Language-
Integrated Query for Temporal Data" carries the same pair):

* :func:`sequenced_join` — *snapshot-wise* join: the result holds at
  time ℓ iff both operands hold at ℓ.  It composes at the **query**
  level: body concatenation with the operands' non-exported variables
  renamed apart, so the compiled query evaluates under the one shared
  temporal variable of ``q+`` and every engine and replay path applies.
* :func:`nonsequenced_join` — timestamps are treated as plain data: rows
  pair up on the shared output columns regardless of *when* each side
  holds.  That is not expressible as a single snapshot query, so it
  composes at the **answer** level and returns plain (non-temporal)
  rows.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import FormulaError
from repro.query.answers import AnswerTuple, TemporalAnswerSet
from repro.query.query import ConjunctiveQuery, UnionQuery
from repro.relational.formulas import Atom, Conjunction
from repro.relational.terms import Constant, Term, Variable

__all__ = [
    "QueryBuilder",
    "select",
    "val",
    "sequenced_join",
    "nonsequenced_join",
]


def val(value: object) -> Constant:
    """A data value as a query term (``"IBM"`` the string, not a variable)."""
    return Constant(value)


def _as_term(arg: object) -> Term:
    if isinstance(arg, (Variable, Constant)):
        return arg
    if isinstance(arg, str):
        return Variable(arg)
    return Constant(arg)


@dataclass(frozen=True)
class QueryBuilder:
    """An immutable, growable query: every method returns a new builder."""

    head_names: tuple[Variable, ...]
    atoms: tuple[Atom, ...] = ()
    name: str = "q"

    # -- growing the body --------------------------------------------------
    def where(self, relation: str, *args: object) -> "QueryBuilder":
        """Add the body atom ``relation(*args)``."""
        atom = Atom(relation, tuple(_as_term(arg) for arg in args))
        return QueryBuilder(self.head_names, self.atoms + (atom,), self.name)

    def join(self, relation: str, *args: object) -> "QueryBuilder":
        """Like :meth:`where`, but the new atom must share a variable with
        the body so far — catching accidental cross products at build
        time."""
        if not self.atoms:
            raise FormulaError(
                "join() needs an existing body to join against; "
                "start with where()"
            )
        atom = Atom(relation, tuple(_as_term(arg) for arg in args))
        existing = frozenset(
            var for item in self.atoms for var in item.variables()
        )
        if not (atom.variable_set() & existing):
            raise FormulaError(
                f"join atom {atom} shares no variable with the body; "
                "use where() if a cross product is intended"
            )
        return QueryBuilder(self.head_names, self.atoms + (atom,), self.name)

    # -- shaping the head --------------------------------------------------
    def project(self, *names: object) -> "QueryBuilder":
        """Re-select the output columns."""
        head = tuple(
            arg if isinstance(arg, Variable) else Variable(str(arg))
            for arg in names
        )
        return QueryBuilder(head, self.atoms, self.name)

    def named(self, name: str) -> "QueryBuilder":
        """Set the compiled query's head relation name."""
        return QueryBuilder(self.head_names, self.atoms, name)

    # -- compiling ---------------------------------------------------------
    def build(self) -> ConjunctiveQuery:
        """Compile to a :class:`ConjunctiveQuery` (head safety checked)."""
        if not self.atoms:
            raise FormulaError("a query needs at least one body atom")
        return ConjunctiveQuery(
            head=self.head_names,
            body=Conjunction(self.atoms),
            name=self.name,
        )

    def union(
        self, *others: "QueryBuilder | ConjunctiveQuery"
    ) -> UnionQuery:
        """Compile this builder and *others* into a :class:`UnionQuery`."""
        disjuncts = [self.build()]
        for other in others:
            disjuncts.append(
                other.build() if isinstance(other, QueryBuilder) else other
            )
        return UnionQuery(tuple(disjuncts))

    def __or__(
        self, other: "QueryBuilder | ConjunctiveQuery"
    ) -> UnionQuery:
        return self.union(other)

    def __str__(self) -> str:
        rendered = ", ".join(str(var) for var in self.head_names)
        body = " ∧ ".join(str(atom) for atom in self.atoms) or "⊤"
        return f"{self.name}({rendered}) :- {body}"


def select(*names: object) -> QueryBuilder:
    """Start a query by naming its output columns."""
    head = tuple(
        arg if isinstance(arg, Variable) else Variable(str(arg))
        for arg in names
    )
    return QueryBuilder(head)


# ---------------------------------------------------------------------------
# Temporal-join combinators
# ---------------------------------------------------------------------------


def _freshen(
    query: ConjunctiveQuery, taken: frozenset[Variable]
) -> ConjunctiveQuery:
    """Rename *query*'s non-exported variables apart from *taken*."""
    exported = frozenset(query.head)
    rename: dict[Variable, Variable] = {}
    for var in query.body.variables():
        if var in exported or var not in taken:
            continue
        candidate = var
        suffix = 1
        while candidate in taken or candidate in rename.values():
            candidate = Variable(f"{var.name}_{suffix}")
            suffix += 1
        rename[var] = candidate
    if not rename:
        return query
    atoms = tuple(
        Atom(
            atom.relation,
            tuple(
                rename.get(arg, arg) if isinstance(arg, Variable) else arg
                for arg in atom.args
            ),
        )
        for atom in query.body.atoms
    )
    return ConjunctiveQuery(
        head=query.head, body=Conjunction(atoms), name=query.name
    )


def sequenced_join(
    left: ConjunctiveQuery | QueryBuilder,
    right: ConjunctiveQuery | QueryBuilder,
    name: str | None = None,
) -> ConjunctiveQuery:
    """The snapshot-wise (sequenced) join of two conjunctive queries.

    Shared **head** variables are the join columns; each side's
    non-exported variables are renamed apart so they cannot capture.
    The result's head is the left head followed by the right head's new
    columns, and its body is the concatenation — one query, evaluated
    under the single shared temporal variable of ``q+``, so the answer
    holds at exactly the snapshots where both operands hold (answer-level
    ``intersect`` of the supports, per joined row).
    """
    if isinstance(left, QueryBuilder):
        left = left.build()
    if isinstance(right, QueryBuilder):
        right = right.build()
    taken = frozenset(left.body.variables()) | frozenset(left.head)
    right = _freshen(right, taken)
    head = left.head + tuple(
        var for var in right.head if var not in frozenset(left.head)
    )
    return ConjunctiveQuery(
        head=head,
        body=Conjunction(left.body.atoms + right.body.atoms),
        name=name if name is not None else left.name,
    )


def nonsequenced_join(
    left: ConjunctiveQuery | QueryBuilder,
    right: ConjunctiveQuery | QueryBuilder,
    left_answers: TemporalAnswerSet,
    right_answers: TemporalAnswerSet,
) -> frozenset[AnswerTuple]:
    """The nonsequenced join: timestamps are data, not synchronization.

    Rows pair up on the queries' shared head variables whenever each side
    holds *somewhere* on the timeline — the two sides need not overlap —
    so the result carries no timestamps (TSQL2's nonsequenced semantics).
    Output columns are the left head followed by the right head's new
    columns, matching :func:`sequenced_join`.
    """
    if isinstance(left, QueryBuilder):
        left = left.build()
    if isinstance(right, QueryBuilder):
        right = right.build()
    left_positions = {var: index for index, var in enumerate(left.head)}
    shared = [
        (left_positions[var], index)
        for index, var in enumerate(right.head)
        if var in left_positions
    ]
    extra = tuple(
        index
        for index, var in enumerate(right.head)
        if var not in left_positions
    )
    by_key: dict[tuple, list[AnswerTuple]] = {}
    for row, _support in right_answers:
        key = tuple(row[right_index] for _left_index, right_index in shared)
        by_key.setdefault(key, []).append(row)
    joined: set[AnswerTuple] = set()
    for row, _support in left_answers:
        key = tuple(row[left_index] for left_index, _right_index in shared)
        for partner in by_key.get(key, ()):
            joined.add(row + tuple(partner[index] for index in extra))
    return frozenset(joined)
