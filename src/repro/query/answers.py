"""Answer containers for temporal query evaluation.

Query answers on a temporal database are themselves temporal: an answer
tuple holds over a *set* of time points.  Two containers are provided:

* :class:`ConcreteAnswerSet` — the raw output of concrete naïve
  evaluation, ``(tuple, interval)`` pairs (Section 5's ``q+(Jc)↓``);
* :class:`TemporalAnswerSet` — the canonical form: each tuple mapped to
  the coalesced :class:`~repro.temporal.interval_set.IntervalSet` at
  which it holds.  Equality of canonical forms coincides with equality
  of the per-snapshot answer sequences, which is what Theorem 21 equates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping

from repro.relational.terms import GroundTerm, term_sort_key
from repro.temporal.interval import Interval
from repro.temporal.interval_set import IntervalSet

__all__ = ["AnswerTuple", "ConcreteAnswerSet", "TemporalAnswerSet"]

#: An answer tuple is a tuple of constants (naive evaluation drops nulls).
AnswerTuple = tuple[GroundTerm, ...]


def _tuple_key(item: AnswerTuple) -> tuple:
    return tuple(term_sort_key(value) for value in item)


@dataclass(frozen=True)
class ConcreteAnswerSet:
    """Interval-stamped answers: the literal output of ``q+(Jc)↓``."""

    rows: frozenset[tuple[AnswerTuple, Interval]]

    def __init__(self, rows: Iterable[tuple[AnswerTuple, Interval]] = ()):
        object.__setattr__(self, "rows", frozenset(rows))

    def __iter__(self) -> Iterator[tuple[AnswerTuple, Interval]]:
        return iter(
            sorted(self.rows, key=lambda row: (_tuple_key(row[0]), row[1].sort_key()))
        )

    def __len__(self) -> int:
        return len(self.rows)

    def __bool__(self) -> bool:
        return bool(self.rows)

    def tuples(self) -> frozenset[AnswerTuple]:
        return frozenset(item for item, _stamp in self.rows)

    def to_temporal(self) -> "TemporalAnswerSet":
        """Canonicalize: group by tuple, coalesce the stamps.

        One sort-and-sweep per tuple builds the canonical interval set
        directly (merging overlap and adjacency on raw endpoints), so no
        per-pair ``Interval.union`` objects are allocated; runs that stay
        a single stamp reuse the stamp object itself.
        """
        grouped: dict[AnswerTuple, list[Interval]] = {}
        for item, stamp in self.rows:
            grouped.setdefault(item, []).append(stamp)
        answers: dict[AnswerTuple, IntervalSet] = {}
        for item, stamps in grouped.items():
            if len(stamps) > 1:
                stamps.sort(key=Interval.sort_key)
            pieces: list[Interval] = []
            current: Interval | None = stamps[0]
            start, end = stamps[0].start, stamps[0].end
            for stamp in stamps[1:]:
                if stamp.start <= end:
                    if stamp.end > end:
                        end = stamp.end
                        current = None  # extended: the original object is stale
                else:
                    pieces.append(
                        current if current is not None else Interval(start, end)
                    )
                    current = stamp
                    start, end = stamp.start, stamp.end
            pieces.append(current if current is not None else Interval(start, end))
            answers[item] = IntervalSet._from_canonical(pieces)
        return TemporalAnswerSet(answers)

    def __str__(self) -> str:
        rendered = ", ".join(
            "(" + ", ".join(str(v) for v in item) + f") @ {stamp}"
            for item, stamp in self
        )
        return "{" + rendered + "}"


@dataclass(frozen=True)
class TemporalAnswerSet:
    """Canonical temporal answers: tuple → set of time points.

    This finitely represents the per-snapshot answer sequence
    ``⟨q(db0)↓, q(db1)↓, …⟩``; :meth:`at` recovers any single snapshot's
    answer set.
    """

    answers: Mapping[AnswerTuple, IntervalSet]

    def __init__(self, answers: Mapping[AnswerTuple, IntervalSet] | None = None):
        cleaned = {
            item: stamps
            for item, stamps in (answers or {}).items()
            if not stamps.is_empty
        }
        object.__setattr__(self, "answers", cleaned)

    # -- snapshot access ------------------------------------------------------
    def at(self, point: int) -> frozenset[AnswerTuple]:
        """The answer set of the snapshot at time ℓ."""
        return frozenset(
            item for item, stamps in self.answers.items() if point in stamps
        )

    def support(self, item: AnswerTuple) -> IntervalSet:
        """When *item* is an answer (empty set when never)."""
        return self.answers.get(item, IntervalSet.empty())

    # -- set-like behaviour ------------------------------------------------------
    def __iter__(self) -> Iterator[tuple[AnswerTuple, IntervalSet]]:
        return iter(sorted(self.answers.items(), key=lambda kv: _tuple_key(kv[0])))

    def __len__(self) -> int:
        return len(self.answers)

    def __bool__(self) -> bool:
        return bool(self.answers)

    def __contains__(self, item: object) -> bool:
        return item in self.answers

    def union(self, other: "TemporalAnswerSet") -> "TemporalAnswerSet":
        merged: dict[AnswerTuple, IntervalSet] = dict(self.answers)
        for item, stamps in other.answers.items():
            existing = merged.get(item)
            merged[item] = stamps if existing is None else existing.union(stamps)
        return TemporalAnswerSet(merged)

    def intersect(self, other: "TemporalAnswerSet") -> "TemporalAnswerSet":
        common: dict[AnswerTuple, IntervalSet] = {}
        for item, stamps in self.answers.items():
            if item in other.answers:
                overlap = stamps.intersect(other.answers[item])
                if not overlap.is_empty:
                    common[item] = overlap
        return TemporalAnswerSet(common)

    def is_subset_of(self, other: "TemporalAnswerSet") -> bool:
        """Pointwise containment: every answer holds in *other* whenever
        it holds here."""
        return all(
            other.support(item).covers(stamps)
            for item, stamps in self.answers.items()
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TemporalAnswerSet):
            return NotImplemented
        return dict(self.answers) == dict(other.answers)

    def __hash__(self) -> int:
        return hash(frozenset(self.answers.items()))

    def __str__(self) -> str:
        if not self.answers:
            return "{}"
        rendered = ", ".join(
            "(" + ", ".join(str(v) for v in item) + f") @ {stamps}"
            for item, stamps in self
        )
        return "{" + rendered + "}"
