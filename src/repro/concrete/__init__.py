"""The concrete view: interval-stamped instances, normalization, c-chase."""

from repro.concrete.cchase import CChaseReplayState, CChaseResult, c_chase
from repro.concrete.concrete_fact import ConcreteFact, concrete_fact
from repro.concrete.concrete_instance import ConcreteInstance
from repro.concrete.normalization import (
    NormalizationEngine,
    NormalizationLog,
    NormalizationReport,
    NormalizationViolation,
    find_temporal_assignments,
    find_temporal_homomorphisms,
    find_violation,
    has_empty_intersection_property,
    interval_of,
    is_normalized,
    naive_normalize,
    normalize,
    normalize_with_report,
)

__all__ = [
    "CChaseReplayState",
    "CChaseResult",
    "c_chase",
    "ConcreteFact",
    "concrete_fact",
    "ConcreteInstance",
    "NormalizationEngine",
    "NormalizationLog",
    "NormalizationReport",
    "NormalizationViolation",
    "find_temporal_assignments",
    "find_temporal_homomorphisms",
    "find_violation",
    "has_empty_intersection_property",
    "interval_of",
    "is_normalized",
    "naive_normalize",
    "normalize",
    "normalize_with_report",
]
