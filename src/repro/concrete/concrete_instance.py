"""Concrete temporal database instances (the implementable view).

A :class:`ConcreteInstance` is a finite set of
:class:`~repro.concrete.concrete_fact.ConcreteFact` objects.  It offers:

* snapshot extraction — the ⟦·⟧ semantics pointwise (``snapshot(ℓ)``);
* a *lifted* relational view in which the interval is an ordinary last
  column, enabling reuse of the relational homomorphism machinery
  ("intervals behave as constants") — built once and then maintained
  incrementally on every ``add``/``discard``, so the c-chase can probe
  it between mutations without paying a rebuild;
* coalescing and coalescedness checks (Section 2), including the
  null-aware variant that merges fragments of one unknown back together;
* substitution (egd c-chase steps) and fragmentation support.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Mapping

from repro.errors import InstanceError, SchemaError
from repro.concrete.concrete_fact import ConcreteFact
from repro.relational.fact import Fact
from repro.relational.instance import Instance
from repro.relational.schema import Schema
from repro.relational.terms import AnnotatedNull, Constant, Term
from repro.temporal.coalesce import coalesce_intervals, is_coalesced_intervals
from repro.temporal.interval import Interval
from repro.temporal.interval_set import IntervalSet
from repro.temporal.timepoint import Infinity

__all__ = ["ConcreteInstance"]


class ConcreteInstance:
    """A mutable set of concrete facts with a cached lifted relational view."""

    # __weakref__ lets the query layer keep weak per-target memos (the
    # normalization memo of repro.query.eval) without pinning instances.
    __slots__ = (
        "_facts_by_relation",
        "_lifted",
        "_by_lifted",
        "_group_indexes",
        "schema",
        "__weakref__",
    )

    def __init__(
        self,
        facts: Iterable[ConcreteFact] = (),
        schema: Schema | None = None,
    ):
        self._facts_by_relation: dict[str, set[ConcreteFact]] = {}
        self._lifted: Instance | None = None
        self._by_lifted: dict[Fact, ConcreteFact] = {}
        self._group_indexes: dict[
            tuple[str, int, tuple[int, ...]], dict[tuple, list[ConcreteFact]]
        ] = {}
        self.schema = schema
        for item in facts:
            self.add(item)

    # -- mutation ------------------------------------------------------------
    def add(self, item: ConcreteFact) -> bool:
        """Insert a fact; returns ``True`` iff it was not already present."""
        if self.schema is not None:
            if item.relation not in self.schema:
                raise SchemaError(
                    f"fact {item} uses relation {item.relation!r} absent from schema"
                )
            # The schema may be given in lifted form (with the temporal
            # attribute) or in data-only form; accept either arity.
            expected = self.schema[item.relation].arity
            if item.arity not in (expected, expected - 1):
                raise SchemaError(
                    f"relation {item.relation} expects {expected} attributes "
                    f"(incl. temporal) but fact has {item.arity} data values"
                )
        bucket = self._facts_by_relation.setdefault(item.relation, set())
        if item in bucket:
            return False
        bucket.add(item)
        if self._lifted is not None:
            lifted_fact = item.lifted()
            self._lifted.add(lifted_fact)
            self._by_lifted[lifted_fact] = item
        if self._group_indexes:
            relation = item.relation
            arity = item.arity
            data = item.data
            for (rel, want_arity, positions), groups in (
                self._group_indexes.items()
            ):
                if rel != relation or want_arity != arity:
                    continue
                key = tuple(data[position] for position in positions)
                members = groups.get(key)
                if members is None:
                    groups[key] = [item]
                else:
                    members.append(item)
        return True

    def add_all(self, items: Iterable[ConcreteFact]) -> int:
        return sum(1 for item in items if self.add(item))

    # -- pickling ------------------------------------------------------------
    def __getstate__(self):
        """Facts and schema only — the lifted view rebuilds on first use.

        Shipping the cached lifted :class:`Instance` (and its fact-level
        back-map) would double the payload for a view that is derived
        data; buckets are stored sorted so equal instances serialize
        identically.
        """
        return (
            self.schema,
            tuple(
                (
                    relation,
                    tuple(sorted(bucket, key=ConcreteFact.sort_key)),
                )
                for relation, bucket in sorted(self._facts_by_relation.items())
            ),
        )

    def __setstate__(self, state) -> None:
        schema, groups = state
        self.schema = schema
        self._facts_by_relation = {
            relation: set(bucket) for relation, bucket in groups
        }
        self._lifted = None
        self._by_lifted = {}
        self._group_indexes = {}

    def discard(self, item: ConcreteFact) -> bool:
        bucket = self._facts_by_relation.get(item.relation)
        if bucket is None or item not in bucket:
            return False
        bucket.remove(item)
        if not bucket:
            del self._facts_by_relation[item.relation]
        if self._lifted is not None:
            lifted_fact = item.lifted()
            self._lifted.discard(lifted_fact)
            self._by_lifted.pop(lifted_fact, None)
        if self._group_indexes:
            relation = item.relation
            arity = item.arity
            data = item.data
            for (rel, want_arity, positions), groups in (
                self._group_indexes.items()
            ):
                if rel != relation or want_arity != arity:
                    continue
                key = tuple(data[position] for position in positions)
                members = groups.get(key)
                if members is not None:
                    members.remove(item)
                    if not members:
                        del groups[key]
        return True

    def replace(
        self, item: ConcreteFact, replacements: Iterable[ConcreteFact]
    ) -> None:
        """Swap *item* for its fragments (the normalization update step)."""
        self.discard(item)
        self.add_all(replacements)

    def apply_fragments(
        self,
        planned: Iterable[tuple[ConcreteFact, Iterable[ConcreteFact]]],
    ) -> None:
        """Apply a batch of fact → fragments replacements.

        The normalization engine plans all fragmentations first and
        applies them in one pass; fragments of one fact never collide
        with each other, but may merge with fragments of other facts —
        set semantics, exactly as per-fact :meth:`replace` calls.
        """
        for item, fragments in planned:
            self.discard(item)
            self.add_all(fragments)

    # -- basic queries -----------------------------------------------------------
    def __contains__(self, item: object) -> bool:
        if not isinstance(item, ConcreteFact):
            return False
        return item in self._facts_by_relation.get(item.relation, ())

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._facts_by_relation.values())

    def __iter__(self) -> Iterator[ConcreteFact]:
        for relation in sorted(self._facts_by_relation):
            yield from sorted(
                self._facts_by_relation[relation], key=ConcreteFact.sort_key
            )

    def __bool__(self) -> bool:
        return any(self._facts_by_relation.values())

    def relation_names(self) -> tuple[str, ...]:
        return tuple(sorted(self._facts_by_relation))

    def facts_of(self, relation: str) -> frozenset[ConcreteFact]:
        return frozenset(self._facts_by_relation.get(relation, ()))

    def iter_facts_of(self, relation: str) -> Iterator[ConcreteFact]:
        """Iterate the stored facts of *relation* without copying.

        Arbitrary (bucket) order — for consumers whose outcome is
        order-independent, like the normalization sweeps, which sort by
        interval themselves.  Do not mutate the instance mid-iteration.
        """
        return iter(self._facts_by_relation.get(relation, ()))

    def group_index(
        self, relation: str, data_arity: int, key_positions: tuple[int, ...]
    ) -> dict[tuple, list[ConcreteFact]]:
        """Facts of *relation* (data arity *data_arity*) grouped by the
        values at *key_positions* of their data tuple.

        Built on first request and maintained incrementally by
        :meth:`add` / :meth:`discard` from then on, so consumers that
        re-group between mutations — the normalization sweep's
        value-equivalence groups, re-requested by every chained
        ``c_chase`` round — pay one index update per change instead of
        re-hashing every fact.  The returned mapping is the live index:
        treat it as read-only, and do not mutate the instance while
        iterating it.  Groups hold no facts of other arities; empty
        groups are pruned.
        """
        signature = (relation, data_arity, key_positions)
        groups = self._group_indexes.get(signature)
        if groups is None:
            groups = {}
            for item in self._facts_by_relation.get(relation, ()):
                if item.arity != data_arity:
                    continue
                data = item.data
                key = tuple(data[position] for position in key_positions)
                members = groups.get(key)
                if members is None:
                    groups[key] = [item]
                else:
                    members.append(item)
            self._group_indexes[signature] = groups
        return groups

    def facts(self) -> frozenset[ConcreteFact]:
        return frozenset(
            item for bucket in self._facts_by_relation.values() for item in bucket
        )

    # -- terms ----------------------------------------------------------------------
    def nulls(self) -> frozenset[AnnotatedNull]:
        found: set[AnnotatedNull] = set()
        for bucket in self._facts_by_relation.values():
            for item in bucket:
                found.update(item.nulls())
        return frozenset(found)

    def constants(self) -> frozenset[Constant]:
        found: set[Constant] = set()
        for bucket in self._facts_by_relation.values():
            for item in bucket:
                found.update(item.constants())
        return frozenset(found)

    @property
    def is_complete(self) -> bool:
        """``True`` iff the instance contains no (annotated) nulls."""
        return not self.nulls()

    # -- temporal structure -----------------------------------------------------------
    def intervals(self) -> tuple[Interval, ...]:
        return tuple(item.interval for item in self)

    def breakpoints(self) -> tuple[int, ...]:
        """All distinct finite endpoints, ascending."""
        points: set[int] = set()
        for item in self.facts():
            points.add(item.interval.start)
            if not isinstance(item.interval.end, Infinity):
                points.add(item.interval.end)
        return tuple(sorted(points))

    def horizon(self) -> int:
        """The largest finite endpoint (0 for the empty instance).

        Beyond the horizon every snapshot is identical — the finite change
        condition made concrete.
        """
        points = self.breakpoints()
        return points[-1] if points else 0

    def active_time(self) -> IntervalSet:
        """The set of time points at which at least one fact holds."""
        return IntervalSet(self.intervals())

    # -- semantics ------------------------------------------------------------------
    def snapshot(self, point: int) -> Instance:
        """The snapshot ``db_ℓ`` of ⟦·⟧ at time ℓ (Section 2 / 4.1)."""
        result = Instance()
        for bucket in self._facts_by_relation.values():
            for item in bucket:
                if point in item.interval:
                    result.add(item.at(point))
        return result

    def facts_at(self, point: int) -> tuple[ConcreteFact, ...]:
        """The concrete facts whose stamp covers ℓ (deterministic order)."""
        return tuple(item for item in self if point in item.interval)

    # -- the lifted relational view ------------------------------------------------------
    def lifted(self) -> Instance:
        """The instance as flat relational tuples, interval as last column.

        Built on the first call and maintained incrementally by
        :meth:`add` / :meth:`discard` from then on — mutating between
        probes (the chase's access pattern) costs one index update, not a
        rebuild.  Temporal homomorphisms over the concrete instance are
        plain relational homomorphisms over this view, with temporal
        variables binding to ``Constant(interval)``.
        """
        if self._lifted is None:
            lifted = Instance()
            by_lifted: dict[Fact, ConcreteFact] = {}
            for bucket in self._facts_by_relation.values():
                for item in bucket:
                    lifted_fact = item.lifted()
                    lifted.add(lifted_fact)
                    by_lifted[lifted_fact] = item
            self._lifted = lifted
            self._by_lifted = by_lifted
        return self._lifted

    def resolve_lifted(self, item: Fact) -> ConcreteFact:
        """The stored concrete fact behind a fact of :meth:`lifted`.

        Returns the instance's own object (with its caches warm) when the
        fact is present; otherwise reconstructs via
        :meth:`from_lifted_fact`.
        """
        found = self._by_lifted.get(item)
        if found is not None:
            return found
        return ConcreteInstance.from_lifted_fact(item)

    @staticmethod
    def from_lifted_fact(item: Fact) -> ConcreteFact:
        """Inverse of :meth:`ConcreteFact.lifted` for one fact."""
        last = item.args[-1]
        if not (isinstance(last, Constant) and isinstance(last.value, Interval)):
            raise InstanceError(f"lifted fact {item} has no interval column")
        return ConcreteFact(item.relation, item.args[:-1], last.value)

    # -- coalescing (Section 2) ------------------------------------------------------
    def is_coalesced(self) -> bool:
        """Facts with identical data values have disjoint, non-adjacent stamps.

        Annotated nulls are compared by *base name* (data_shape): fragments
        of one unknown count as identical data values.
        """
        grouped: dict[tuple, list[Interval]] = {}
        for item in self.facts():
            grouped.setdefault((item.relation, item.data_shape()), []).append(
                item.interval
            )
        return all(is_coalesced_intervals(stamps) for stamps in grouped.values())

    def coalesce(self) -> "ConcreteInstance":
        """The unique coalesced instance with the same ⟦·⟧ semantics.

        Value-equivalent facts over overlapping or adjacent stamps merge;
        annotated nulls sharing a base merge into a null annotated with the
        merged stamp (the inverse of fragmentation).
        """
        grouped: dict[tuple, list[ConcreteFact]] = {}
        for item in self.facts():
            grouped.setdefault((item.relation, item.data_shape()), []).append(item)
        result = ConcreteInstance(schema=self.schema)
        for (relation, shape), members in grouped.items():
            merged = coalesce_intervals([m.interval for m in members])
            template = members[0]
            for stamp in merged:
                data = tuple(
                    AnnotatedNull(v.base, stamp)
                    if isinstance(v, AnnotatedNull)
                    else v
                    for v in template.data
                )
                result.add(ConcreteFact(relation, data, stamp))
        return result

    # -- transformation ----------------------------------------------------------------
    def copy(self, preserve_caches: bool = False) -> "ConcreteInstance":
        """A fact-level clone.

        With ``preserve_caches=True`` a built lifted view travels along
        as an index-preserving clone — the c-chase threads one warm
        lifted view from the target normalization through to the egd
        fixpoint this way, instead of rebuilding it at every stage
        boundary.  The default drops it, which suits mutation-heavy
        consumers better than paying incremental maintenance per change.
        """
        clone = ConcreteInstance(schema=self.schema)
        for relation, bucket in self._facts_by_relation.items():
            clone._facts_by_relation[relation] = set(bucket)
        if preserve_caches and self._lifted is not None:
            clone._lifted = self._lifted.copy(preserve_caches=True)
            clone._by_lifted = dict(self._by_lifted)
        return clone

    def substitute_in_place(self, mapping: Mapping[Term, Term]) -> list[ConcreteFact]:
        """Apply *mapping* to the data terms, rewriting only affected facts.

        Mirrors :meth:`repro.relational.instance.Instance.substitute_in_place`:
        affected facts are located through the lifted view's term index,
        discarded and re-added in substituted form, keeping the lifted
        view and its indexes incrementally maintained.  Returns the facts
        new to the instance in a deterministic order (their replaced
        facts' ``sort_key`` order) — the delta for the next chase round.
        """
        if not mapping:
            return []
        lookup = dict(mapping)
        lifted = self.lifted()
        affected = {
            self.resolve_lifted(lifted_fact)
            for lifted_fact in lifted.facts_with_any_term(lookup)
        }
        if not affected:
            return []
        images = [
            item.substitute(lookup)
            for item in sorted(affected, key=ConcreteFact.sort_key)
        ]
        for item in affected:
            self.discard(item)
        return [image for image in images if self.add(image)]

    def substitute(self, mapping: Mapping[Term, Term]) -> "ConcreteInstance":
        """Replace data terms everywhere (egd c-chase step).

        Facts that become equal after replacement merge silently, exactly
        as in the set-based semantics.  Facts not mentioning any mapped
        term are shared with the original instance.
        """
        if not mapping:
            return self.copy()
        lookup = dict(mapping)
        mapped_terms = frozenset(lookup)
        result = ConcreteInstance(schema=self.schema)
        for relation, bucket in self._facts_by_relation.items():
            result._facts_by_relation[relation] = {
                item
                if mapped_terms.isdisjoint(item.data)
                else item.substitute(lookup)
                for item in bucket
            }
        return result

    def map_facts(
        self, mapper: Callable[[ConcreteFact], ConcreteFact]
    ) -> "ConcreteInstance":
        result = ConcreteInstance(schema=self.schema)
        for bucket in self._facts_by_relation.values():
            for item in bucket:
                result.add(mapper(item))
        return result

    def union(self, other: "ConcreteInstance") -> "ConcreteInstance":
        result = self.copy()
        result.add_all(other.facts())
        return result

    # -- comparison and rendering ---------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ConcreteInstance):
            return NotImplemented
        return self.facts() == other.facts()

    def __hash__(self) -> int:
        return hash(self.facts())

    def __str__(self) -> str:
        if not self:
            return "{}"
        return "{" + ", ".join(str(item) for item in self) + "}"

    def __repr__(self) -> str:
        return (
            f"ConcreteInstance({len(self)} facts over "
            f"{list(self.relation_names())})"
        )
