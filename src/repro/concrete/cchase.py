"""The concrete chase — *c-chase* — of Definition 16.

Pipeline (Section 4.3):

1. normalize the concrete source instance w.r.t. the lhs of ``Σ+st``;
2. apply all s-t tgd c-chase steps: a step fires for a homomorphism ``h``
   from the lifted lhs (shared temporal variable ``t``) that does not
   extend to the rhs over the current target; each existential variable
   receives a **fresh null annotated with h(t)**;
3. normalize the target w.r.t. the lhs of ``Σ+eg``;
4. apply egd c-chase steps to a fixpoint: equating two constants fails
   the whole chase (no solution exists — Theorem 19(2)); otherwise an
   interval-annotated null is replaced everywhere by the other term.
   Normalization guarantees both equated nulls carry the same annotation.

   Like the snapshot chase, the egd fixpoint runs in *batched rounds*:
   all egd matches of the current target are merged into one
   :class:`~repro.chase.union_find.TermUnionFind` (constructed with
   annotation checking, so a merge of two differently-annotated nulls —
   impossible after normalization — raises instead of corrupting the
   instance), then a single substitution pass applies the round.  Matched
   terms are resolved through ``find`` first because earlier merges of
   the round are not yet visible in the instance; every recorded step
   equates class representatives, and constant/constant clashes are
   detected at representative level — both exactly as the per-equation
   loop behaved after its eager substitutions.

A successful run returns a *concrete solution* ``Jc`` whose semantics
``⟦Jc⟧`` is a universal solution for ``⟦Ic⟧`` (Theorem 19(1),
Corollary 20 — verified end-to-end in this repository's tests).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Literal

from repro.errors import ChaseFailureError
from repro.chase.nulls import NullFactory
from repro.chase.trace import (
    ChaseTrace,
    EgdStepRecord,
    FailureRecord,
    TgdStepRecord,
)
from repro.chase.union_find import ConstantClashError, TermUnionFind
from repro.concrete.concrete_fact import ConcreteFact
from repro.concrete.concrete_instance import ConcreteInstance
from repro.concrete.normalization import (
    _lift_atoms,
    find_temporal_assignments,
    interval_of,
    naive_normalize,
    normalize,
)
from repro.dependencies.dependency import EGD, SourceToTargetTGD
from repro.dependencies.mapping import DataExchangeSetting
from repro.relational.formulas import Atom
from repro.relational.homomorphism import has_homomorphism, iter_egd_equations
from repro.relational.terms import (
    GroundTerm,
    Variable,
)

__all__ = ["CChaseResult", "c_chase", "NormalizationMode"]

NormalizationMode = Literal["conjunction", "naive"]
TgdVariant = Literal["standard", "oblivious"]


@dataclass
class CChaseResult:
    """The outcome of one c-chase run, with intermediate stages retained.

    ``normalized_source`` is the source after stage 1; ``pre_egd_target``
    is the target after stages 2–3 (normalized w.r.t. Σ+eg but before any
    egd step) — both are pedagogically useful and feed the figure
    benchmarks.
    """

    target: ConcreteInstance
    failed: bool = False
    failure: FailureRecord | None = None
    trace: ChaseTrace = field(default_factory=ChaseTrace)
    normalized_source: ConcreteInstance = field(default_factory=ConcreteInstance)
    pre_egd_target: ConcreteInstance = field(default_factory=ConcreteInstance)

    @property
    def succeeded(self) -> bool:
        return not self.failed

    def unwrap(self) -> ConcreteInstance:
        """The concrete solution, raising on a failed chase."""
        if self.failed:
            assert self.failure is not None
            raise ChaseFailureError(
                self.failure.dependency, self.failure.left, self.failure.right
            )
        return self.target


def _normalize(
    instance: ConcreteInstance,
    conjunctions,
    mode: NormalizationMode,
) -> ConcreteInstance:
    if mode == "naive":
        return naive_normalize(instance)
    return normalize(instance, conjunctions)


def _lift_rhs(tgd: SourceToTargetTGD, tvar: Variable) -> tuple[Atom, ...]:
    # Cached on the tgd: with lift_lhs cached, tvar is stable across runs,
    # and stable atoms keep the homomorphism search's plan cache warm.
    cached = tgd._lifted_rhs
    if cached is not None and cached[0] == tvar:
        return cached[1]
    lifted = tuple(
        Atom(atom.relation, atom.args + (tvar,)) for atom in tgd.rhs.atoms
    )
    object.__setattr__(tgd, "_lifted_rhs", (tvar, lifted))
    return lifted


def _run_st_phase(
    source: ConcreteInstance,
    target: ConcreteInstance,
    setting: DataExchangeSetting,
    nulls: NullFactory,
    variant: TgdVariant,
    trace: ChaseTrace,
) -> None:
    for index, tgd in enumerate(setting.st_tgds, start=1):
        label = tgd.name or f"σ{index}+"
        lifted_lhs = tgd.lift_lhs()
        tvar = lifted_lhs.shared_variable
        lifted_rhs = _lift_rhs(tgd, tvar)
        exported = set(tgd.exported_variables)
        # copy=False: the live assignment is read (and copied into the
        # extension/trace record) before the iterator resumes.
        for assignment in find_temporal_assignments(
            lifted_lhs, source, copy=False
        ):
            stamp = interval_of(assignment, tvar)
            if variant == "standard":
                initial = {
                    var: value
                    for var, value in assignment.items()
                    if var in exported or var == tvar
                }
                if has_homomorphism(lifted_rhs, target.lifted(), initial=initial):
                    continue
            extension: dict[Variable, GroundTerm] = dict(assignment)
            fresh: list[GroundTerm] = []
            for variable in tgd.existential_variables:
                null = nulls.fresh_annotated(stamp)
                extension[variable] = null
                fresh.append(null)
            added: list[ConcreteFact] = []
            for atom in tgd.rhs.atoms:
                snapshot_fact = atom.instantiate(extension)
                new_fact = ConcreteFact(atom.relation, snapshot_fact.args, stamp)
                if target.add(new_fact):
                    added.append(new_fact)
            trace.record(
                TgdStepRecord(
                    dependency=label,
                    assignment=dict(assignment),
                    added_facts=tuple(item.lifted() for item in added),
                    fresh_nulls=tuple(fresh),
                )
            )


def _run_egd_phase(
    target: ConcreteInstance,
    setting: DataExchangeSetting,
    trace: ChaseTrace,
) -> tuple[ConcreteInstance, FailureRecord | None]:
    """Resolve the egds in batched union-find rounds (module docstring)."""
    labeled_egds = [
        (egd.name or f"ε{index}+", _lift_atoms(egd.lift_lhs()), egd)
        for index, egd in enumerate(setting.egds, start=1)
    ]
    current = target
    while True:
        union_find = TermUnionFind(check_annotations=True)
        merged = False
        for label, lifted_atoms, egd in labeled_egds:
            for left, right in iter_egd_equations(
                lifted_atoms,
                egd.left_variable,
                egd.right_variable,
                current.lifted(),
            ):
                if left == right:
                    continue
                root_left = union_find.find(left)
                root_right = union_find.find(right)
                if root_left == root_right:
                    continue
                try:
                    winner = union_find.union(root_left, root_right)
                except ConstantClashError as clash:
                    failure = FailureRecord(label, clash.left, clash.right)
                    trace.record(failure)
                    # Leave the instance as the per-equation loop did: all
                    # merges recorded before the clash are applied.
                    pending = union_find.substitution()
                    if pending:
                        current = current.substitute(pending)
                    return current, failure
                replaced = root_right if winner == root_left else root_left
                trace.record(EgdStepRecord(label, replaced, winner))
                merged = True
        if not merged:
            return current, None
        current = current.substitute(union_find.substitution())


def c_chase(
    source: ConcreteInstance,
    setting: DataExchangeSetting,
    null_factory: NullFactory | None = None,
    normalization: NormalizationMode = "conjunction",
    variant: TgdVariant = "standard",
    coalesce_result: bool = False,
) -> CChaseResult:
    """Run the c-chase of Definition 16 on a concrete source instance.

    Parameters
    ----------
    source:
        The concrete source instance (assumed coalesced, per the paper).
    setting:
        The data exchange setting ``M``; its lifting ``M+`` is derived.
    null_factory:
        Source of fresh annotated nulls (deterministic default).
    normalization:
        ``"conjunction"`` uses Algorithm 1 w.r.t. the dependency lhs sets;
        ``"naive"`` uses the endpoint-based baseline (ablation knob).
    variant:
        ``"standard"`` checks for an existing rhs extension before firing
        a tgd; ``"oblivious"`` always fires.
    coalesce_result:
        When ``True``, value-equivalent adjacent fragments of the solution
        are merged before returning (the semantics is unchanged).
    """
    nulls = null_factory if null_factory is not None else NullFactory()
    trace = ChaseTrace()

    normalized_source = _normalize(
        source, setting.lifted_st_lhs_conjunctions(), normalization
    )
    target = ConcreteInstance()
    _run_st_phase(normalized_source, target, setting, nulls, variant, trace)
    pre_egd_target = _normalize(
        target, setting.lifted_egd_lhs_conjunctions(), normalization
    )
    final, failure = _run_egd_phase(pre_egd_target.copy(), setting, trace)
    if failure is not None:
        return CChaseResult(
            target=final,
            failed=True,
            failure=failure,
            trace=trace,
            normalized_source=normalized_source,
            pre_egd_target=pre_egd_target,
        )
    if coalesce_result:
        final = final.coalesce()
    return CChaseResult(
        target=final,
        trace=trace,
        normalized_source=normalized_source,
        pre_egd_target=pre_egd_target,
    )
