"""The concrete chase — *c-chase* — of Definition 16.

Pipeline (Section 4.3), with both chase phases running on the shared
delta-driven engine of :mod:`repro.chase.engine`:

1. normalize the concrete source instance w.r.t. the lhs of ``Σ+st``;
2. apply all s-t tgd c-chase steps: a step fires for a homomorphism ``h``
   from the lifted lhs (shared temporal variable ``t``) that does not
   extend to the rhs over the current target; each existential variable
   receives a **fresh null annotated with h(t)**;
3. normalize the target w.r.t. the lhs of ``Σ+eg``;
4. apply egd c-chase steps to a fixpoint: equating two constants fails
   the whole chase (no solution exists — Theorem 19(2)); otherwise an
   interval-annotated null is replaced everywhere by the other term.
   Normalization guarantees both equated nulls carry the same annotation.

   Like the snapshot chase, the egd fixpoint runs in *batched semi-naive
   rounds*: all matches of the round's worklist are merged into one
   :class:`~repro.chase.union_find.TermUnionFind` (constructed with
   annotation checking, so a merge of two differently-annotated nulls —
   impossible after normalization — raises instead of corrupting the
   instance), then a single in-place substitution pass applies the round
   by rewriting only the facts that mention a replaced term.  Round 0's
   worklist is the full target; every later round enumerates only the
   matches touching the previous round's delta, and the fixpoint is
   confirmed when that delta is empty.  Matched terms are resolved
   through ``find`` first because earlier merges of the round are not yet
   visible in the instance; every recorded step equates class
   representatives, and constant/constant clashes are detected at
   representative level — both exactly as the per-equation loop behaved
   after its eager substitutions.

A successful run returns a *concrete solution* ``Jc`` whose semantics
``⟦Jc⟧`` is a universal solution for ``⟦Ic⟧`` (Theorem 19(1),
Corollary 20 — verified end-to-end in this repository's tests).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Literal

from repro.errors import ChaseFailureError
from repro.chase.engine import (
    EgdTask,
    EngineMode,
    build_rhs_probe,
    run_egd_fixpoint,
    run_tgd_pass,
)
from repro.chase.nulls import NullFactory
from repro.chase.trace import (
    ChaseTrace,
    FailureRecord,
    TgdStepRecord,
)
from repro.concrete.concrete_fact import ConcreteFact
from repro.concrete.concrete_instance import ConcreteInstance
from repro.concrete.normalization import (
    NormalizationLog,
    NormalizationReport,
    _lift_atoms,
    find_temporal_assignments,
    interval_of,
    naive_normalize,
    normalize_with_report,
)
from repro.dependencies.dependency import SourceToTargetTGD
from repro.dependencies.mapping import DataExchangeSetting
from repro.relational.fact import Fact
from repro.relational.formulas import Atom
from repro.relational.homomorphism import has_homomorphism
from repro.relational.terms import (
    GroundTerm,
    Variable,
)

__all__ = ["CChaseResult", "CChaseReplayState", "c_chase", "NormalizationMode"]

NormalizationMode = Literal["conjunction", "naive"]
TgdVariant = Literal["standard", "oblivious"]


@dataclass
class CChaseReplayState:
    """The replayable normalization decisions of one c-chase run.

    One :class:`~repro.concrete.normalization.NormalizationLog` per
    normalization stage — the source normalization w.r.t. the lhs of
    ``Σ+st`` and the target normalization w.r.t. the lhs of ``Σ+eg``.  A
    later :func:`c_chase` over an overlapping source hands the state
    back as ``incremental=`` and every unchanged value-equivalence group
    (and every unchanged component's fragment plan) replays without
    re-sorting; outputs are byte-identical to a from-scratch run.  The
    state pickles, which is how the CLI persists it between invocations
    (``repro chase --norm-log``).
    """

    source: NormalizationLog | None = None
    target: NormalizationLog | None = None


@dataclass
class CChaseResult:
    """The outcome of one c-chase run, with intermediate stages retained.

    ``normalized_source`` is the source after stage 1; ``pre_egd_target``
    is the target after stages 2–3 (normalized w.r.t. Σ+eg but before any
    egd step) — both are pedagogically useful and feed the figure
    benchmarks.
    """

    target: ConcreteInstance
    failed: bool = False
    failure: FailureRecord | None = None
    trace: ChaseTrace = field(default_factory=ChaseTrace)
    normalized_source: ConcreteInstance = field(default_factory=ConcreteInstance)
    pre_egd_target: ConcreteInstance = field(default_factory=ConcreteInstance)
    # Populated for normalization="conjunction": the two stages' reports
    # (source w.r.t. Σ+st, target w.r.t. Σ+eg), and — when the run was
    # asked to record (incremental= anything but None/False) — the
    # replayable state for the next run.
    normalization_reports: tuple[NormalizationReport, NormalizationReport] | None = None
    replay_state: CChaseReplayState | None = None

    @property
    def succeeded(self) -> bool:
        return not self.failed

    def unwrap(self) -> ConcreteInstance:
        """The concrete solution, raising on a failed chase."""
        if self.failed:
            assert self.failure is not None
            raise ChaseFailureError(
                self.failure.dependency, self.failure.left, self.failure.right
            )
        return self.target


def _normalize(
    instance: ConcreteInstance,
    conjunctions,
    mode: NormalizationMode,
    previous: NormalizationLog | None = None,
    record: bool = False,
) -> tuple[ConcreteInstance, NormalizationReport | None]:
    if mode == "naive":
        return naive_normalize(instance), None
    return normalize_with_report(
        instance, conjunctions, previous=previous, record=record
    )


def _lift_rhs(tgd: SourceToTargetTGD, tvar: Variable) -> tuple[Atom, ...]:
    # Cached on the tgd: with lift_lhs cached, tvar is stable across runs,
    # and stable atoms keep the homomorphism search's plan cache warm.
    cached = tgd._lifted_rhs
    if cached is not None and cached[0] == tvar:
        return cached[1]
    lifted = tuple(
        Atom(atom.relation, atom.args + (tvar,)) for atom in tgd.rhs.atoms
    )
    object.__setattr__(tgd, "_lifted_rhs", (tvar, lifted))
    return lifted


class _ConcreteTgdTask:
    """One lifted s-t tgd prepared for the engine's tgd pass."""

    __slots__ = (
        "label",
        "tgd",
        "lifted_lhs",
        "tvar",
        "lifted_rhs",
        "exported",
        "rhs_probe",
    )

    def __init__(self, label: str, tgd: SourceToTargetTGD) -> None:
        self.label = label
        self.tgd = tgd
        self.lifted_lhs = tgd.lift_lhs()
        self.tvar = self.lifted_lhs.shared_variable
        self.lifted_rhs = _lift_rhs(tgd, self.tvar)
        self.exported = set(tgd.exported_variables)
        # The lifted rhs atoms bind the temporal variable like any other
        # exported variable, so only the existentials stay unbound.
        self.rhs_probe = build_rhs_probe(
            self.lifted_rhs, tgd.existential_variables
        )


class _ConcreteDomain:
    """:class:`~repro.chase.engine.ChaseDomain` over a concrete target.

    Egd matches are enumerated on the target's lifted relational view;
    the substitution delta is translated back into lifted facts so the
    engine's semi-naive rounds see the view they enumerate on.
    """

    check_annotations = True

    def __init__(
        self,
        target: ConcreteInstance,
        source: ConcreteInstance | None = None,
        nulls: NullFactory | None = None,
        variant: TgdVariant = "standard",
    ) -> None:
        self.target = target
        self.source = source
        self.nulls = nulls
        self.variant = variant
        self.probes_for: dict[str, list] = {}

    def attach_probes(self, tasks) -> None:
        """Register and seed the tasks' rhs projection probes.

        Probes watch the *lifted* form of the target's facts (the lifted
        rhs atoms carry the temporal variable as their last argument).
        """
        for task in tasks:
            probe = task.rhs_probe
            if probe is not None:
                self.probes_for.setdefault(probe.relation, []).append(probe)
                probe.seed(
                    item.lifted()
                    for item in self.target.facts_of(probe.relation)
                )

    # -- egd side ----------------------------------------------------------
    def match_view(self):
        return self.target.lifted()

    def apply_substitution(self, mapping) -> list[Fact]:
        added = self.target.substitute_in_place(mapping)
        return [item.lifted() for item in added]

    # -- tgd side ----------------------------------------------------------
    def iter_tgd_matches(self, task: _ConcreteTgdTask):
        # copy=False: the live assignment is read (and copied into the
        # extension/trace record) before the iterator resumes.
        assert self.source is not None
        return find_temporal_assignments(task.lifted_lhs, self.source, copy=False)

    def fire_tgd(
        self, task: _ConcreteTgdTask, assignment
    ) -> TgdStepRecord | None:
        tgd = task.tgd
        stamp = interval_of(assignment, task.tvar)
        if self.variant == "standard":
            if task.rhs_probe is not None:
                if task.rhs_probe.check(assignment):
                    return None
            else:
                initial = {
                    var: value
                    for var, value in assignment.items()
                    if var in task.exported or var == task.tvar
                }
                if has_homomorphism(
                    task.lifted_rhs, self.target.lifted(), initial=initial
                ):
                    return None
        assert self.nulls is not None
        record_assignment: dict[Variable, GroundTerm] = dict(assignment)
        fresh: list[GroundTerm] = []
        if tgd.existential_variables:
            extension = dict(record_assignment)
            for variable in tgd.existential_variables:
                null = self.nulls.fresh_annotated(stamp)
                extension[variable] = null
                fresh.append(null)
        else:
            extension = record_assignment
        added: list[ConcreteFact] = []
        for atom in tgd.rhs.atoms:
            new_fact = ConcreteFact.make(
                atom.relation,
                tuple([extension.get(arg, arg) for arg in atom.args]),
                stamp,
            )
            if self.target.add(new_fact):
                added.append(new_fact)
                watchers = self.probes_for.get(new_fact.relation)
                if watchers:
                    lifted_fact = new_fact.lifted()
                    for probe in watchers:
                        probe.observe(lifted_fact)
        return TgdStepRecord(
            dependency=task.label,
            assignment=record_assignment,
            added_facts=tuple(item.lifted() for item in added),
            fresh_nulls=tuple(fresh),
        )


def _run_st_phase(
    source: ConcreteInstance,
    target: ConcreteInstance,
    setting: DataExchangeSetting,
    nulls: NullFactory,
    variant: TgdVariant,
    trace: ChaseTrace,
) -> None:
    domain = _ConcreteDomain(target, source=source, nulls=nulls, variant=variant)
    tasks = [
        _ConcreteTgdTask(tgd.name or f"σ{index}+", tgd)
        for index, tgd in enumerate(setting.st_tgds, start=1)
    ]
    domain.attach_probes(tasks)
    run_tgd_pass(domain, tasks, trace)


def _egd_tasks(setting: DataExchangeSetting) -> tuple[EgdTask, ...]:
    # Cached on the setting: tasks are immutable and shared across runs.
    cached = getattr(setting, "_concrete_egd_tasks", None)
    if cached is None:
        cached = tuple(
            EgdTask(
                egd.name or f"ε{index}+",
                _lift_atoms(egd.lift_lhs()),
                egd.left_variable,
                egd.right_variable,
            )
            for index, egd in enumerate(setting.egds, start=1)
        )
        try:
            object.__setattr__(setting, "_concrete_egd_tasks", cached)
        except AttributeError:
            # The setting grew __slots__: just rebuild per call.
            pass
    return cached


def _run_egd_phase(
    target: ConcreteInstance,
    setting: DataExchangeSetting,
    trace: ChaseTrace,
    mode: EngineMode = "delta",
) -> tuple[ConcreteInstance, FailureRecord | None]:
    """Resolve the egds in batched semi-naive rounds (module docstring).

    A thin wrapper over :func:`repro.chase.engine.run_egd_fixpoint` with
    the concrete domain; the instance is mutated in place and returned.
    """
    domain = _ConcreteDomain(target)
    failure = run_egd_fixpoint(domain, _egd_tasks(setting), trace, mode=mode)
    return target, failure


def c_chase(
    source: ConcreteInstance,
    setting: DataExchangeSetting,
    null_factory: NullFactory | None = None,
    normalization: NormalizationMode = "conjunction",
    variant: TgdVariant = "standard",
    coalesce_result: bool = False,
    engine: EngineMode = "delta",
    incremental: "CChaseResult | CChaseReplayState | bool | None" = None,
) -> CChaseResult:
    """Run the c-chase of Definition 16 on a concrete source instance.

    Parameters
    ----------
    source:
        The concrete source instance (assumed coalesced, per the paper).
    setting:
        The data exchange setting ``M``; its lifting ``M+`` is derived.
    null_factory:
        Source of fresh annotated nulls (deterministic default).
    normalization:
        ``"conjunction"`` uses Algorithm 1 w.r.t. the dependency lhs sets;
        ``"naive"`` uses the endpoint-based baseline (ablation knob).
    variant:
        ``"standard"`` checks for an existing rhs extension before firing
        a tgd; ``"oblivious"`` always fires.
    coalesce_result:
        When ``True``, value-equivalent adjacent fragments of the solution
        are merged before returning (the semantics is unchanged).
    engine:
        ``"delta"`` runs egd rounds against the previous round's delta
        only (semi-naive); ``"rescan"`` re-enumerates the full instance
        every round — the reference mode the property tests compare
        against.
    incremental:
        Fragment-level normalization replay across successive runs.
        ``True`` records this run's :class:`CChaseReplayState` (on
        ``result.replay_state``) without replaying anything; a previous
        run's :class:`CChaseResult` or :class:`CChaseReplayState`
        replays every unchanged value-equivalence group and fragment
        plan *and* records the new state.  Outputs are byte-identical to
        a from-scratch run; only ``normalization="conjunction"`` stages
        participate.  ``None``/``False`` (default) turns recording off.
    """
    nulls = null_factory if null_factory is not None else NullFactory()
    trace = ChaseTrace()

    record = incremental is not None and incremental is not False
    state: CChaseReplayState | None = None
    if isinstance(incremental, CChaseResult):
        state = incremental.replay_state
    elif isinstance(incremental, CChaseReplayState):
        state = incremental

    normalized_source, source_report = _normalize(
        source,
        setting.lifted_st_lhs_conjunctions(),
        normalization,
        previous=state.source if state is not None else None,
        record=record,
    )
    target = ConcreteInstance()
    _run_st_phase(normalized_source, target, setting, nulls, variant, trace)
    pre_egd_target, target_report = _normalize(
        target,
        setting.lifted_egd_lhs_conjunctions(),
        normalization,
        previous=state.target if state is not None else None,
        record=record,
    )
    reports = (
        (source_report, target_report)
        if source_report is not None and target_report is not None
        else None
    )
    replay_state = (
        CChaseReplayState(
            source=source_report.log if source_report is not None else None,
            target=target_report.log if target_report is not None else None,
        )
        if record
        else None
    )
    final, failure = _run_egd_phase(
        pre_egd_target.copy(preserve_caches=True), setting, trace, mode=engine
    )
    if failure is not None:
        return CChaseResult(
            target=final,
            failed=True,
            failure=failure,
            trace=trace,
            normalized_source=normalized_source,
            pre_egd_target=pre_egd_target,
            normalization_reports=reports,
            replay_state=replay_state,
        )
    if coalesce_result:
        final = final.coalesce()
    return CChaseResult(
        target=final,
        trace=trace,
        normalized_source=normalized_source,
        pre_egd_target=pre_egd_target,
        normalization_reports=reports,
        replay_state=replay_state,
    )
