"""Normalization of concrete instances (Section 4.2 of the paper).

Chase steps need homomorphisms from a dependency's left-hand side — whose
atoms share one temporal variable ``t`` — to the concrete instance.  For
``t`` to map to a *single* interval, the facts jointly matched by the lhs
must carry equal stamps.  An instance where this always works is
*normalized* (Definition 7), which Theorem 11 characterizes as the
**empty intersection property** (Definition 10): whenever the
temporally-decoupled form ``φ* ∈ N(Φ+)`` maps onto facts ``f1 … fn``,
their stamps are pairwise disjoint or all equal.

Two normalization algorithms are implemented, exactly as the paper
describes:

* :func:`normalize` — **Algorithm 1** ``norm(Ic, Φ+)``: find the fact
  sets jointly matched by some ``φ*`` with temporally-overlapping stamps,
  merge overlapping sets into components, and fragment each component's
  facts at the component's distinct endpoints.  Output size is ``O(n²)``
  in the worst case (Theorem 13); output is normalized (Theorem 15).
* :func:`naive_normalize` — the ``O(n log n)`` baseline that ignores
  ``Φ+`` and fragments every fact at *all* endpoints of the instance.
  Sound but over-fragments (Figure 6 vs Figure 5).

Match enumeration over the decoupled forms runs on the general flat
written-order join of :mod:`repro.relational.homomorphism`
(:func:`~repro.relational.homomorphism._iter_flat_join_rows`), which
handles any number of all-variable atoms via per-atom join-key groups —
the former two-atom-only fast-path shape detection is gone.  Algorithm 1
additionally inlines the dominant two-atom case (interval overlap is two
endpoint comparisons) without changing matches, Δ sets or report counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping, Sequence

from repro.errors import FormulaError
from repro.concrete.concrete_fact import ConcreteFact
from repro.concrete.concrete_instance import ConcreteInstance
from repro.relational.formulas import Atom, TemporalConjunction
from repro.relational.homomorphism import (
    _flat_join_plan,
    _iter_flat_join_rows,
    find_homomorphisms_with_images,
)
from repro.relational.terms import Constant, GroundTerm, Variable
from repro.temporal.interval import Interval
from repro.temporal.timepoint import TimePoint

__all__ = [
    "find_temporal_homomorphisms",
    "find_temporal_assignments",
    "interval_of",
    "NormalizationViolation",
    "find_violation",
    "has_empty_intersection_property",
    "is_normalized",
    "NormalizationReport",
    "normalize_with_report",
    "normalize",
    "naive_normalize",
]


# ---------------------------------------------------------------------------
# Temporal homomorphisms via the lifted relational view
# ---------------------------------------------------------------------------


def _lift_atoms(conjunction: TemporalConjunction) -> tuple[Atom, ...]:
    """Append each atom's temporal variable as an ordinary last argument.

    Cached on the conjunction: the chase lifts the same Φ+ members on
    every phase and every round, and stable atom objects keep the search's
    per-atom plan cache warm.
    """
    cached = conjunction._lifted_atoms
    if cached is None:
        cached = tuple(
            Atom(atom.relation, atom.args + (tvar,))
            for atom, tvar in conjunction
        )
        object.__setattr__(conjunction, "_lifted_atoms", cached)
    return cached  # type: ignore[return-value]


def find_temporal_homomorphisms(
    conjunction: TemporalConjunction,
    instance: ConcreteInstance,
    initial: Mapping[Variable, GroundTerm] | None = None,
    copy: bool = True,
) -> Iterator[tuple[dict[Variable, GroundTerm], tuple[ConcreteFact, ...]]]:
    """Homomorphisms from a temporal conjunction into a concrete instance.

    Works uniformly for the shared form ``φ+`` (all atoms must match facts
    with one common stamp) and the decoupled form ``φ*`` (stamps are
    independent): temporal variables are ordinary variables of the lifted
    relational view and bind to ``Constant(interval)`` values.

    Yields the assignment (temporal variables included) and the matched
    concrete facts in atom order.  ``copy=False`` yields the live search
    dict (see :func:`~repro.relational.homomorphism
    .find_homomorphisms_with_images`).
    """
    lifted = _lift_atoms(conjunction)
    resolve = instance.resolve_lifted
    for assignment, images in find_homomorphisms_with_images(
        lifted, instance.lifted(), initial=initial, copy=copy
    ):
        yield assignment, tuple(resolve(item) for item in images)


def find_temporal_assignments(
    conjunction: TemporalConjunction,
    instance: ConcreteInstance,
    initial: Mapping[Variable, GroundTerm] | None = None,
    copy: bool = True,
) -> Iterator[dict[Variable, GroundTerm]]:
    """Like :func:`find_temporal_homomorphisms` but without the images.

    The c-chase phases only need the variable assignment (the matched
    facts are irrelevant once the stamp is known), so they skip the
    per-match resolution of lifted facts back to concrete ones.
    """
    lifted = _lift_atoms(conjunction)
    for assignment, _images in find_homomorphisms_with_images(
        lifted, instance.lifted(), initial=initial, copy=copy
    ):
        yield assignment


def interval_of(
    assignment: Mapping[Variable, GroundTerm], variable: Variable
) -> Interval:
    """Unwrap a temporal variable's binding into an interval."""
    value = assignment[variable]
    if not (isinstance(value, Constant) and isinstance(value.value, Interval)):
        raise FormulaError(
            f"variable {variable} is bound to {value!r}, not a time interval"
        )
    return value.value


def _iter_decoupled_images(
    decoupled: TemporalConjunction, instance: ConcreteInstance
) -> Iterator[tuple[ConcreteFact, ...]]:
    """The image tuples of all ``φ*`` homomorphisms into *instance*.

    Normalization only consumes the matched facts (the Δ sets feed a
    union-find whose outcome is order-independent), so enumeration runs
    as a flat written-order join over the lifted view, uniformly for any
    number of atoms: each atom's candidates come from the pairwise
    intersection of the index buckets of its already-bound positions.
    Every homomorphism produces exactly one image tuple, so the match
    *count* (``NormalizationReport.matched_sets``) is preserved.
    """
    lifted_atoms = _lift_atoms(decoupled)
    lifted = instance.lifted()
    resolve = instance.resolve_lifted
    plan = _flat_join_plan(lifted_atoms)
    if plan is None:
        for _assignment, images in find_homomorphisms_with_images(
            lifted_atoms, lifted, copy=False, atom_order="written"
        ):
            yield tuple(resolve(item) for item in images)
        return
    for row in _iter_flat_join_rows(plan, lifted):
        yield tuple(resolve(item) for item in row)


# ---------------------------------------------------------------------------
# Empty intersection property (Definition 10) and normalizedness checks
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class NormalizationViolation:
    """A witness that the empty intersection property fails.

    The matched facts' stamps intersect without all being equal, so the
    temporal variable of the corresponding shared conjunction cannot be
    mapped to a single interval covering the whole match.
    """

    conjunction: TemporalConjunction
    facts: tuple[ConcreteFact, ...]

    def __str__(self) -> str:
        listed = "; ".join(str(item) for item in self.facts)
        return f"empty intersection property violated by {{{listed}}}"


def _common_interval(stamps: Sequence[Interval]) -> Interval | None:
    """The intersection of all stamps, or ``None`` when empty."""
    common: Interval | None = stamps[0]
    for stamp in stamps[1:]:
        if common is None:
            return None
        common = common.intersect(stamp)
    return common


def find_violation(
    instance: ConcreteInstance,
    conjunctions: Iterable[TemporalConjunction],
) -> NormalizationViolation | None:
    """The first violation of the empty intersection property, or ``None``."""
    for conjunction in conjunctions:
        decoupled = conjunction.normalized()
        for images in _iter_decoupled_images(decoupled, instance):
            distinct = tuple(dict.fromkeys(images))
            stamps = [item.interval for item in distinct]
            common = _common_interval(stamps)
            if common is None:
                continue
            if any(stamp != stamps[0] for stamp in stamps[1:]):
                return NormalizationViolation(conjunction, distinct)
    return None


def has_empty_intersection_property(
    instance: ConcreteInstance,
    conjunctions: Iterable[TemporalConjunction],
) -> bool:
    """Definition 10, decided by exhaustive homomorphism enumeration."""
    return find_violation(instance, list(conjunctions)) is None


def is_normalized(
    instance: ConcreteInstance,
    conjunctions: Iterable[TemporalConjunction],
) -> bool:
    """Normalizedness w.r.t. Φ+ — by Theorem 11, the empty intersection
    property is an exact characterization, and it is what we decide."""
    return has_empty_intersection_property(instance, conjunctions)


# ---------------------------------------------------------------------------
# Algorithm 1: norm(Ic, Φ+)
# ---------------------------------------------------------------------------


class _FactUnionFind:
    """Union-find over concrete facts for the set-merging stage."""

    def __init__(self) -> None:
        self._parent: dict[ConcreteFact, ConcreteFact] = {}

    def find(self, item: ConcreteFact) -> ConcreteFact:
        # Path-halving: one loop, no second compression pass.
        parent = self._parent
        if item not in parent:
            parent[item] = item
            return item
        above = parent[item]
        while above != item:
            grand = parent[above]
            parent[item] = grand
            item = grand
            above = parent[item]
        return item

    def union(self, left: ConcreteFact, right: ConcreteFact) -> None:
        root_left, root_right = self.find(left), self.find(right)
        if root_left != root_right:
            # Deterministic winner keeps components reproducible.
            if root_left.sort_key() <= root_right.sort_key():
                self._parent[root_right] = root_left
            else:
                self._parent[root_left] = root_right

    def components(self) -> list[set[ConcreteFact]]:
        grouped: dict[ConcreteFact, set[ConcreteFact]] = {}
        for item in self._parent:
            grouped.setdefault(self.find(item), set()).add(item)
        return list(grouped.values())


@dataclass
class NormalizationReport:
    """What Algorithm 1 did: inputs, groups and the fragment arithmetic."""

    input_size: int
    output_size: int
    matched_sets: int = 0
    components: int = 0
    facts_fragmented: int = 0
    fragments_created: int = 0

    @property
    def blowup(self) -> float:
        """Output-to-input size ratio (the Theorem 13 quantity)."""
        if self.input_size == 0:
            return 1.0
        return self.output_size / self.input_size


def normalize_with_report(
    instance: ConcreteInstance,
    conjunctions: Iterable[TemporalConjunction],
) -> tuple[ConcreteInstance, NormalizationReport]:
    """Algorithm 1 ``norm(Ic, Φ+)`` with an execution report.

    Stages, mirroring the paper's pseudocode:

    1. build ``N(Φ+)`` and the set ``S`` of fact sets ``∆`` jointly
       matched by some ``φ*`` whose stamps have a non-empty common
       intersection;
    2. merge the ``∆``s that share facts until a fixpoint (connected
       components of the share-a-fact graph);
    3. fragment every fact of every component at the component's distinct
       endpoints falling strictly inside the fact's stamp.
    """
    conjunction_list = list(conjunctions)
    report = NormalizationReport(input_size=len(instance), output_size=len(instance))

    union_find = _FactUnionFind()
    matchable: set[ConcreteFact] = set()
    for conjunction in conjunction_list:
        decoupled = conjunction.normalized()
        lifted_atoms = _lift_atoms(decoupled)
        plan = _flat_join_plan(lifted_atoms)
        if plan is not None and len(lifted_atoms) == 2:
            # Inline pair loop for the dominant two-atom decoupled form:
            # the same matches, Δ sets and counts as the generic path
            # below, with the per-match interval test collapsed to two
            # endpoint comparisons (non-empty intersection of two
            # half-open intervals ⟺ each starts before the other ends).
            lifted = instance.lifted()
            resolve = instance.resolve_lifted
            find = union_find.find
            # Registration of a (possibly fresh) member is just "ensure a
            # parent entry exists" — no path to compress yet.
            register = union_find._parent.setdefault
            union = union_find.union
            matched = 0
            add_matchable = matchable.add
            first_atom, second_atom = lifted_atoms
            key_positions = plan.key_positions[1]
            grouped: dict[tuple, list[ConcreteFact]] = {}
            for item in lifted.lookup_ordered(second_atom.relation, {}):
                if item.arity != second_atom.arity:
                    continue
                key = tuple(item.args[position] for position in key_positions)
                grouped.setdefault(key, []).append(resolve(item))
            sources = tuple(position for _atom, position in plan.key_sources[1])
            if (
                first_atom.relation == second_atom.relation
                and first_atom.arity == second_atom.arity
                and sources == key_positions
            ):
                # Symmetric shape (both atoms one relation, join key in the
                # same positions): each group joins with itself, so walk
                # group² directly — no outer scan, no per-fact key lookup.
                # Every member self-matches (both atoms onto one fact), so
                # the whole group is matchable up front and the inner loop
                # only pays for the interval test and real merges.
                for members in grouped.values():
                    matched += len(members)  # the self-pairs
                    matchable.update(members)
                    for item in members:
                        register(item, item)
                    if len(members) == 1:
                        continue
                    enriched = [
                        (item, item.interval.start, item.interval.end)
                        for item in members
                    ]
                    for first, start, end in enriched:
                        for other, other_start, other_end in enriched:
                            if (
                                first is not other
                                and other_start < end
                                and start < other_end
                            ):
                                matched += 1
                                union(first, other)
                report.matched_sets += matched
                continue
            for item in lifted.lookup_ordered(first_atom.relation, {}):
                if item.arity != first_atom.arity:
                    continue
                args = item.args
                key = tuple(args[position] for position in sources)
                partners = grouped.get(key)
                if not partners:
                    continue
                first = resolve(item)
                stamp = first.interval
                start, end = stamp.start, stamp.end
                for other in partners:
                    if first is other or first == other:
                        matched += 1
                        add_matchable(first)
                        find(first)
                        continue
                    second_stamp = other.interval
                    if second_stamp.start < end and start < second_stamp.end:
                        matched += 1
                        add_matchable(first)
                        add_matchable(other)
                        union(first, other)
            report.matched_sets += matched
            continue
        for images in _iter_decoupled_images(decoupled, instance):
            delta = tuple(dict.fromkeys(images))
            stamps = [item.interval for item in delta]
            if _common_interval(stamps) is None:
                continue
            report.matched_sets += 1
            matchable.update(delta)
            first = delta[0]
            union_find.find(first)
            for other in delta[1:]:
                union_find.union(first, other)

    planned: list[tuple[ConcreteFact, tuple[ConcreteFact, ...]]] = []
    for members in union_find.components():
        report.components += 1
        points: set[TimePoint] = set()
        for item in members:
            points.add(item.interval.start)
            points.add(item.interval.end)
        if len(points) == 2:
            # Every member carries the same stamp (two endpoints total):
            # no point can fall strictly inside, nothing fragments.
            continue
        for item in members:
            fragments = item.fragment(points)
            if len(fragments) > 1:
                report.facts_fragmented += 1
                report.fragments_created += len(fragments)
                planned.append((item, fragments))
    # The joins above probed the instance's lifted view, so it is warm.
    # When nothing fragments (the common case for chase targets) the
    # copy carries that warm view to its consumer; when fragments will
    # be replaced, a cold copy is cheaper than paying incremental index
    # maintenance on every replace.
    result = instance.copy(preserve_caches=not planned)
    for item, fragments in planned:
        result.replace(item, fragments)
    report.output_size = len(result)
    return result, report


def normalize(
    instance: ConcreteInstance,
    conjunctions: Iterable[TemporalConjunction],
) -> ConcreteInstance:
    """Algorithm 1 ``norm(Ic, Φ+)`` (see :func:`normalize_with_report`)."""
    result, _report = normalize_with_report(instance, conjunctions)
    return result


def naive_normalize(instance: ConcreteInstance) -> ConcreteInstance:
    """The naïve ``O(n log n)`` normalization (Φ+ ignored).

    Every fact is fragmented at every distinct endpoint of the whole
    instance falling inside its stamp.  The result is normalized w.r.t.
    *any* set of temporal conjunctions, at the price of unnecessary
    fragments (Figure 6); the ablation benchmark quantifies the excess.
    """
    points: set[TimePoint] = set()
    for item in instance.facts():
        points.add(item.interval.start)
        points.add(item.interval.end)
    result = instance.copy()
    for item in instance.facts():
        fragments = item.fragment(points)
        if len(fragments) > 1:
            result.replace(item, fragments)
    return result
