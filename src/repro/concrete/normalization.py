"""Normalization of concrete instances (Section 4.2 of the paper).

Chase steps need homomorphisms from a dependency's left-hand side — whose
atoms share one temporal variable ``t`` — to the concrete instance.  For
``t`` to map to a *single* interval, the facts jointly matched by the lhs
must carry equal stamps.  An instance where this always works is
*normalized* (Definition 7), which Theorem 11 characterizes as the
**empty intersection property** (Definition 10): whenever the
temporally-decoupled form ``φ* ∈ N(Φ+)`` maps onto facts ``f1 … fn``,
their stamps are pairwise disjoint or all equal.

Two normalization algorithms are implemented, exactly as the paper
describes:

* :func:`normalize` — **Algorithm 1** ``norm(Ic, Φ+)``: find the fact
  sets jointly matched by some ``φ*`` with temporally-overlapping stamps,
  merge overlapping sets into components, and fragment each component's
  facts at the component's distinct endpoints.  Output size is ``O(n²)``
  in the worst case (Theorem 13); output is normalized (Theorem 15).
* :func:`naive_normalize` — the ``O(n log n)`` baseline that ignores
  ``Φ+`` and fragments every fact at *all* endpoints of the instance.
  Sound but over-fragments (Figure 6 vs Figure 5).

Match enumeration over the decoupled forms runs on the general flat
written-order join of :mod:`repro.relational.homomorphism`
(:func:`~repro.relational.homomorphism._iter_flat_join_rows`), which
handles any number of all-variable atoms via per-atom join-key groups —
the former two-atom-only fast-path shape detection is gone.

For the dominant two-atom decoupled forms, Algorithm 1's overlap
discovery runs as an **endpoint sweep** per value-equivalence group
(:func:`repro.temporal.interval_set.sweep_overlap_clusters` /
:func:`~repro.temporal.interval_set.sweep_bipartite_clusters`): the
group's intervals are sorted once by their cached sort keys and swept in
``O(g log g)``, producing the same union-find components, the same
matchable facts and the same fragment partition the historical per-pair
enumeration derived in ``O(g²)``.  ``engine="pairwise"`` keeps that
per-pair enumeration as the reference mode the equivalence suites sweep
against.  Under the sweep engine ``NormalizationReport.matched_sets``
counts **overlap sets** (the transitively-overlapping clusters, which is
what the paper's ``S`` collects) while ``matched_pairs`` reconstructs
the historical per-match count exactly — see the report's docstring.

A :class:`NormalizationLog` records every group's sweep outcome and
every component's fragment decisions; a later run on an overlapping
source hands the log back as ``previous=`` and every group whose member
facts are unchanged replays its recorded decisions with zero re-sorting
(the fragment-level mirror of the cross-region replay contract in
:mod:`repro.chase.incremental`, built on the same
:class:`~repro.chase.incremental.ReplayLedger`).
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Literal, Mapping, Sequence

from repro.errors import FormulaError
from repro.chase.incremental import ReplayLedger
from repro.concrete.concrete_fact import ConcreteFact
from repro.concrete.concrete_instance import ConcreteInstance
from repro.relational.formulas import Atom, TemporalConjunction
from repro.relational.homomorphism import (
    _flat_join_plan,
    _iter_join_rows,
    find_homomorphisms_with_images,
)
from repro.relational.terms import Constant, GroundTerm, Variable
from repro.temporal.interval import Interval
from repro.temporal.interval_set import (
    sweep_bipartite_clusters,
    sweep_overlap_clusters,
)
from repro.temporal.timepoint import Infinity

__all__ = [
    "find_temporal_homomorphisms",
    "find_temporal_assignments",
    "interval_of",
    "NormalizationViolation",
    "find_violation",
    "has_empty_intersection_property",
    "is_normalized",
    "NormalizationEngine",
    "NormalizationLog",
    "NormalizationReport",
    "normalize_with_report",
    "normalize",
    "naive_normalize",
]

NormalizationEngine = Literal["sweep", "pairwise"]


# ---------------------------------------------------------------------------
# Temporal homomorphisms via the lifted relational view
# ---------------------------------------------------------------------------


def _lift_atoms(conjunction: TemporalConjunction) -> tuple[Atom, ...]:
    """Append each atom's temporal variable as an ordinary last argument.

    Cached on the conjunction: the chase lifts the same Φ+ members on
    every phase and every round, and stable atom objects keep the search's
    per-atom plan cache warm.
    """
    cached = conjunction._lifted_atoms
    if cached is None:
        cached = tuple(
            Atom(atom.relation, atom.args + (tvar,))
            for atom, tvar in conjunction
        )
        object.__setattr__(conjunction, "_lifted_atoms", cached)
    return cached  # type: ignore[return-value]


def find_temporal_homomorphisms(
    conjunction: TemporalConjunction,
    instance: ConcreteInstance,
    initial: Mapping[Variable, GroundTerm] | None = None,
    copy: bool = True,
) -> Iterator[tuple[dict[Variable, GroundTerm], tuple[ConcreteFact, ...]]]:
    """Homomorphisms from a temporal conjunction into a concrete instance.

    Works uniformly for the shared form ``φ+`` (all atoms must match facts
    with one common stamp) and the decoupled form ``φ*`` (stamps are
    independent): temporal variables are ordinary variables of the lifted
    relational view and bind to ``Constant(interval)`` values.

    Yields the assignment (temporal variables included) and the matched
    concrete facts in atom order.  ``copy=False`` yields the live search
    dict (see :func:`~repro.relational.homomorphism
    .find_homomorphisms_with_images`).
    """
    lifted = _lift_atoms(conjunction)
    resolve = instance.resolve_lifted
    for assignment, images in find_homomorphisms_with_images(
        lifted, instance.lifted(), initial=initial, copy=copy
    ):
        yield assignment, tuple(resolve(item) for item in images)


def find_temporal_assignments(
    conjunction: TemporalConjunction,
    instance: ConcreteInstance,
    initial: Mapping[Variable, GroundTerm] | None = None,
    copy: bool = True,
) -> Iterator[dict[Variable, GroundTerm]]:
    """Like :func:`find_temporal_homomorphisms` but without the images.

    The c-chase phases only need the variable assignment (the matched
    facts are irrelevant once the stamp is known), so they skip the
    per-match resolution of lifted facts back to concrete ones.
    """
    lifted = _lift_atoms(conjunction)
    for assignment, _images in find_homomorphisms_with_images(
        lifted, instance.lifted(), initial=initial, copy=copy
    ):
        yield assignment


def interval_of(
    assignment: Mapping[Variable, GroundTerm], variable: Variable
) -> Interval:
    """Unwrap a temporal variable's binding into an interval."""
    value = assignment[variable]
    if not (isinstance(value, Constant) and isinstance(value.value, Interval)):
        raise FormulaError(
            f"variable {variable} is bound to {value!r}, not a time interval"
        )
    return value.value


def _iter_decoupled_images(
    decoupled: TemporalConjunction, instance: ConcreteInstance
) -> Iterator[tuple[ConcreteFact, ...]]:
    """The image tuples of all ``φ*`` homomorphisms into *instance*.

    Normalization only consumes the matched facts (the Δ sets feed a
    union-find whose outcome is order-independent), so enumeration runs
    as a flat written-order join over the lifted view, uniformly for any
    number of atoms: each atom's candidates come from the pairwise
    intersection of the index buckets of its already-bound positions.
    Every homomorphism produces exactly one image tuple, so the match
    *count* (``NormalizationReport.matched_sets``) is preserved.
    """
    lifted_atoms = _lift_atoms(decoupled)
    lifted = instance.lifted()
    resolve = instance.resolve_lifted
    plan = _flat_join_plan(lifted_atoms)
    if plan is None:
        for _assignment, images in find_homomorphisms_with_images(
            lifted_atoms, lifted, copy=False, atom_order="written"
        ):
            yield tuple(resolve(item) for item in images)
        return
    for row in _iter_join_rows(plan, lifted):
        yield tuple(resolve(item) for item in row)


# ---------------------------------------------------------------------------
# Empty intersection property (Definition 10) and normalizedness checks
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class NormalizationViolation:
    """A witness that the empty intersection property fails.

    The matched facts' stamps intersect without all being equal, so the
    temporal variable of the corresponding shared conjunction cannot be
    mapped to a single interval covering the whole match.
    """

    conjunction: TemporalConjunction
    facts: tuple[ConcreteFact, ...]

    def __str__(self) -> str:
        listed = "; ".join(str(item) for item in self.facts)
        return f"empty intersection property violated by {{{listed}}}"


def _common_interval(stamps: Sequence[Interval]) -> Interval | None:
    """The intersection of all stamps, or ``None`` when empty."""
    common: Interval | None = stamps[0]
    for stamp in stamps[1:]:
        if common is None:
            return None
        common = common.intersect(stamp)
    return common


def find_violation(
    instance: ConcreteInstance,
    conjunctions: Iterable[TemporalConjunction],
) -> NormalizationViolation | None:
    """The first violation of the empty intersection property, or ``None``."""
    for conjunction in conjunctions:
        decoupled = conjunction.normalized()
        for images in _iter_decoupled_images(decoupled, instance):
            distinct = tuple(dict.fromkeys(images))
            stamps = [item.interval for item in distinct]
            common = _common_interval(stamps)
            if common is None:
                continue
            if any(stamp != stamps[0] for stamp in stamps[1:]):
                return NormalizationViolation(conjunction, distinct)
    return None


def has_empty_intersection_property(
    instance: ConcreteInstance,
    conjunctions: Iterable[TemporalConjunction],
) -> bool:
    """Definition 10, decided by exhaustive homomorphism enumeration."""
    return find_violation(instance, list(conjunctions)) is None


def is_normalized(
    instance: ConcreteInstance,
    conjunctions: Iterable[TemporalConjunction],
) -> bool:
    """Normalizedness w.r.t. Φ+ — by Theorem 11, the empty intersection
    property is an exact characterization, and it is what we decide."""
    return has_empty_intersection_property(instance, conjunctions)


# ---------------------------------------------------------------------------
# Algorithm 1: norm(Ic, Φ+)
# ---------------------------------------------------------------------------


class _FactUnionFind:
    """Union-find over concrete facts for the set-merging stage."""

    def __init__(self) -> None:
        self._parent: dict[ConcreteFact, ConcreteFact] = {}

    def find(self, item: ConcreteFact) -> ConcreteFact:
        # Path-halving: one loop, no second compression pass.
        parent = self._parent
        if item not in parent:
            parent[item] = item
            return item
        above = parent[item]
        while above != item:
            grand = parent[above]
            parent[item] = grand
            item = grand
            above = parent[item]
        return item

    def union(self, left: ConcreteFact, right: ConcreteFact) -> None:
        root_left, root_right = self.find(left), self.find(right)
        if root_left != root_right:
            # Deterministic winner keeps components reproducible.
            if root_left.sort_key() <= root_right.sort_key():
                self._parent[root_right] = root_left
            else:
                self._parent[root_left] = root_right

    def components(self) -> list[set[ConcreteFact]]:
        grouped: dict[ConcreteFact, set[ConcreteFact]] = {}
        for item in self._parent:
            grouped.setdefault(self.find(item), set()).add(item)
        return list(grouped.values())


@dataclass
class NormalizationReport:
    """What Algorithm 1 did: inputs, groups and the fragment arithmetic.

    ``matched_sets`` carries **overlap-set semantics** under the default
    sweep engine: per two-atom value-equivalence group it counts the
    transitively-overlapping clusters the sweep discovers (the members
    of the paper's ``S`` after merging within one group), and on the
    generic multi-atom path it counts matched ``Δ`` sets as before.
    ``matched_pairs`` reconstructs the historical count exactly — one
    per ``φ*`` homomorphism whose stamps intersect, self-matches
    included — without enumerating pairs (the sweep counts them in
    ``O(g log g)``).  Under ``engine="pairwise"``, the reference mode,
    both fields carry the historical count.

    ``groups``/``groups_replayed``/``components_replayed`` account for
    fragment-level incremental replay: how many two-atom groups were
    seen, how many replayed a :class:`NormalizationLog` decision
    unchanged, and how many components reused their recorded fragment
    plan.
    """

    input_size: int
    output_size: int
    matched_sets: int = 0
    matched_pairs: int = 0
    components: int = 0
    facts_fragmented: int = 0
    fragments_created: int = 0
    groups: int = 0
    groups_replayed: int = 0
    components_replayed: int = 0
    log: "NormalizationLog | None" = field(default=None, repr=False)

    @property
    def blowup(self) -> float:
        """Output-to-input size ratio (the Theorem 13 quantity)."""
        if self.input_size == 0:
            return 1.0
        return self.output_size / self.input_size


@dataclass
class NormalizationLog:
    """Recorded group→fragment decisions of one normalization run.

    Two ledgers (see :class:`~repro.chase.incremental.ReplayLedger`):

    * ``groups`` — key ``(conjunction index, join key)``, signature the
      frozenset of the group's member facts, payload the sweep outcome
      ``(kind, chains, sets, pairs)`` where *chains* are the fact chains
      to feed the union-find;
    * ``components`` — key and signature both the frozenset of a
      component's members, payload the fragment plan
      ``(planned, fragmented, created)``.

    Replay is value-based: facts recorded in a previous run compare and
    hash equal to the current run's facts, so recorded decisions apply
    directly to the new instance.  A log only replays against the exact
    conjunction list it was recorded for (checked by equality); the
    generic non-two-atom shapes always re-enumerate live, mirroring the
    cross-region replay's "shapes the patcher does not understand run
    live" rule.
    """

    conjunctions: tuple[TemporalConjunction, ...]
    groups: ReplayLedger = field(default_factory=ReplayLedger)
    components: ReplayLedger = field(default_factory=ReplayLedger)


def _build_pair_groups(
    instance: ConcreteInstance,
    lifted_atoms: tuple[Atom, ...],
    plan,
) -> tuple[bool, dict]:
    """The two-atom value-equivalence groups of a decoupled conjunction.

    Returns ``(symmetric, groups)``.  *Symmetric* shapes (one relation,
    join key in the same positions on both atoms) group every candidate
    fact once: ``key → members``.  Asymmetric shapes keep the sides
    apart — ``key → (firsts, seconds)`` — because only cross-side matches
    exist; keys no first-atom fact joins are left with an empty first
    list and skipped by the caller.

    Grouping goes through :meth:`ConcreteInstance.group_index`: the
    decoupled form's join keys never involve the temporal variable, so
    every key position indexes the fact's *data* tuple, and — unlike the
    reference enumeration — no lifted view, sorted bucket or
    lifted→concrete resolution is needed (the sweep sorts by interval
    itself and its outcome is order-independent).  The index is
    maintained incrementally across mutations, so a chained ``c_chase``
    run re-grouping the same shape pays only for the facts that changed
    since the last sweep.
    """
    first_atom, second_atom = lifted_atoms
    key_positions = plan.key_positions[1]
    sources = tuple(position for _atom, position in plan.key_sources[1])
    symmetric = (
        first_atom.relation == second_atom.relation
        and first_atom.arity == second_atom.arity
        and sources == key_positions
    )
    second_arity = second_atom.arity - 1  # data arity: lifted minus interval
    seconds_by_key = instance.group_index(
        second_atom.relation, second_arity, key_positions
    )
    if symmetric:
        return True, seconds_by_key
    firsts_by_key = instance.group_index(
        first_atom.relation, first_atom.arity - 1, sources
    )
    # Only keys with facts on *both* sides can produce a cross-side
    # match; the empty-firsts entries the bucket scan used to carry were
    # skipped by the caller anyway.
    sides_by_key: dict[tuple, tuple[list[ConcreteFact], list[ConcreteFact]]] = {}
    for key, seconds in seconds_by_key.items():
        firsts = firsts_by_key.get(key)
        if firsts is not None:
            sides_by_key[key] = (firsts, seconds)
    return False, sides_by_key


def _sweep_two_atom(
    instance: ConcreteInstance,
    lifted_atoms: tuple[Atom, ...],
    plan,
    conj_index: int,
    union_find: _FactUnionFind,
    report: NormalizationReport,
    replay: "NormalizationLog | None",
    log: "NormalizationLog | None",
) -> None:
    """Endpoint-sweep overlap discovery for a two-atom decoupled form.

    Per group, one ``O(g log g)`` sweep yields the overlap clusters
    (chained into the union-find — the same components the per-pair
    enumeration merges) and both report counts.
    Groups whose member set matches a recorded :class:`NormalizationLog`
    entry replay the recorded chains and counts without sorting anything.
    """
    register = union_find._parent.setdefault
    union = union_find.union
    symmetric, groups = _build_pair_groups(instance, lifted_atoms, plan)
    if symmetric:
        for key, members in groups.items():
            report.groups += 1
            # The signature frozenset only exists for the log paths; the
            # plain run never pays for it.
            signature = (
                frozenset(members)
                if replay is not None or log is not None
                else None
            )
            payload = (
                replay.groups.recall((conj_index, key), signature)
                if replay is not None
                else None
            )
            if payload is None:
                count = len(members)
                if count == 1:
                    # A lone member only self-matches: one overlap set.
                    payload = ((), 1, 0)
                elif count == 2:
                    first, second = members
                    if first.interval.overlaps(second.interval):
                        payload = (((first, second),), 1, 1)
                    else:
                        payload = ((), 2, 0)
                else:
                    clusters, pairs = sweep_overlap_clusters(
                        [item.interval for item in members]
                    )
                    chains = tuple(
                        tuple(members[index] for index in cluster)
                        for cluster in clusters
                        if len(cluster) > 1
                    )
                    payload = (chains, len(clusters), pairs)
            else:
                report.groups_replayed += 1
            chains, sets, pairs = payload
            # Every member self-matches (both atoms onto one fact), so
            # the whole group registers up front.
            for item in members:
                register(item, item)
            for chain in chains:
                base = chain[0]
                for item in chain[1:]:
                    union(base, item)
            report.matched_sets += sets
            report.matched_pairs += len(members) + 2 * pairs
            if log is not None:
                log.groups.record((conj_index, key), signature, payload)
        return
    for key, (firsts, seconds) in groups.items():
        if not firsts:
            continue
        report.groups += 1
        signature = (
            frozenset(firsts).union(seconds)
            if replay is not None or log is not None
            else None
        )
        payload = (
            replay.groups.recall((conj_index, key), signature)
            if replay is not None
            else None
        )
        if payload is None:
            if len(firsts) == 1 or len(seconds) == 1:
                # Star shape: the lone fact is every edge's endpoint, so
                # all its overlap partners form one component with it.
                if len(firsts) == 1:
                    center, others = firsts[0], seconds
                else:
                    center, others = seconds[0], firsts
                stamp = center.interval
                start, end = stamp.start, stamp.end
                chain = [center]
                for item in others:
                    other_stamp = item.interval
                    if other_stamp.start < end and start < other_stamp.end:
                        chain.append(item)
                pairs = len(chain) - 1
                if pairs:
                    payload = ((tuple(chain),), 1, pairs)
                else:
                    payload = ((), 0, 0)
            elif len(firsts) * len(seconds) <= 16:
                # Tiny group: enumerate the few cross edges and merge
                # component lists directly — same components as the
                # sweep, without its event machinery (chain order is
                # irrelevant to the union-find and the counts).
                comp_of: dict[ConcreteFact, list[ConcreteFact]] = {}
                comps: list[list[ConcreteFact]] = []
                pairs = 0
                for first in firsts:
                    stamp = first.interval
                    start, end = stamp.start, stamp.end
                    for second in seconds:
                        other_stamp = second.interval
                        if not (other_stamp.start < end and start < other_stamp.end):
                            continue
                        pairs += 1
                        first_comp = comp_of.get(first)
                        second_comp = comp_of.get(second)
                        if first_comp is None and second_comp is None:
                            comp = [first] if first is second else [first, second]
                            comps.append(comp)
                            comp_of[first] = comp_of[second] = comp
                        elif first_comp is None:
                            second_comp.append(first)
                            comp_of[first] = second_comp
                        elif second_comp is None:
                            first_comp.append(second)
                            comp_of[second] = first_comp
                        elif first_comp is not second_comp:
                            first_comp.extend(second_comp)
                            for member in second_comp:
                                comp_of[member] = first_comp
                            second_comp.clear()
                chains = tuple(tuple(comp) for comp in comps if comp)
                payload = (chains, len(chains), pairs)
            else:
                clusters, pairs = sweep_bipartite_clusters(
                    [item.interval for item in firsts],
                    [item.interval for item in seconds],
                )
                chains = tuple(
                    tuple(firsts[index] for index in left_ids)
                    + tuple(seconds[index] for index in right_ids)
                    for left_ids, right_ids in clusters
                )
                payload = (chains, len(clusters), pairs)
        else:
            report.groups_replayed += 1
        chains, sets, pairs = payload
        # Only facts witnessing a cross-side overlap match (a component
        # with one member has no edge): register exactly those.
        for chain in chains:
            base = chain[0]
            register(base, base)
            for item in chain[1:]:
                union(base, item)
        report.matched_sets += sets
        report.matched_pairs += pairs
        if log is not None:
            log.groups.record((conj_index, key), signature, payload)


def _pairwise_two_atom(
    instance: ConcreteInstance,
    lifted_atoms: tuple[Atom, ...],
    plan,
    union_find: _FactUnionFind,
    report: NormalizationReport,
) -> None:
    """Reference mode: the historical inline per-pair enumeration.

    The PR 2 loops (minus the never-read matchable bookkeeping) — the
    same matches, Δ sets and counts as the generic homomorphism path,
    with the per-match interval test collapsed to two endpoint
    comparisons.  The equivalence suites sweep
    the sweep engine against this; it reports the historical per-match
    count in both ``matched_sets`` and ``matched_pairs``.
    """
    lifted = instance.lifted()
    resolve = instance.resolve_lifted
    find = union_find.find
    # Registration of a (possibly fresh) member is just "ensure a
    # parent entry exists" — no path to compress yet.
    register = union_find._parent.setdefault
    union = union_find.union
    matched = 0
    first_atom, second_atom = lifted_atoms
    key_positions = plan.key_positions[1]
    grouped: dict[tuple, list[ConcreteFact]] = {}
    for item in lifted.lookup_ordered(second_atom.relation, {}):
        if item.arity != second_atom.arity:
            continue
        key = tuple(item.args[position] for position in key_positions)
        grouped.setdefault(key, []).append(resolve(item))
    sources = tuple(position for _atom, position in plan.key_sources[1])
    if (
        first_atom.relation == second_atom.relation
        and first_atom.arity == second_atom.arity
        and sources == key_positions
    ):
        # Symmetric shape: each group joins with itself, so walk group²
        # directly.  Every member self-matches, so the whole group is
        # matchable up front and the inner loop only pays for the
        # interval test and real merges.
        for members in grouped.values():
            matched += len(members)  # the self-pairs
            for item in members:
                register(item, item)
            if len(members) == 1:
                continue
            enriched = [
                (item, item.interval.start, item.interval.end)
                for item in members
            ]
            for first, start, end in enriched:
                for other, other_start, other_end in enriched:
                    if (
                        first is not other
                        and other_start < end
                        and start < other_end
                    ):
                        matched += 1
                        union(first, other)
        report.matched_sets += matched
        report.matched_pairs += matched
        return
    for item in lifted.lookup_ordered(first_atom.relation, {}):
        if item.arity != first_atom.arity:
            continue
        args = item.args
        key = tuple(args[position] for position in sources)
        partners = grouped.get(key)
        if not partners:
            continue
        first = resolve(item)
        stamp = first.interval
        start, end = stamp.start, stamp.end
        for other in partners:
            if first is other or first == other:
                matched += 1
                find(first)
                continue
            second_stamp = other.interval
            if second_stamp.start < end and start < second_stamp.end:
                matched += 1
                union(first, other)
    report.matched_sets += matched
    report.matched_pairs += matched


def _interior_cuts(
    cuts: list[int], stamp: Interval
) -> "list[int]":
    """The slice of sorted *cuts* strictly inside ``(start, end)``.

    One bisection per bound; shared by Algorithm 1's fragment planner
    and :func:`naive_normalize` so the two stay in lockstep (the
    sweep≡naive equivalence suites rely on identical cut selection).
    """
    low = bisect_right(cuts, stamp.start)
    end = stamp.end
    high = len(cuts) if isinstance(end, Infinity) else bisect_left(cuts, end)
    return cuts[low:high]


def _plan_fragments(
    union_find: _FactUnionFind,
    report: NormalizationReport,
    replay: "NormalizationLog | None",
    log: "NormalizationLog | None",
) -> list[tuple[ConcreteFact, tuple[ConcreteFact, ...]]]:
    """Stage 3: fragment every component at its interior endpoints.

    The component's distinct finite endpoints are sorted once; each
    member takes the sub-range strictly inside its own stamp by binary
    search and fragments through the trusted
    :meth:`~repro.concrete.concrete_fact.ConcreteFact.fragment_sorted`
    path — ``O(m log m)`` per component instead of the historical
    every-point-against-every-fact filter.  Components whose member set
    matches a recorded log entry reuse the recorded fragment plan
    outright (the fragment objects are immutable values).
    """
    planned: list[tuple[ConcreteFact, tuple[ConcreteFact, ...]]] = []
    for members in union_find.components():
        report.components += 1
        signature = (
            frozenset(members)
            if replay is not None or log is not None
            else None
        )
        payload = (
            replay.components.recall(signature, signature)
            if replay is not None
            else None
        )
        if payload is None:
            finite: set[int] = set()
            unbounded = False
            for item in members:
                stamp = item.interval
                finite.add(stamp.start)
                end = stamp.end
                if isinstance(end, Infinity):
                    unbounded = True
                else:
                    finite.add(end)
            if len(finite) + (1 if unbounded else 0) == 2:
                # Every member carries the same stamp (two endpoints
                # total): no point can fall strictly inside.
                payload = ((), 0, 0)
            else:
                cuts = sorted(finite)
                plan_items: list[tuple[ConcreteFact, tuple[ConcreteFact, ...]]] = []
                fragmented = 0
                created = 0
                for item in members:
                    interior = _interior_cuts(cuts, item.interval)
                    if not interior:
                        continue
                    fragments = item.fragment_sorted(interior)
                    fragmented += 1
                    created += len(fragments)
                    plan_items.append((item, fragments))
                payload = (tuple(plan_items), fragmented, created)
        else:
            report.components_replayed += 1
        plan_items, fragmented, created = payload
        report.facts_fragmented += fragmented
        report.fragments_created += created
        planned.extend(plan_items)
        if log is not None:
            log.components.record(signature, signature, payload)
    return planned


def normalize_with_report(
    instance: ConcreteInstance,
    conjunctions: Iterable[TemporalConjunction],
    engine: NormalizationEngine = "sweep",
    previous: NormalizationLog | None = None,
    record: bool = False,
) -> tuple[ConcreteInstance, NormalizationReport]:
    """Algorithm 1 ``norm(Ic, Φ+)`` with an execution report.

    Stages, mirroring the paper's pseudocode:

    1. build ``N(Φ+)`` and the set ``S`` of fact sets ``∆`` jointly
       matched by some ``φ*`` whose stamps have a non-empty common
       intersection — per two-atom conjunction, an endpoint sweep per
       value-equivalence group (``engine="pairwise"`` keeps the
       historical per-pair enumeration as the reference mode);
    2. merge the ``∆``s that share facts until a fixpoint (connected
       components of the share-a-fact graph);
    3. fragment every fact of every component at the component's distinct
       endpoints falling strictly inside the fact's stamp.

    *previous* replays an earlier run's :class:`NormalizationLog`: any
    group or component whose facts are unchanged applies its recorded
    decisions without re-sorting (outputs are byte-identical either
    way).  *record* attaches this run's log to ``report.log`` for the
    next run.  Both require the sweep engine.
    """
    conjunction_list = list(conjunctions)
    if engine == "pairwise" and (previous is not None or record):
        raise ValueError(
            "normalization logs require the sweep engine; "
            "engine='pairwise' is the un-logged reference mode"
        )
    replay = None
    if (
        previous is not None
        and previous.conjunctions == tuple(conjunction_list)
    ):
        replay = previous
    log = NormalizationLog(tuple(conjunction_list)) if record else None
    report = NormalizationReport(
        input_size=len(instance), output_size=len(instance), log=log
    )

    union_find = _FactUnionFind()
    for conj_index, conjunction in enumerate(conjunction_list):
        decoupled = conjunction.normalized()
        lifted_atoms = _lift_atoms(decoupled)
        plan = _flat_join_plan(lifted_atoms)
        if plan is not None and len(lifted_atoms) == 2:
            if engine == "pairwise":
                _pairwise_two_atom(
                    instance, lifted_atoms, plan, union_find, report
                )
            else:
                _sweep_two_atom(
                    instance,
                    lifted_atoms,
                    plan,
                    conj_index,
                    union_find,
                    report,
                    replay,
                    log,
                )
            continue
        # Generic shapes (single atom, three-plus atoms, constants):
        # enumerate Δ sets through the flat join — never replayed,
        # mirroring the cross-region rule that shapes the patcher does
        # not understand run live.
        for images in _iter_decoupled_images(decoupled, instance):
            delta = tuple(dict.fromkeys(images))
            stamps = [item.interval for item in delta]
            if _common_interval(stamps) is None:
                continue
            report.matched_sets += 1
            report.matched_pairs += 1
            first = delta[0]
            union_find.find(first)
            for other in delta[1:]:
                union_find.union(first, other)

    planned = _plan_fragments(union_find, report, replay, log)
    # The joins above probed the instance's lifted view, so it is warm.
    # When nothing fragments (the common case for chase targets) the
    # copy carries that warm view to its consumer; when fragments will
    # be replaced, a cold copy is cheaper than paying incremental index
    # maintenance on every replace.
    result = instance.copy(preserve_caches=not planned)
    result.apply_fragments(planned)
    report.output_size = len(result)
    return result, report


def normalize(
    instance: ConcreteInstance,
    conjunctions: Iterable[TemporalConjunction],
    engine: NormalizationEngine = "sweep",
) -> ConcreteInstance:
    """Algorithm 1 ``norm(Ic, Φ+)`` (see :func:`normalize_with_report`)."""
    result, _report = normalize_with_report(instance, conjunctions, engine=engine)
    return result


def naive_normalize(instance: ConcreteInstance) -> ConcreteInstance:
    """The naïve ``O(n log n)`` normalization (Φ+ ignored).

    Every fact is fragmented at every distinct endpoint of the whole
    instance falling inside its stamp.  The result is normalized w.r.t.
    *any* set of temporal conjunctions, at the price of unnecessary
    fragments (Figure 6); the ablation benchmark quantifies the excess.
    The endpoints are sorted once and each fact takes its interior
    sub-range by binary search, so the bound in the name actually holds
    (the historical filter re-scanned every endpoint per fact).
    """
    finite: set[int] = set()
    for item in instance.facts():
        stamp = item.interval
        finite.add(stamp.start)
        end = stamp.end
        if not isinstance(end, Infinity):
            finite.add(end)
    cuts = sorted(finite)
    result = instance.copy()
    for item in instance.facts():
        interior = _interior_cuts(cuts, item.interval)
        if interior:
            result.replace(item, item.fragment_sorted(interior))
    return result
