"""Normalization of concrete instances (Section 4.2 of the paper).

Chase steps need homomorphisms from a dependency's left-hand side — whose
atoms share one temporal variable ``t`` — to the concrete instance.  For
``t`` to map to a *single* interval, the facts jointly matched by the lhs
must carry equal stamps.  An instance where this always works is
*normalized* (Definition 7), which Theorem 11 characterizes as the
**empty intersection property** (Definition 10): whenever the
temporally-decoupled form ``φ* ∈ N(Φ+)`` maps onto facts ``f1 … fn``,
their stamps are pairwise disjoint or all equal.

Two normalization algorithms are implemented, exactly as the paper
describes:

* :func:`normalize` — **Algorithm 1** ``norm(Ic, Φ+)``: find the fact
  sets jointly matched by some ``φ*`` with temporally-overlapping stamps,
  merge overlapping sets into components, and fragment each component's
  facts at the component's distinct endpoints.  Output size is ``O(n²)``
  in the worst case (Theorem 13); output is normalized (Theorem 15).
* :func:`naive_normalize` — the ``O(n log n)`` baseline that ignores
  ``Φ+`` and fragments every fact at *all* endpoints of the instance.
  Sound but over-fragments (Figure 6 vs Figure 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping, Sequence

from repro.errors import FormulaError
from repro.concrete.concrete_fact import ConcreteFact
from repro.concrete.concrete_instance import ConcreteInstance
from repro.relational.formulas import Atom, Conjunction, TemporalConjunction
from repro.relational.homomorphism import find_homomorphisms_with_images
from repro.relational.terms import Constant, GroundTerm, Variable
from repro.temporal.interval import Interval
from repro.temporal.timepoint import Infinity, TimePoint

__all__ = [
    "find_temporal_homomorphisms",
    "find_temporal_assignments",
    "interval_of",
    "NormalizationViolation",
    "find_violation",
    "has_empty_intersection_property",
    "is_normalized",
    "NormalizationReport",
    "normalize_with_report",
    "normalize",
    "naive_normalize",
]


# ---------------------------------------------------------------------------
# Temporal homomorphisms via the lifted relational view
# ---------------------------------------------------------------------------


def _lift_atoms(conjunction: TemporalConjunction) -> tuple[Atom, ...]:
    """Append each atom's temporal variable as an ordinary last argument.

    Cached on the conjunction: the chase lifts the same Φ+ members on
    every phase and every round, and stable atom objects keep the search's
    per-atom plan cache warm.
    """
    cached = conjunction._lifted_atoms
    if cached is None:
        cached = tuple(
            Atom(atom.relation, atom.args + (tvar,))
            for atom, tvar in conjunction
        )
        object.__setattr__(conjunction, "_lifted_atoms", cached)
    return cached  # type: ignore[return-value]


def find_temporal_homomorphisms(
    conjunction: TemporalConjunction,
    instance: ConcreteInstance,
    initial: Mapping[Variable, GroundTerm] | None = None,
    copy: bool = True,
) -> Iterator[tuple[dict[Variable, GroundTerm], tuple[ConcreteFact, ...]]]:
    """Homomorphisms from a temporal conjunction into a concrete instance.

    Works uniformly for the shared form ``φ+`` (all atoms must match facts
    with one common stamp) and the decoupled form ``φ*`` (stamps are
    independent): temporal variables are ordinary variables of the lifted
    relational view and bind to ``Constant(interval)`` values.

    Yields the assignment (temporal variables included) and the matched
    concrete facts in atom order.  ``copy=False`` yields the live search
    dict (see :func:`~repro.relational.homomorphism
    .find_homomorphisms_with_images`).
    """
    lifted = _lift_atoms(conjunction)
    resolve = instance.resolve_lifted
    for assignment, images in find_homomorphisms_with_images(
        lifted, instance.lifted(), initial=initial, copy=copy
    ):
        yield assignment, tuple(resolve(item) for item in images)


def find_temporal_assignments(
    conjunction: TemporalConjunction,
    instance: ConcreteInstance,
    initial: Mapping[Variable, GroundTerm] | None = None,
    copy: bool = True,
) -> Iterator[dict[Variable, GroundTerm]]:
    """Like :func:`find_temporal_homomorphisms` but without the images.

    The c-chase phases only need the variable assignment (the matched
    facts are irrelevant once the stamp is known), so they skip the
    per-match resolution of lifted facts back to concrete ones.
    """
    lifted = _lift_atoms(conjunction)
    for assignment, _images in find_homomorphisms_with_images(
        lifted, instance.lifted(), initial=initial, copy=copy
    ):
        yield assignment


def interval_of(
    assignment: Mapping[Variable, GroundTerm], variable: Variable
) -> Interval:
    """Unwrap a temporal variable's binding into an interval."""
    value = assignment[variable]
    if not (isinstance(value, Constant) and isinstance(value.value, Interval)):
        raise FormulaError(
            f"variable {variable} is bound to {value!r}, not a time interval"
        )
    return value.value


def _decoupled_pair_shape(
    atoms: Sequence[Atom],
) -> tuple[str, int, str, int, list[tuple[int, int]]] | None:
    """Detect a two-atom decoupled form whose args are distinct variables.

    Returns ``(rel1, arity1, rel2, arity2, shared)`` where *shared* pairs
    up the positions carrying each variable common to both atoms, or
    ``None`` when the shape (constants, repeated variables, ≠2 atoms)
    needs the generic search.
    """
    if len(atoms) != 2:
        return None
    first, second = atoms
    args1, args2 = first.args, second.args
    if not all(isinstance(arg, Variable) for arg in args1 + args2):
        return None
    if len(set(args1)) != len(args1) or len(set(args2)) != len(args2):
        return None
    index2 = {arg: position for position, arg in enumerate(args2)}
    shared = [
        (position, index2[arg])
        for position, arg in enumerate(args1)
        if arg in index2
    ]
    return first.relation, first.arity, second.relation, second.arity, shared


def _iter_decoupled_images(
    decoupled: TemporalConjunction, instance: ConcreteInstance
) -> Iterator[tuple[ConcreteFact, ...]]:
    """The image tuples of all ``φ*`` homomorphisms into *instance*.

    Normalization only consumes the matched facts (the Δ sets feed a
    union-find whose outcome is order-independent), so the common
    two-atom decoupled form takes a flat join-on-shared-variables path
    instead of the generic backtracking search.  Every homomorphism
    produces exactly one image tuple either way, so the match *count*
    (``NormalizationReport.matched_sets``) is preserved.
    """
    lifted_atoms = _lift_atoms(decoupled)
    shape = _decoupled_pair_shape(lifted_atoms)
    if shape is None:
        for _assignment, images in find_temporal_homomorphisms(
            decoupled, instance, copy=False
        ):
            yield images
        return
    rel1, arity1, rel2, arity2, shared = shape
    lifted = instance.lifted()
    resolve = instance.resolve_lifted
    outer = [
        resolve(item)
        for item in lifted.lookup_ordered(rel1, {})
        if item.arity == arity1
    ]
    groups: dict[tuple, list[ConcreteFact]] = {}
    for item in lifted.lookup_ordered(rel2, {}):
        if item.arity != arity2:
            continue
        key = tuple(item.args[position] for _, position in shared)
        groups.setdefault(key, []).append(resolve(item))
    for first_image in outer:
        lifted_args = first_image.lifted().args
        key = tuple(lifted_args[position] for position, _ in shared)
        for second_image in groups.get(key, ()):
            yield first_image, second_image


# ---------------------------------------------------------------------------
# Empty intersection property (Definition 10) and normalizedness checks
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class NormalizationViolation:
    """A witness that the empty intersection property fails.

    The matched facts' stamps intersect without all being equal, so the
    temporal variable of the corresponding shared conjunction cannot be
    mapped to a single interval covering the whole match.
    """

    conjunction: TemporalConjunction
    facts: tuple[ConcreteFact, ...]

    def __str__(self) -> str:
        listed = "; ".join(str(item) for item in self.facts)
        return f"empty intersection property violated by {{{listed}}}"


def _common_interval(stamps: Sequence[Interval]) -> Interval | None:
    """The intersection of all stamps, or ``None`` when empty."""
    common: Interval | None = stamps[0]
    for stamp in stamps[1:]:
        if common is None:
            return None
        common = common.intersect(stamp)
    return common


def find_violation(
    instance: ConcreteInstance,
    conjunctions: Iterable[TemporalConjunction],
) -> NormalizationViolation | None:
    """The first violation of the empty intersection property, or ``None``."""
    for conjunction in conjunctions:
        decoupled = conjunction.normalized()
        for images in _iter_decoupled_images(decoupled, instance):
            distinct = tuple(dict.fromkeys(images))
            stamps = [item.interval for item in distinct]
            common = _common_interval(stamps)
            if common is None:
                continue
            if any(stamp != stamps[0] for stamp in stamps[1:]):
                return NormalizationViolation(conjunction, distinct)
    return None


def has_empty_intersection_property(
    instance: ConcreteInstance,
    conjunctions: Iterable[TemporalConjunction],
) -> bool:
    """Definition 10, decided by exhaustive homomorphism enumeration."""
    return find_violation(instance, list(conjunctions)) is None


def is_normalized(
    instance: ConcreteInstance,
    conjunctions: Iterable[TemporalConjunction],
) -> bool:
    """Normalizedness w.r.t. Φ+ — by Theorem 11, the empty intersection
    property is an exact characterization, and it is what we decide."""
    return has_empty_intersection_property(instance, conjunctions)


# ---------------------------------------------------------------------------
# Algorithm 1: norm(Ic, Φ+)
# ---------------------------------------------------------------------------


class _FactUnionFind:
    """Union-find over concrete facts for the set-merging stage."""

    def __init__(self) -> None:
        self._parent: dict[ConcreteFact, ConcreteFact] = {}

    def find(self, item: ConcreteFact) -> ConcreteFact:
        self._parent.setdefault(item, item)
        root = item
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[item] != root:
            self._parent[item], item = root, self._parent[item]
        return root

    def union(self, left: ConcreteFact, right: ConcreteFact) -> None:
        root_left, root_right = self.find(left), self.find(right)
        if root_left != root_right:
            # Deterministic winner keeps components reproducible.
            if root_left.sort_key() <= root_right.sort_key():
                self._parent[root_right] = root_left
            else:
                self._parent[root_left] = root_right

    def components(self) -> list[set[ConcreteFact]]:
        grouped: dict[ConcreteFact, set[ConcreteFact]] = {}
        for item in self._parent:
            grouped.setdefault(self.find(item), set()).add(item)
        return list(grouped.values())


@dataclass
class NormalizationReport:
    """What Algorithm 1 did: inputs, groups and the fragment arithmetic."""

    input_size: int
    output_size: int
    matched_sets: int = 0
    components: int = 0
    facts_fragmented: int = 0
    fragments_created: int = 0

    @property
    def blowup(self) -> float:
        """Output-to-input size ratio (the Theorem 13 quantity)."""
        if self.input_size == 0:
            return 1.0
        return self.output_size / self.input_size


def normalize_with_report(
    instance: ConcreteInstance,
    conjunctions: Iterable[TemporalConjunction],
) -> tuple[ConcreteInstance, NormalizationReport]:
    """Algorithm 1 ``norm(Ic, Φ+)`` with an execution report.

    Stages, mirroring the paper's pseudocode:

    1. build ``N(Φ+)`` and the set ``S`` of fact sets ``∆`` jointly
       matched by some ``φ*`` whose stamps have a non-empty common
       intersection;
    2. merge the ``∆``s that share facts until a fixpoint (connected
       components of the share-a-fact graph);
    3. fragment every fact of every component at the component's distinct
       endpoints falling strictly inside the fact's stamp.
    """
    conjunction_list = list(conjunctions)
    report = NormalizationReport(input_size=len(instance), output_size=len(instance))

    union_find = _FactUnionFind()
    matchable: set[ConcreteFact] = set()
    for conjunction in conjunction_list:
        decoupled = conjunction.normalized()
        for images in _iter_decoupled_images(decoupled, instance):
            delta = tuple(dict.fromkeys(images))
            stamps = [item.interval for item in delta]
            if _common_interval(stamps) is None:
                continue
            report.matched_sets += 1
            matchable.update(delta)
            first = delta[0]
            union_find.find(first)
            for other in delta[1:]:
                union_find.union(first, other)

    result = instance.copy()
    for members in union_find.components():
        report.components += 1
        points: set[TimePoint] = set()
        for item in members:
            points.add(item.interval.start)
            points.add(item.interval.end)
        for item in members:
            fragments = item.fragment(points)
            if len(fragments) > 1:
                report.facts_fragmented += 1
                report.fragments_created += len(fragments)
                result.replace(item, fragments)
    report.output_size = len(result)
    return result, report


def normalize(
    instance: ConcreteInstance,
    conjunctions: Iterable[TemporalConjunction],
) -> ConcreteInstance:
    """Algorithm 1 ``norm(Ic, Φ+)`` (see :func:`normalize_with_report`)."""
    result, _report = normalize_with_report(instance, conjunctions)
    return result


def naive_normalize(instance: ConcreteInstance) -> ConcreteInstance:
    """The naïve ``O(n log n)`` normalization (Φ+ ignored).

    Every fact is fragmented at every distinct endpoint of the whole
    instance falling inside its stamp.  The result is normalized w.r.t.
    *any* set of temporal conjunctions, at the price of unnecessary
    fragments (Figure 6); the ablation benchmark quantifies the excess.
    """
    points: set[TimePoint] = set()
    for item in instance.facts():
        points.add(item.interval.start)
        points.add(item.interval.end)
    result = instance.copy()
    for item in instance.facts():
        fragments = item.fragment(points)
        if len(fragments) > 1:
            result.replace(item, fragments)
    return result
