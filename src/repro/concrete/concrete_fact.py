"""Interval-stamped facts over the concrete schema ``R+``.

A concrete fact ``R+(a1, …, an, [s, e))`` pairs data attribute values with
a time interval.  Data values are constants or interval-annotated nulls;
the paper's standing assumption — every annotated null in a fact carries
the fact's own interval — is enforced as a construction invariant.

Fragmentation (:meth:`ConcreteFact.fragment`) is the primitive both
normalization algorithms are built from: splitting the stamp splits the
fact, and the nulls are re-annotated to each fragment's stamp
(Section 4.2, Example 12).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.errors import InstanceError, TemporalError
from repro.relational.fact import Fact
from repro.relational.terms import (
    AnnotatedNull,
    Constant,
    GroundTerm,
    LabeledNull,
    Term,
    term_sort_key,
)
from repro.temporal.interval import Interval
from repro.temporal.timepoint import TimePoint

__all__ = ["ConcreteFact", "concrete_fact"]


# Interned interval constants for the lifted view: many facts share one
# stamp, and a shared Constant carries its cached hash and sort key with
# it (fresh ones would recompute both on first use, per fact).  Capped so
# a long-running process over ever-new timestamps cannot grow it without
# bound — clearing only costs re-interning, never correctness (constants
# compare by value).
_INTERVAL_CONSTANTS: dict[Interval, Constant] = {}
_INTERVAL_CONSTANTS_CAP = 4096


def _interval_constant(interval: Interval) -> Constant:
    cached = _INTERVAL_CONSTANTS.get(interval)
    if cached is None:
        if len(_INTERVAL_CONSTANTS) >= _INTERVAL_CONSTANTS_CAP:
            _INTERVAL_CONSTANTS.clear()
        cached = Constant(interval)
        _INTERVAL_CONSTANTS[interval] = cached
    return cached


@dataclass(frozen=True, slots=True)
class ConcreteFact:
    """An immutable concrete fact: relation, data values, time interval.

    Hash, sort key and the lifted relational twin are all cached — the
    chase and normalization recompute them constantly on the same facts.
    """

    relation: str
    data: tuple[GroundTerm, ...]
    interval: Interval
    _hash: int = field(default=0, init=False, repr=False, compare=False)
    _sort_key: tuple | None = field(
        default=None, init=False, repr=False, compare=False
    )
    _lifted: Fact | None = field(
        default=None, init=False, repr=False, compare=False
    )

    def __hash__(self) -> int:
        cached = self._hash
        if cached == 0:
            cached = hash((self.relation, self.data, self.interval)) or -2
            object.__setattr__(self, "_hash", cached)
        return cached

    def __getstate__(self):
        # Identity fields only: cached hashes are salted per process and
        # the lifted twin / sort key rebuild lazily on first use.
        return (self.relation, self.data, self.interval)

    def __setstate__(self, state) -> None:
        relation, data, interval = state
        object.__setattr__(self, "relation", relation)
        object.__setattr__(self, "data", data)
        object.__setattr__(self, "interval", interval)
        object.__setattr__(self, "_hash", 0)
        object.__setattr__(self, "_sort_key", None)
        object.__setattr__(self, "_lifted", None)

    def __post_init__(self) -> None:
        if not self.relation:
            raise InstanceError("concrete fact relation name must be non-empty")
        for value in self.data:
            if isinstance(value, LabeledNull):
                raise InstanceError(
                    f"concrete facts use interval-annotated nulls, not labeled "
                    f"nulls: {value!r} in {self.relation}"
                )
            if isinstance(value, AnnotatedNull):
                if value.annotation != self.interval:
                    raise InstanceError(
                        f"annotated null {value} does not carry the fact's "
                        f"interval {self.interval}"
                    )
            elif not isinstance(value, Constant):
                raise InstanceError(
                    f"concrete fact values must be constants or annotated "
                    f"nulls, got {value!r}"
                )

    @classmethod
    def make(
        cls, relation: str, data: tuple[GroundTerm, ...], interval: Interval
    ) -> "ConcreteFact":
        """Trusted constructor: the caller guarantees the construction
        invariant (data values are constants or annotated nulls carrying
        *interval*).  The chase fire path instantiates facts from values
        that satisfy it by construction; this skips the dataclass
        ``__init__``/validation machinery.
        """
        self = object.__new__(cls)
        object.__setattr__(self, "relation", relation)
        object.__setattr__(self, "data", data)
        object.__setattr__(self, "interval", interval)
        object.__setattr__(self, "_hash", 0)
        object.__setattr__(self, "_sort_key", None)
        object.__setattr__(self, "_lifted", None)
        return self

    # -- accessors ---------------------------------------------------------
    @property
    def arity(self) -> int:
        """Data arity (the temporal attribute not counted)."""
        return len(self.data)

    def nulls(self) -> tuple[AnnotatedNull, ...]:
        return tuple(v for v in self.data if isinstance(v, AnnotatedNull))

    def constants(self) -> tuple[Constant, ...]:
        return tuple(v for v in self.data if isinstance(v, Constant))

    def has_nulls(self) -> bool:
        return any(isinstance(v, AnnotatedNull) for v in self.data)

    def data_shape(self) -> tuple:
        """The data values with annotated nulls reduced to their base name.

        Two facts with the same shape are fragments of one unknown-carrying
        fact (or value-equal), which is the grouping key for null-aware
        coalescing.
        """
        return tuple(
            ("~null", v.base) if isinstance(v, AnnotatedNull) else v
            for v in self.data
        )

    # -- temporal operations ----------------------------------------------------
    def with_interval(self, stamp: Interval) -> "ConcreteFact":
        """The same data over a *sub-interval*; nulls are re-annotated."""
        if not self.interval.contains_interval(stamp):
            raise TemporalError(
                f"{stamp} is not a sub-interval of {self.interval} in {self}"
            )
        new_data = tuple(
            v.reannotate(stamp) if isinstance(v, AnnotatedNull) else v
            for v in self.data
        )
        # Trusted: containment was checked above and every null was just
        # re-annotated to the new stamp.
        return ConcreteFact.make(self.relation, new_data, stamp)

    def fragment(self, points: Iterable[TimePoint]) -> tuple["ConcreteFact", ...]:
        """Split the fact at the given time points (paper: the ``frg`` step).

        Points outside the open interval are ignored; nulls of each
        fragment are re-annotated to the fragment's stamp.
        """
        stamps = self.interval.split_at(points)
        if len(stamps) == 1:
            return (self,)
        return tuple(self.with_interval(stamp) for stamp in stamps)

    def fragment_sorted(self, cuts: Iterable[TimePoint]) -> tuple["ConcreteFact", ...]:
        """Trusted :meth:`fragment`: *cuts* pre-sorted and strictly interior.

        The sweep engine hands each fact the bisected slice of its
        component's sorted endpoint array, so no per-fact filtering
        happens here (see :meth:`Interval.split_at_sorted`).
        """
        stamps = self.interval.split_at_sorted(cuts)  # type: ignore[arg-type]
        if len(stamps) == 1:
            return (self,)
        return tuple(self.with_interval(stamp) for stamp in stamps)

    def at(self, point: int) -> Fact:
        """The snapshot-level fact at time ℓ (annotated nulls projected)."""
        if point not in self.interval:
            raise TemporalError(f"{point} outside {self.interval} in {self}")
        args = tuple(
            v.project(point) if isinstance(v, AnnotatedNull) else v
            for v in self.data
        )
        return Fact(self.relation, args)

    def lifted(self) -> Fact:
        """The fact as a flat relational tuple with the interval as the
        last column (wrapped as a constant).

        This drives homomorphism search on concrete instances: temporal
        variables unify with ``Constant(interval)`` values, which is
        exactly the paper's "intervals behave as constants" reading.
        """
        cached = self._lifted
        if cached is None:
            # Trusted: data values are ground by the construction invariant.
            cached = Fact.make(
                self.relation,
                self.data + (_interval_constant(self.interval),),
            )
            object.__setattr__(self, "_lifted", cached)
        return cached

    # -- transformation ----------------------------------------------------------
    def substitute(self, mapping: dict[Term, Term]) -> "ConcreteFact":
        """Replace data values per *mapping* (egd c-chase steps)."""
        new_data = tuple(mapping.get(v, v) for v in self.data)
        return ConcreteFact(self.relation, new_data, self.interval)  # type: ignore[arg-type]

    # -- ordering and rendering --------------------------------------------------
    def sort_key(self) -> tuple:
        cached = self._sort_key
        if cached is None:
            cached = (
                self.relation,
                tuple([term_sort_key(v) for v in self.data]),
                self.interval.sort_key(),
            )
            object.__setattr__(self, "_sort_key", cached)
        return cached

    def __str__(self) -> str:
        rendered = ", ".join(str(v) for v in self.data)
        return f"{self.relation}+({rendered}, {self.interval})"

    def __repr__(self) -> str:
        return f"ConcreteFact({self.relation!r}, {self.data!r}, {self.interval!r})"


def concrete_fact(
    relation: str, *values: object, interval: Interval
) -> ConcreteFact:
    """Convenience constructor wrapping raw Python values as constants.

    ``concrete_fact("E", "Ada", "IBM", interval=interval(2012, 2014))``
    builds ``E+(Ada, IBM, [2012, 2014))``.  Term instances pass through.
    """
    data: list[GroundTerm] = []
    for value in values:
        if isinstance(value, Term):
            data.append(value)  # type: ignore[arg-type]
        else:
            data.append(Constant(value))
    return ConcreteFact(relation, tuple(data), interval)
