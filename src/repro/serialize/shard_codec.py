"""Compact binary wire format for the process-pool region scheduler.

The abstract chase's ``processes`` executor ships each shard's work to a
worker process and the finished results back.  Generic pickle pays a
per-object protocol cost on every term, fact and trace record; this
codec instead writes **one flat message** with interned tables:

* a **string heap** — every relation name, null name, dependency label
  and constant string is stored once and referenced by index;
* an **interval table** — ``[start, end)`` pairs (``-1`` encodes ∞),
  shared by region lists, template stamps and annotated nulls;
* a **term table** — constants / labeled nulls / annotated nulls, each
  encoded once per payload; decoded term objects are therefore *shared*
  across all facts of a payload, so hash and sort-key caches amortize
  exactly as they do in a live chase;
* a **fact table** — flat ``(relation, arity, term…)`` rows referenced
  by index from instances and trace records;
* a **record table** — tgd/egd/failure step records, interned by object
  identity so records shared between traces (the incremental replay
  contract of :mod:`repro.chase.trace`) are encoded once.

All structure lives in a single ``int64`` array (decoded with one
``array('q').frombytes`` call); strings, floats and rare opaque blobs
live in side sections.  Constant values that are not strings, ints,
bools, floats, ``None`` or :class:`Interval` fall back to a pickled blob
— correctness over compactness for exotic values.  Exchange settings are
embedded through the existing JSON codec (:func:`setting_to_json`): they
are tiny, and the textual dependency syntax is the library's canonical
serialized form.

Messages are only meant to cross a pipe — or a shared-memory segment,
see :mod:`repro.serialize.shm` — between processes of one run on one
machine; the header still carries a magic, a version and the byte order
so a stale or foreign payload fails loudly instead of decoding garbage.

Decoding is *lazy by section*: the term, fact and record tables are each
length-prefixed, so constructing a decoder copies the flat ``int64``
stream (one ``frombytes``) and parses nothing else.  The tables
materialize on first access — the parent of a process-pool run merges
pre-annotated templates and never touches the per-region fact tables or
traces, so the dominant decode cost simply never runs on its critical
path.  Payloads may be ``bytes`` or a ``memoryview`` (a mapped
shared-memory segment); either way nothing references the buffer once
the decoder is constructed, so the segment can be unmapped immediately.
"""

from __future__ import annotations

import json
import pickle
import struct
import sys
from array import array
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Iterator, Sequence

from repro.errors import (
    RemoteShardError,
    SerializationError,
    ShardExecutionError,
)
from repro.abstract_view.abstract_instance import AbstractInstance, TemplateFact
from repro.chase.incremental import RegionReuseStats
from repro.chase.standard import SnapshotChaseResult
from repro.chase.trace import (
    ChaseTrace,
    EgdStepRecord,
    FailureRecord,
    TgdStepRecord,
)
from repro.dependencies.mapping import DataExchangeSetting
from repro.relational.fact import Fact
from repro.relational.instance import Instance
from repro.relational.terms import (
    AnnotatedNull,
    Constant,
    GroundTerm,
    LabeledNull,
    Variable,
)
from repro.serialize.jsonio import setting_from_json, setting_to_json
from repro.temporal.interval import Interval
from repro.temporal.timepoint import INFINITY, Infinity

if TYPE_CHECKING:  # pragma: no cover — import cycle: abstract_chase uses us lazily
    from repro.abstract_view.abstract_chase import ShardReport

__all__ = [
    "ShardTask",
    "ShardOutcome",
    "encode_shard_task",
    "decode_shard_task",
    "encode_shard_outcome",
    "decode_shard_outcome",
    "encode_instance",
    "decode_instance",
    "encode_abstract_instance",
    "decode_abstract_instance",
    "encode_setting",
    "decode_setting",
]

_MAGIC = b"TDX2"
_BYTEORDER = 0 if sys.byteorder == "little" else 1
_INT64_MIN = -(2**63)
_INT64_MAX = 2**63 - 1

# Term tags (term-table entries).
_T_CONST_STR = 0
_T_CONST_INT = 1
_T_CONST_TRUE = 2
_T_CONST_FALSE = 3
_T_CONST_NONE = 4
_T_CONST_FLOAT = 5
_T_CONST_BLOB = 6
_T_CONST_INTERVAL = 7
_T_LABELED_NULL = 8
_T_ANNOTATED_NULL = 9

# Record tags (record-table entries).
_R_TGD = 0
_R_EGD = 1
_R_FAILURE = 2

# Message kinds (first int of the body).
_MSG_TASK = 1
_MSG_OUTCOME = 2
_MSG_INSTANCE = 3
_MSG_ABSTRACT = 4
_MSG_SETTING = 5


# ---------------------------------------------------------------------------
# Task / outcome containers
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ShardTask:
    """Everything one worker process needs to chase one region block.

    *templates* is the source restricted to the block's span — a
    template is relevant iff its stamp overlaps the block, because block
    regions are drawn from the canonical partition.  *prefix*/*counter*
    reconstruct the shard's :class:`~repro.chase.nulls.NullFactory`
    exactly, which is what keeps worker null numbering byte-identical
    to an in-process run of the same block.
    """

    shard: int
    prefix: str
    counter: int
    variant: str
    engine: str
    incremental: bool
    regions: tuple[Interval, ...]
    templates: tuple[TemplateFact, ...]
    setting: DataExchangeSetting


@dataclass(frozen=True)
class ShardOutcome:
    """One worker's finished block, mirroring the in-process outcome.

    *merged_templates* is the shard's pre-merged contribution to the
    final abstract target (computed in the worker), so the parent's
    merge concatenates instead of re-annotating every fact serially.
    """

    results: tuple[tuple[Interval, SnapshotChaseResult], ...]
    region_reuse: dict[Interval, RegionReuseStats]
    error: ShardExecutionError | None
    report: "ShardReport"
    merged_templates: Sequence[TemplateFact] = ()


# ---------------------------------------------------------------------------
# Encoder
# ---------------------------------------------------------------------------


class _Encoder:
    """Accumulates interned tables plus a body int stream, then assembles."""

    def __init__(self) -> None:
        self.body: list[int] = []
        self._strings: list[str] = []
        self._string_ids: dict[str, int] = {}
        self._floats: list[float] = []
        self._blobs: list[bytes] = []
        self._intervals: list[int] = []
        self._interval_ids: dict[Interval, int] = {}
        self._terms: list[int] = []
        self._term_count = 0
        # Keyed on an identity that distinguishes constant value TYPES:
        # Constant(True) == Constant(1) == Constant(1.0) under Python
        # equality, but collapsing them onto one wire entry would make
        # the decoded output render the first-seen representative —
        # breaking byte-identity with the in-process run.
        self._term_ids: dict[object, int] = {}
        self._facts: list[int] = []
        self._fact_count = 0
        # Same type-distinguishing identity as the term table: facts
        # over equal-but-differently-typed constants must not collapse.
        self._fact_ids: dict[object, int] = {}
        self._records: list[int] = []
        self._record_count = 0
        self._record_ids: dict[int, int] = {}

    # -- tables -------------------------------------------------------------
    def string(self, value: str) -> int:
        found = self._string_ids.get(value)
        if found is None:
            found = len(self._strings)
            self._strings.append(value)
            self._string_ids[value] = found
        return found

    def float_ref(self, value: float) -> int:
        self._floats.append(value)
        return len(self._floats) - 1

    def blob(self, value: bytes) -> int:
        self._blobs.append(value)
        return len(self._blobs) - 1

    def interval(self, value: Interval) -> int:
        found = self._interval_ids.get(value)
        if found is None:
            found = len(self._interval_ids)
            self._interval_ids[value] = found
            end = -1 if isinstance(value.end, Infinity) else value.end
            self._intervals.append(value.start)
            self._intervals.append(end)
        return found

    @staticmethod
    def _term_key(value: GroundTerm) -> object:
        if isinstance(value, Constant):
            return (Constant, value.value.__class__, value.value)
        return value

    def term(self, value: GroundTerm) -> int:
        key = self._term_key(value)
        found = self._term_ids.get(key)
        if found is not None:
            return found
        out = self._terms
        if isinstance(value, Constant):
            inner = value.value
            if isinstance(inner, bool):
                out.append(_T_CONST_TRUE if inner else _T_CONST_FALSE)
            elif isinstance(inner, str):
                out.append(_T_CONST_STR)
                out.append(self.string(inner))
            elif (
                isinstance(inner, int)
                and _INT64_MIN <= inner <= _INT64_MAX
            ):
                out.append(_T_CONST_INT)
                out.append(inner)
            elif inner is None:
                out.append(_T_CONST_NONE)
            elif isinstance(inner, float):
                out.append(_T_CONST_FLOAT)
                out.append(self.float_ref(inner))
            elif isinstance(inner, Interval):
                out.append(_T_CONST_INTERVAL)
                out.append(self.interval(inner))
            else:
                out.append(_T_CONST_BLOB)
                out.append(self.blob(pickle.dumps(inner, protocol=4)))
        elif isinstance(value, LabeledNull):
            out.append(_T_LABELED_NULL)
            out.append(self.string(value.name))
        elif isinstance(value, AnnotatedNull):
            out.append(_T_ANNOTATED_NULL)
            out.append(self.string(value.base))
            out.append(self.interval(value.annotation))
        else:
            raise SerializationError(f"cannot encode term {value!r}")
        found = self._term_count
        self._term_count = found + 1
        self._term_ids[key] = found
        return found

    def fact(self, value: Fact) -> int:
        key = (
            value.relation,
            tuple(self._term_key(arg) for arg in value.args),
        )
        found = self._fact_ids.get(key)
        if found is not None:
            return found
        out = self._facts
        out.append(self.string(value.relation))
        out.append(len(value.args))
        for arg in value.args:
            out.append(self.term(arg))
        found = self._fact_count
        self._fact_count = found + 1
        self._fact_ids[key] = found
        return found

    def record(
        self, value: TgdStepRecord | EgdStepRecord | FailureRecord
    ) -> int:
        # Identity interning: records shared between traces (the
        # incremental replay contract) encode once; TgdStepRecord holds
        # a dict and cannot be value-hashed.
        found = self._record_ids.get(id(value))
        if found is not None:
            return found
        out = self._records
        if isinstance(value, TgdStepRecord):
            out.append(_R_TGD)
            out.append(self.string(value.dependency))
            out.append(len(value.assignment))
            for variable, bound in value.assignment.items():
                out.append(self.string(variable.name))
                out.append(self.term(bound))
            out.append(len(value.added_facts))
            for item in value.added_facts:
                out.append(self.fact(item))
            out.append(len(value.fresh_nulls))
            for null in value.fresh_nulls:
                out.append(self.term(null))
        elif isinstance(value, EgdStepRecord):
            out.append(_R_EGD)
            out.append(self.string(value.dependency))
            out.append(self.term(value.replaced))  # type: ignore[arg-type]
            out.append(self.term(value.replacement))  # type: ignore[arg-type]
        elif isinstance(value, FailureRecord):
            out.append(_R_FAILURE)
            out.append(self.string(value.dependency))
            out.append(self.term(value.left))  # type: ignore[arg-type]
            out.append(self.term(value.right))  # type: ignore[arg-type]
        else:
            raise SerializationError(f"cannot encode trace record {value!r}")
        found = self._record_count
        self._record_count = found + 1
        self._record_ids[id(value)] = found
        return found

    # -- assembly -----------------------------------------------------------
    def assemble(self, kind: int) -> bytes:
        ints: list[int] = [kind]
        ints.append(len(self._interval_ids))
        ints.extend(self._intervals)
        # Terms, facts and records are each length-prefixed so the
        # decoder can skip any of them wholesale and materialize it on
        # first access — the parent of a process-pool run merges
        # pre-annotated templates (terms only) and never reads the
        # per-region fact tables or traces.
        ints.append(self._term_count)
        ints.append(len(self._terms))
        ints.extend(self._terms)
        ints.append(self._fact_count)
        ints.append(len(self._facts))
        ints.extend(self._facts)
        ints.append(self._record_count)
        ints.append(len(self._records))
        ints.extend(self._records)
        ints.extend(self.body)

        pieces: list[bytes] = [_MAGIC, bytes([_BYTEORDER])]
        strings_blob = bytearray()
        strings_blob += struct.pack("<I", len(self._strings))
        for value in self._strings:
            raw = value.encode("utf-8")
            strings_blob += struct.pack("<I", len(raw))
            strings_blob += raw
        pieces.append(struct.pack("<Q", len(strings_blob)))
        pieces.append(bytes(strings_blob))

        blobs_blob = bytearray()
        blobs_blob += struct.pack("<I", len(self._blobs))
        for raw in self._blobs:
            blobs_blob += struct.pack("<I", len(raw))
            blobs_blob += raw
        pieces.append(struct.pack("<Q", len(blobs_blob)))
        pieces.append(bytes(blobs_blob))

        floats_raw = array("d", self._floats).tobytes()
        pieces.append(struct.pack("<Q", len(self._floats)))
        pieces.append(floats_raw)

        ints_raw = array("q", ints).tobytes()
        pieces.append(struct.pack("<Q", len(ints)))
        pieces.append(ints_raw)
        return b"".join(pieces)


# ---------------------------------------------------------------------------
# Decoder
# ---------------------------------------------------------------------------


class _Decoder:
    """Copies the payload's flat sections, then decodes tables lazily.

    *payload* may be ``bytes`` or any buffer (e.g. the ``memoryview`` of
    a mapped shared-memory segment): construction copies the side
    sections and the ``int64`` stream out of the buffer and keeps no
    reference to it, so a segment can be closed as soon as the decoder
    exists.  The term, fact and record tables decode on first property
    access; everything the parent's merge reads (intervals, body ints,
    strings) is available without touching them.
    """

    def __init__(
        self, payload: bytes | memoryview, expected_kind: int
    ) -> None:
        if bytes(payload[:4]) != _MAGIC:
            raise SerializationError(
                "not a shard-codec payload (bad magic header)"
            )
        if payload[4] != _BYTEORDER:
            raise SerializationError(
                "shard-codec payload was encoded on a machine with a "
                "different byte order"
            )
        offset = 5
        try:
            (strings_len,) = struct.unpack_from("<Q", payload, offset)
            offset += 8
            self.strings = self._parse_strings(payload, offset)
            offset += strings_len
            (blobs_len,) = struct.unpack_from("<Q", payload, offset)
            offset += 8
            self.blobs = self._parse_blobs(payload, offset)
            offset += blobs_len
            (float_count,) = struct.unpack_from("<Q", payload, offset)
            offset += 8
            floats = array("d")
            floats.frombytes(payload[offset : offset + 8 * float_count])
            self.floats = floats
            offset += 8 * float_count
            (int_count,) = struct.unpack_from("<Q", payload, offset)
            offset += 8
            ints = array("q")
            ints.frombytes(payload[offset : offset + 8 * int_count])
        except (struct.error, ValueError) as exc:
            raise SerializationError(
                f"truncated shard-codec payload: {exc}"
            ) from exc
        self.ints = ints
        self.pos = 0
        kind = self.read()
        if kind != expected_kind:
            raise SerializationError(
                f"expected shard-codec message kind {expected_kind}, "
                f"got {kind}"
            )
        self._variables: dict[str, Variable] = {}
        self.intervals = self._decode_intervals()
        # Skip the three length-prefixed table sections; each
        # materializes on first access of its property.
        self._term_table: list[GroundTerm] | None = None
        self._term_header = self.pos
        self.pos += 2 + self.ints[self.pos + 1]
        self._fact_table: list[Fact] | None = None
        self._fact_header = self.pos
        self.pos += 2 + self.ints[self.pos + 1]
        self._record_table: (
            list[TgdStepRecord | EgdStepRecord | FailureRecord] | None
        ) = None
        self._record_header = self.pos
        self.pos += 2 + self.ints[self.pos + 1]

    @staticmethod
    def _parse_strings(payload: bytes | memoryview, offset: int) -> list[str]:
        (count,) = struct.unpack_from("<I", payload, offset)
        offset += 4
        out: list[str] = []
        for _ in range(count):
            (length,) = struct.unpack_from("<I", payload, offset)
            offset += 4
            out.append(str(payload[offset : offset + length], "utf-8"))
            offset += length
        return out

    @staticmethod
    def _parse_blobs(payload: bytes | memoryview, offset: int) -> list[bytes]:
        (count,) = struct.unpack_from("<I", payload, offset)
        offset += 4
        out: list[bytes] = []
        for _ in range(count):
            (length,) = struct.unpack_from("<I", payload, offset)
            offset += 4
            out.append(bytes(payload[offset : offset + length]))
            offset += length
        return out

    def read(self) -> int:
        value = self.ints[self.pos]
        self.pos += 1
        return value

    def read_many(self, count: int) -> array:
        end = self.pos + count
        chunk = self.ints[self.pos : end]
        self.pos = end
        return chunk

    def string(self) -> str:
        return self.strings[self.read()]

    def variable(self, name: str) -> Variable:
        found = self._variables.get(name)
        if found is None:
            found = Variable(name)
            self._variables[name] = found
        return found

    def _decode_intervals(self) -> list[Interval]:
        count = self.read()
        out: list[Interval] = []
        for _ in range(count):
            start = self.read()
            end = self.read()
            out.append(Interval(start, INFINITY if end < 0 else end))
        return out

    @property
    def terms(self) -> list[GroundTerm]:
        found = self._term_table
        if found is None:
            saved = self.pos
            self.pos = self._term_header
            found = self._decode_terms()
            self._term_table = found
            self.pos = saved
        return found

    @property
    def facts(self) -> list[Fact]:
        found = self._fact_table
        if found is None:
            saved = self.pos
            self.pos = self._fact_header
            found = self._decode_facts()
            self._fact_table = found
            self.pos = saved
        return found

    def _decode_terms(self) -> list[GroundTerm]:
        count = self.read()
        self.read()  # section length, used by the lazy skip
        out: list[GroundTerm] = []
        strings = self.strings
        for _ in range(count):
            tag = self.read()
            if tag == _T_CONST_STR:
                out.append(Constant(strings[self.read()]))
            elif tag == _T_CONST_INT:
                out.append(Constant(self.read()))
            elif tag == _T_CONST_TRUE:
                out.append(Constant(True))
            elif tag == _T_CONST_FALSE:
                out.append(Constant(False))
            elif tag == _T_CONST_NONE:
                out.append(Constant(None))
            elif tag == _T_CONST_FLOAT:
                out.append(Constant(self.floats[self.read()]))
            elif tag == _T_CONST_BLOB:
                out.append(Constant(pickle.loads(self.blobs[self.read()])))
            elif tag == _T_CONST_INTERVAL:
                out.append(Constant(self.intervals[self.read()]))
            elif tag == _T_LABELED_NULL:
                out.append(LabeledNull(strings[self.read()]))
            elif tag == _T_ANNOTATED_NULL:
                base = strings[self.read()]
                out.append(AnnotatedNull(base, self.intervals[self.read()]))
            else:
                raise SerializationError(f"unknown term tag {tag}")
        return out

    def _decode_facts(self) -> list[Fact]:
        count = self.read()
        self.read()  # section length, used by the lazy skip
        out: list[Fact] = []
        strings = self.strings
        terms = self.terms
        for _ in range(count):
            relation = strings[self.read()]
            arity = self.read()
            args = tuple(terms[ref] for ref in self.read_many(arity))
            # Trusted: table terms are ground by construction.
            out.append(Fact.make(relation, args))
        return out

    @property
    def records(self) -> list[TgdStepRecord | EgdStepRecord | FailureRecord]:
        found = self._record_table
        if found is None:
            saved = self.pos
            self.pos = self._record_header
            found = self._decode_records()
            self._record_table = found
            self.pos = saved
        return found

    def _decode_records(
        self,
    ) -> list[TgdStepRecord | EgdStepRecord | FailureRecord]:
        count = self.read()
        self.read()  # section length, used by the lazy skip
        out: list[TgdStepRecord | EgdStepRecord | FailureRecord] = []
        strings = self.strings
        terms = self.terms
        facts = self.facts
        for _ in range(count):
            tag = self.read()
            dependency = strings[self.read()]
            if tag == _R_TGD:
                assignment: dict[Variable, GroundTerm] = {}
                for _ in range(self.read()):
                    name = strings[self.read()]
                    assignment[self.variable(name)] = terms[self.read()]
                added = tuple(
                    facts[ref] for ref in self.read_many(self.read())
                )
                fresh = tuple(
                    terms[ref] for ref in self.read_many(self.read())
                )
                out.append(
                    TgdStepRecord(
                        dependency=dependency,
                        assignment=assignment,
                        added_facts=added,
                        fresh_nulls=fresh,
                    )
                )
            elif tag == _R_EGD:
                out.append(
                    EgdStepRecord(
                        dependency, terms[self.read()], terms[self.read()]
                    )
                )
            elif tag == _R_FAILURE:
                out.append(
                    FailureRecord(
                        dependency, terms[self.read()], terms[self.read()]
                    )
                )
            else:
                raise SerializationError(f"unknown record tag {tag}")
        return out


class _WireTrace(ChaseTrace):
    """A :class:`ChaseTrace` whose steps decode from the wire lazily.

    The parent's merge never reads traces, so a decoded shard outcome
    keeps only the step *references* plus a handle on the payload's
    decoder; the records materialize on first access of ``steps`` (CLI
    ``--trace``, tests, debugging).  Holding the decoder pins the
    payload's tables in memory — the price of not paying the dominant
    record-decode cost on every chase.
    """

    def __init__(self, decoder: _Decoder, refs: Sequence[int]) -> None:
        self._decoder = decoder
        self._refs = refs
        self._materialized: list | None = None

    @property
    def steps(self):  # type: ignore[override]
        found = self._materialized
        if found is None:
            records = self._decoder.records
            found = [records[ref] for ref in self._refs]
            self._materialized = found
        return found

    @steps.setter
    def steps(self, value) -> None:
        self._materialized = list(value)

    def __reduce__(self):
        return (ChaseTrace, (list(self.steps),))


class _WireSnapshotResult(SnapshotChaseResult):
    """A region result whose target instance decodes from the wire lazily.

    The parent of a process-pool run merges the worker's pre-annotated
    templates and stores region results purely for inspection, so
    decoding every region's fact table into an :class:`Instance` on the
    critical path is wasted work.  This subclass keeps only the fact
    *references* plus the payload's decoder; the target materializes on
    first ``target`` access (tests, CLI diagnostics, failure analysis).
    """

    def __init__(
        self,
        decoder: _Decoder,
        fact_refs: Sequence[int],
        failed: bool,
        failure: FailureRecord | None,
        trace: ChaseTrace,
    ) -> None:
        self._decoder = decoder
        self._refs = fact_refs
        self._target: Instance | None = None
        self.failed = failed
        self.failure = failure
        self.trace = trace

    @property
    def target(self) -> Instance:  # type: ignore[override]
        found = self._target
        if found is None:
            facts = self._decoder.facts
            found = _rebuild_instance(facts[ref] for ref in self._refs)
            self._target = found
        return found

    @target.setter
    def target(self, value: Instance) -> None:
        self._target = value

    def __reduce__(self):
        return (
            SnapshotChaseResult,
            (self.target, self.failed, self.failure, ChaseTrace(list(self.trace.steps))),
        )


def _rebuild_instance(facts: Iterable[Fact]) -> Instance:
    """An :class:`Instance` from decoded table facts, bypassing ``add``.

    Wire facts are unique by construction (the fact table is interned),
    so the per-fact membership/bookkeeping of ``Instance.add`` is pure
    overhead on the parent's critical path; group and install the
    buckets directly through the pickling restore path.
    """
    groups: dict[str, set[Fact]] = {}
    for item in facts:
        bucket = groups.get(item.relation)
        if bucket is None:
            bucket = set()
            groups[item.relation] = bucket
        bucket.add(item)
    instance = Instance.__new__(Instance)
    instance.__setstate__((None, tuple(groups.items())))
    return instance


# ---------------------------------------------------------------------------
# Shared fragments
# ---------------------------------------------------------------------------


def _encode_setting(enc: _Encoder, setting: DataExchangeSetting) -> int:
    return enc.string(json.dumps(setting_to_json(setting), sort_keys=True))


def _decode_setting(dec: _Decoder) -> DataExchangeSetting:
    try:
        return setting_from_json(json.loads(dec.string()))
    except (json.JSONDecodeError, SerializationError) as exc:
        raise SerializationError(
            f"embedded exchange setting failed to decode: {exc}"
        ) from exc


def _encode_reuse(enc: _Encoder, stats: RegionReuseStats) -> None:
    enc.body.extend(
        (
            stats.replayed_matches,
            stats.live_matches,
            stats.replayed_firings,
            stats.live_firings,
            stats.streams_reused,
            stats.streams_patched,
            stats.streams_rebuilt,
        )
    )


def _decode_reuse(dec: _Decoder) -> RegionReuseStats:
    return RegionReuseStats(
        replayed_matches=dec.read(),
        live_matches=dec.read(),
        replayed_firings=dec.read(),
        live_firings=dec.read(),
        streams_reused=dec.read(),
        streams_patched=dec.read(),
        streams_rebuilt=dec.read(),
    )


def _encode_templates(
    enc: _Encoder, templates: Sequence[TemplateFact]
) -> None:
    enc.body.append(len(templates))
    for template in templates:
        enc.body.append(enc.string(template.relation))
        enc.body.append(enc.interval(template.interval))
        enc.body.append(len(template.args))
        for arg in template.args:
            enc.body.append(enc.term(arg))


def _decode_templates(dec: _Decoder) -> tuple[TemplateFact, ...]:
    ints = dec.ints
    pos = dec.pos
    count = ints[pos]
    pos += 1
    strings = dec.strings
    intervals = dec.intervals
    terms = dec.terms
    make = TemplateFact.make
    out: list[TemplateFact] = []
    append = out.append
    for _ in range(count):
        relation = strings[ints[pos]]
        interval = intervals[ints[pos + 1]]
        arity = ints[pos + 2]
        stop = pos + 3 + arity
        args = tuple(terms[ref] for ref in ints[pos + 3 : stop])
        pos = stop
        # Trusted: encoded from validated templates, so annotated nulls
        # carry the template interval and rigid null names are '@'-free.
        append(make(relation, args, interval))
    dec.pos = pos
    return tuple(out)


class _WireTemplates(Sequence[TemplateFact]):
    """Merged-template section of an outcome, decoded on first access.

    The merged templates are the *last* body section, so deferring them
    is a matter of remembering where the section starts.  The parent's
    merge keeps these around as opaque pieces; a run whose caller never
    touches the final instance's template set (serialization round
    trips, sampling, failure paths) skips the dominant decode cost —
    each shard contributes tens of thousands of templates.
    """

    __slots__ = ("_decoder", "_start", "_cache")

    def __init__(self, decoder: _Decoder, start: int):
        self._decoder = decoder
        self._start = start
        self._cache: tuple[TemplateFact, ...] | None = None

    def _materialize(self) -> tuple[TemplateFact, ...]:
        found = self._cache
        if found is None:
            dec = self._decoder
            saved = dec.pos
            dec.pos = self._start
            try:
                found = _decode_templates(dec)
            finally:
                dec.pos = saved
            self._cache = found
            self._decoder = None
        return found

    def __iter__(self) -> Iterator[TemplateFact]:
        return iter(self._materialize())

    def __len__(self) -> int:
        return self._decoder.ints[self._start] if self._cache is None else len(self._cache)

    def __getitem__(self, index):  # pragma: no cover — Sequence protocol
        return self._materialize()[index]

    def __reduce__(self):
        return (tuple, (self._materialize(),))


# ---------------------------------------------------------------------------
# Public message API
# ---------------------------------------------------------------------------


def encode_shard_task(task: ShardTask) -> bytes:
    enc = _Encoder()
    body = enc.body
    body.append(task.shard)
    body.append(task.counter)
    body.append(1 if task.incremental else 0)
    body.append(enc.string(task.prefix))
    body.append(enc.string(task.variant))
    body.append(enc.string(task.engine))
    body.append(_encode_setting(enc, task.setting))
    body.append(len(task.regions))
    for region in task.regions:
        body.append(enc.interval(region))
    _encode_templates(enc, task.templates)
    return enc.assemble(_MSG_TASK)


def decode_shard_task(payload: bytes | memoryview) -> ShardTask:
    dec = _Decoder(payload, _MSG_TASK)
    shard = dec.read()
    counter = dec.read()
    incremental = bool(dec.read())
    prefix = dec.string()
    variant = dec.string()
    engine = dec.string()
    setting = _decode_setting(dec)
    regions = tuple(
        dec.intervals[ref] for ref in dec.read_many(dec.read())
    )
    templates = _decode_templates(dec)
    return ShardTask(
        shard=shard,
        prefix=prefix,
        counter=counter,
        variant=variant,
        engine=engine,
        incremental=incremental,
        regions=regions,
        templates=templates,
        setting=setting,
    )


def encode_shard_outcome(outcome: ShardOutcome) -> bytes:
    enc = _Encoder()
    body = enc.body

    error = outcome.error
    if error is None:
        body.append(0)
    else:
        body.append(1)
        body.append(error.shard)
        body.append(
            enc.interval(error.region) if error.region is not None else -1
        )
        cause = error.__cause__
        if isinstance(cause, RemoteShardError):
            body.append(enc.string(cause.exc_type))
            body.append(enc.string(cause.message))
        else:
            body.append(enc.string(type(cause).__name__))
            body.append(enc.string(str(cause)))

    report = outcome.report
    body.append(report.shard)
    body.append(report.regions)
    body.append(enc.float_ref(report.seconds))
    body.append(report.nulls_issued)
    if report.reuse is None:
        body.append(0)
    else:
        body.append(1)
        _encode_reuse(enc, report.reuse)

    body.append(len(outcome.region_reuse))
    for region, stats in outcome.region_reuse.items():
        body.append(enc.interval(region))
        _encode_reuse(enc, stats)

    body.append(len(outcome.results))
    for region, result in outcome.results:
        body.append(enc.interval(region))
        body.append(1 if result.failed else 0)
        if result.failed:
            assert result.failure is not None
            body.append(enc.record(result.failure))
        # Set iteration order: payload bytes are process-local anyway,
        # and sort keys for every target fact are pure overhead.
        target_facts = result.target.facts()
        body.append(len(target_facts))
        for item in target_facts:
            body.append(enc.fact(item))
        body.append(len(result.trace.steps))
        for step in result.trace.steps:
            body.append(enc.record(step))
    _encode_templates(enc, outcome.merged_templates)
    return enc.assemble(_MSG_OUTCOME)


def decode_shard_outcome(payload: bytes | memoryview) -> ShardOutcome:
    from repro.abstract_view.abstract_chase import ShardReport

    dec = _Decoder(payload, _MSG_OUTCOME)

    error: ShardExecutionError | None = None
    if dec.read():
        shard = dec.read()
        region_ref = dec.read()
        region = dec.intervals[region_ref] if region_ref >= 0 else None
        cause = RemoteShardError(dec.string(), dec.string())
        error = ShardExecutionError(shard, region, cause)

    report_shard = dec.read()
    report_regions = dec.read()
    report_seconds = dec.floats[dec.read()]
    report_nulls = dec.read()
    report_reuse = _decode_reuse(dec) if dec.read() else None
    report = ShardReport(
        shard=report_shard,
        regions=report_regions,
        seconds=report_seconds,
        nulls_issued=report_nulls,
        reuse=report_reuse,
        remote=True,
    )

    region_reuse: dict[Interval, RegionReuseStats] = {}
    for _ in range(dec.read()):
        region = dec.intervals[dec.read()]
        region_reuse[region] = _decode_reuse(dec)

    results: list[tuple[Interval, SnapshotChaseResult]] = []
    for _ in range(dec.read()):
        region = dec.intervals[dec.read()]
        failed = bool(dec.read())
        failure = None
        if failed:
            failure = dec.records[dec.read()]
            if not isinstance(failure, FailureRecord):
                raise SerializationError(
                    "shard outcome failure record has the wrong type"
                )
        fact_refs = dec.read_many(dec.read())
        trace = _WireTrace(dec, dec.read_many(dec.read()))
        results.append(
            (
                region,
                _WireSnapshotResult(dec, fact_refs, failed, failure, trace),
            )
        )
    return ShardOutcome(
        results=tuple(results),
        region_reuse=region_reuse,
        error=error,
        report=report,
        merged_templates=_WireTemplates(dec, dec.pos),
    )


# -- standalone value messages (tests, tooling) ------------------------------


def encode_instance(instance: Instance) -> bytes:
    """One relational instance as a standalone payload (schema-free)."""
    enc = _Encoder()
    facts = sorted(instance.facts(), key=Fact.sort_key)
    enc.body.append(len(facts))
    for item in facts:
        enc.body.append(enc.fact(item))
    return enc.assemble(_MSG_INSTANCE)


def decode_instance(payload: bytes) -> Instance:
    dec = _Decoder(payload, _MSG_INSTANCE)
    instance = Instance()
    for ref in dec.read_many(dec.read()):
        instance.add(dec.facts[ref])
    return instance


def encode_abstract_instance(instance: AbstractInstance) -> bytes:
    """An abstract instance (region snapshot source) as a payload."""
    enc = _Encoder()
    _encode_templates(
        enc, sorted(instance.templates, key=TemplateFact.sort_key)
    )
    return enc.assemble(_MSG_ABSTRACT)


def decode_abstract_instance(payload: bytes) -> AbstractInstance:
    dec = _Decoder(payload, _MSG_ABSTRACT)
    return AbstractInstance(_decode_templates(dec))


def encode_setting(setting: DataExchangeSetting) -> bytes:
    enc = _Encoder()
    enc.body.append(_encode_setting(enc, setting))
    return enc.assemble(_MSG_SETTING)


def decode_setting(payload: bytes) -> DataExchangeSetting:
    dec = _Decoder(payload, _MSG_SETTING)
    return _decode_setting(dec)
