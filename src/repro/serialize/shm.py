"""Shared-memory transport for shard-codec payloads.

The ``processes`` executor's wire path used to pickle every task and
outcome payload through the pool's pipe: the parent serializes ~80 KB
per task, every byte crosses the pipe twice (pickle framing plus the
payload), and multi-megabyte outcomes are copied back the same way.
Shard-codec payloads are already flat byte strings, so they are a
ready-made shared buffer: the parent writes each task into a named
``multiprocessing.shared_memory`` segment and submits only the *name*;
the worker maps the segment, decodes in place, and publishes its
outcome through a second segment whose name the parent chose up front.

Ownership protocol (who unlinks what):

* **task segments** — created by the parent, mapped read-only by one
  worker.  The parent unlinks them after the futures settle (success or
  not); a worker that dies mid-read cannot leak them.
* **outcome segments** — created by a worker under a name the parent
  assigned when it built the task (deterministic: pid + run counter +
  shard index).  The worker gives the registration away (see below) and
  the parent unlinks after decoding — or, when the worker died before
  or after publishing, in the scheduler's cleanup sweep, which knows
  every name it handed out.  Either way a crashed shard cannot leave
  ``/dev/shm`` blocks behind.

Python 3.11/3.12 register *every* ``SharedMemory`` attach with the
``resource_tracker`` (the ``track=`` opt-out only exists from 3.13), so
a process that maps a segment it does not own must explicitly
unregister it — otherwise its tracker unlinks the segment out from
under the owner at shutdown and warns about leaks.  :func:`attach` and
:func:`give_away` encapsulate that dance.

Platform fallback: :func:`available` probes segment creation once per
process; where it fails (or ``REPRO_SHM=off``) the scheduler keeps the
original pickle path.  ``REPRO_SHM=on`` forces the shared-memory path
and lets the probe's failure surface loudly.
"""

from __future__ import annotations

import itertools
import os

try:
    from multiprocessing import resource_tracker, shared_memory
except ImportError:  # pragma: no cover — stripped-down stdlib builds
    shared_memory = None  # type: ignore[assignment]
    resource_tracker = None  # type: ignore[assignment]

__all__ = [
    "available",
    "transport_enabled",
    "new_run_id",
    "segment_name",
    "write",
    "give_away",
    "attach",
    "unlink",
]

_runs = itertools.count()
_probe_result: bool | None = None


def available() -> bool:
    """Whether this platform can create shared-memory segments at all.

    Probed once per process with a throwaway one-byte segment; failure
    (no ``/dev/shm``, sandboxed ``shm_open``, missing module) makes the
    scheduler fall back to the pickle wire path.
    """
    global _probe_result
    if _probe_result is None:
        if shared_memory is None:
            _probe_result = False
        else:
            try:
                probe = shared_memory.SharedMemory(create=True, size=1)
                probe.close()
                probe.unlink()
                _probe_result = True
            except (OSError, ValueError):  # pragma: no cover — no shm fs
                _probe_result = False
    return _probe_result


def transport_enabled() -> bool:
    """Whether the scheduler should use shared-memory hand-off.

    ``REPRO_SHM=off`` forces the pickle path (debugging, CI parity
    matrices); ``REPRO_SHM=on`` skips the probe's graceful fallback;
    the default is "use it where it works".
    """
    override = os.environ.get("REPRO_SHM", "auto").lower()
    if override == "off":
        return False
    if override == "on":
        return True
    return available()


def new_run_id() -> int:
    """A per-process counter distinguishing concurrent scheduler runs."""
    return next(_runs)


def segment_name(run: int, shard: int, kind: str) -> str:
    """Deterministic segment name for one shard of one run.

    The parent computes every name it will ever need *before* spawning
    work, so cleanup after a worker death is a sweep over known names
    rather than a guess over ``/dev/shm``.
    """
    return f"tdx{os.getpid()}_{run}_{kind}{shard}"


def _untrack(segment: shared_memory.SharedMemory) -> None:
    # resource_tracker's registry is name-keyed; unregister is the
    # documented-by-bug-report way to say "this process is not the one
    # responsible for unlinking".
    try:
        resource_tracker.unregister(segment._name, "shared_memory")
    except Exception:  # pragma: no cover — tracker already shut down
        pass


def write(name: str, payload: bytes) -> None:
    """Create segment *name* holding *payload* and unmap it locally.

    The creating process stays registered with the resource tracker, so
    an unexpected death before the hand-off still cleans the segment up;
    call :func:`give_away` once another process has taken responsibility.
    """
    # repro: ignore[TDX004]: ownership protocol — the creator stays tracker-registered; the receiving process unlinks by name (scheduler sweep / give_away), see module docstring
    segment = shared_memory.SharedMemory(
        name=name, create=True, size=max(1, len(payload))
    )
    try:
        segment.buf[: len(payload)] = payload
    finally:
        segment.close()


def give_away(name: str) -> None:
    """Drop this process's cleanup responsibility for segment *name*."""
    try:
        resource_tracker.unregister(f"/{name}", "shared_memory")
    except Exception:  # pragma: no cover — tracker already shut down
        pass


def attach(name: str) -> shared_memory.SharedMemory:
    """Map an existing segment without adopting cleanup responsibility.

    Raises ``FileNotFoundError`` when the segment does not exist (the
    publisher died before creating it).  The caller must ``close()`` the
    returned segment; whoever owns the name unlinks it.
    """
    segment = shared_memory.SharedMemory(name=name)
    _untrack(segment)
    return segment


def unlink(name: str) -> bool:
    """Best-effort removal of segment *name*; True when it existed.

    Used both for the normal end-of-decode release and for the
    crashed-worker sweep, so a missing segment is a non-event.
    """
    try:
        segment = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return False
    segment.close()
    try:
        # unlink() also unregisters, balancing the attach's registration
        # — no explicit untrack here or the tracker logs a KeyError.
        segment.unlink()
    except FileNotFoundError:  # pragma: no cover — lost a concurrent race
        return False
    return True
