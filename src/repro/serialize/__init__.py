"""Rendering (paper-figure layout), JSON/CSV serialization, and the
binary shard-codec wire format of the process-pool region scheduler
(:mod:`repro.serialize.shard_codec`)."""

from repro.serialize.csvio import (
    instance_from_csv_dict,
    instance_to_csv_dict,
    relation_from_csv,
    relation_to_csv,
)
from repro.serialize.digest import (
    chase_request_digest,
    instance_digest,
    setting_digest,
)
from repro.serialize.jsonio import (
    concrete_fact_from_json,
    concrete_fact_to_json,
    concrete_instance_from_json,
    concrete_instance_to_json,
    dumps,
    instance_from_json,
    instance_to_json,
    loads,
    setting_from_json,
    setting_to_json,
    term_from_json,
    term_to_json,
)
from repro.serialize.render import (
    render_abstract_snapshots,
    render_concrete_instance,
    render_concrete_relation,
    render_snapshot,
    render_table,
)

# The shard-codec names resolve lazily (PEP 562): shard_codec pulls in
# the abstract-view and chase modules, which a CSV/JSON-only consumer of
# this package should not pay for — and which must never import
# repro.serialize eagerly themselves (the region scheduler imports the
# codec inside the process-executor path for the same reason).
_SHARD_CODEC_EXPORTS = frozenset(
    {
        "decode_abstract_instance",
        "decode_instance",
        "decode_setting",
        "encode_abstract_instance",
        "encode_instance",
        "encode_setting",
    }
)


def __getattr__(name: str):
    if name in _SHARD_CODEC_EXPORTS:
        from repro.serialize import shard_codec

        return getattr(shard_codec, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "decode_abstract_instance",
    "decode_instance",
    "decode_setting",
    "encode_abstract_instance",
    "encode_instance",
    "encode_setting",
    "chase_request_digest",
    "instance_digest",
    "setting_digest",
    "instance_from_csv_dict",
    "instance_to_csv_dict",
    "relation_from_csv",
    "relation_to_csv",
    "concrete_fact_from_json",
    "concrete_fact_to_json",
    "concrete_instance_from_json",
    "concrete_instance_to_json",
    "dumps",
    "instance_from_json",
    "instance_to_json",
    "loads",
    "setting_from_json",
    "setting_to_json",
    "term_from_json",
    "term_to_json",
    "render_abstract_snapshots",
    "render_concrete_instance",
    "render_concrete_relation",
    "render_snapshot",
    "render_table",
]
