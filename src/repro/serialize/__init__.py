"""Rendering (paper-figure layout), JSON and CSV serialization."""

from repro.serialize.csvio import (
    instance_from_csv_dict,
    instance_to_csv_dict,
    relation_from_csv,
    relation_to_csv,
)
from repro.serialize.jsonio import (
    concrete_instance_from_json,
    concrete_instance_to_json,
    dumps,
    instance_from_json,
    instance_to_json,
    loads,
    setting_from_json,
    setting_to_json,
    term_from_json,
    term_to_json,
)
from repro.serialize.render import (
    render_abstract_snapshots,
    render_concrete_instance,
    render_concrete_relation,
    render_snapshot,
    render_table,
)

__all__ = [
    "instance_from_csv_dict",
    "instance_to_csv_dict",
    "relation_from_csv",
    "relation_to_csv",
    "concrete_instance_from_json",
    "concrete_instance_to_json",
    "dumps",
    "instance_from_json",
    "instance_to_json",
    "loads",
    "setting_from_json",
    "setting_to_json",
    "term_from_json",
    "term_to_json",
    "render_abstract_snapshots",
    "render_concrete_instance",
    "render_concrete_relation",
    "render_snapshot",
    "render_table",
]
