"""ASCII rendering of instances — the layout of the paper's figures.

Concrete instances render as per-relation tables with the temporal
attribute last (Figures 4–9); abstract instances render as a year-indexed
list of snapshots (Figures 1 and 3).  The figure benchmarks print these
renderings so the regenerated artifacts can be eyeballed against the
paper.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.abstract_view.abstract_instance import AbstractInstance
from repro.concrete.concrete_instance import ConcreteInstance
from repro.relational.instance import Instance
from repro.relational.schema import Schema

__all__ = [
    "render_table",
    "render_concrete_relation",
    "render_concrete_instance",
    "render_snapshot",
    "render_abstract_snapshots",
]


def render_table(
    title: str, headers: Sequence[str], rows: Iterable[Sequence[str]]
) -> str:
    """A fixed-width ASCII table with a title line."""
    materialized = [list(map(str, row)) for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "| " + " | ".join(
            cell.ljust(widths[index]) for index, cell in enumerate(cells)
        ) + " |"

    separator = "+-" + "-+-".join("-" * width for width in widths) + "-+"
    parts = [title, separator, line(headers), separator]
    for row in materialized:
        parts.append(line(row))
    parts.append(separator)
    return "\n".join(parts)


def _headers_for(
    instance: ConcreteInstance, relation: str, schema: Schema | None
) -> list[str]:
    sample = next(iter(instance.facts_of(relation)))
    arity = sample.arity
    if schema is not None and relation in schema:
        attributes = list(schema[relation].attributes)
        if len(attributes) == arity:  # data-only schema
            attributes.append("Time")
        return attributes
    return [*(f"A{i + 1}" for i in range(arity)), "Time"]


# repro: ordered-output
def render_concrete_relation(
    instance: ConcreteInstance, relation: str, schema: Schema | None = None
) -> str:
    """One relation as a Figure 4-style table (``R+`` title)."""
    facts = sorted(instance.facts_of(relation), key=lambda f: f.sort_key())
    if not facts:
        return f"{relation}+ (empty)"
    headers = _headers_for(instance, relation, schema)
    rows = [
        [*(str(value) for value in item.data), str(item.interval)]
        for item in facts
    ]
    return render_table(f"{relation}+", headers, rows)


# repro: ordered-output
def render_concrete_instance(
    instance: ConcreteInstance, schema: Schema | None = None
) -> str:
    """Every relation of the instance, one table after another."""
    if not instance:
        return "(empty concrete instance)"
    tables = [
        render_concrete_relation(instance, relation, schema)
        for relation in instance.relation_names()
    ]
    return "\n\n".join(tables)


# repro: ordered-output
def render_snapshot(snapshot: Instance) -> str:
    """One snapshot as the set notation of Figures 1 and 3."""
    if not snapshot:
        return "{}"
    return "{" + ", ".join(str(item) for item in snapshot) + "}"


# repro: ordered-output
def render_abstract_snapshots(
    instance: AbstractInstance, points: Iterable[int]
) -> str:
    """Selected snapshots, one line per time point (Figure 1/3 layout)."""
    lines = []
    for point in points:
        lines.append(f"{point}  {render_snapshot(instance.snapshot(point))}")
    return "\n".join(lines)
