"""CSV import/export of concrete relations.

Concrete relations are natural CSV citizens: data columns followed by two
temporal columns ``start`` and ``end`` (``end`` may be ``inf``).  Nulls
round-trip through a sigil syntax in data cells:

* ``~N`` — the interval-annotated null with base ``N`` annotated with the
  row's own interval (the only annotation a well-formed fact permits).

Values are otherwise read back as strings, except integer-looking cells
which become integer constants (CSV erases types; this matches how the
generators build data).
"""

from __future__ import annotations

import csv
import io
from typing import Sequence

from repro.errors import SerializationError
from repro.concrete.concrete_fact import ConcreteFact
from repro.concrete.concrete_instance import ConcreteInstance
from repro.relational.terms import AnnotatedNull, Constant, GroundTerm
from repro.temporal.interval import Interval
from repro.temporal.timepoint import parse_time_point

__all__ = [
    "relation_to_csv",
    "relation_from_csv",
    "instance_to_csv_dict",
    "instance_from_csv_dict",
]


def _cell_for(value: GroundTerm) -> str:
    if isinstance(value, AnnotatedNull):
        return f"~{value.base}"
    assert isinstance(value, Constant)
    return str(value.value)


def _value_for(cell: str, stamp: Interval) -> GroundTerm:
    if cell.startswith("~"):
        base = cell[1:]
        if not base:
            raise SerializationError("null sigil '~' without a base name")
        return AnnotatedNull(base, stamp)
    stripped = cell.strip()
    if stripped.lstrip("-").isdigit():
        return Constant(int(stripped))
    return Constant(cell)


# repro: ordered-output
def relation_to_csv(
    instance: ConcreteInstance,
    relation: str,
    headers: Sequence[str] | None = None,
) -> str:
    """One relation as CSV text (data columns, then ``start``, ``end``)."""
    facts = sorted(instance.facts_of(relation), key=lambda f: f.sort_key())
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    if facts:
        arity = facts[0].arity
        if headers is None:
            headers = [f"a{i + 1}" for i in range(arity)]
        elif len(headers) != arity:
            raise SerializationError(
                f"{len(headers)} headers for arity-{arity} relation {relation}"
            )
        writer.writerow([*headers, "start", "end"])
    for item in facts:
        row = [_cell_for(value) for value in item.data]
        row.append(str(item.interval.start))
        row.append(str(item.interval.end))
        writer.writerow(row)
    return buffer.getvalue()


def relation_from_csv(relation: str, text: str) -> ConcreteInstance:
    """Parse CSV text (with the header row) into one relation's facts."""
    reader = csv.reader(io.StringIO(text))
    rows = [row for row in reader if row]
    if not rows:
        return ConcreteInstance()
    header, *body = rows
    if len(header) < 3 or header[-2:] != ["start", "end"]:
        raise SerializationError(
            f"CSV for {relation} must end with 'start','end' columns, "
            f"got {header!r}"
        )
    result = ConcreteInstance()
    for line_number, row in enumerate(body, start=2):
        if len(row) != len(header):
            raise SerializationError(
                f"row {line_number} of {relation} has {len(row)} cells, "
                f"expected {len(header)}"
            )
        start = parse_time_point(row[-2])
        end = parse_time_point(row[-1])
        if not isinstance(start, int):
            raise SerializationError(
                f"row {line_number} of {relation}: start must be finite"
            )
        stamp = Interval(start, end)
        data = tuple(_value_for(cell, stamp) for cell in row[:-2])
        result.add(ConcreteFact(relation, data, stamp))
    return result


# repro: ordered-output
def instance_to_csv_dict(instance: ConcreteInstance) -> dict[str, str]:
    """The whole instance as ``{relation: csv_text}``."""
    return {
        relation: relation_to_csv(instance, relation)
        for relation in instance.relation_names()
    }


def instance_from_csv_dict(tables: dict[str, str]) -> ConcreteInstance:
    """Inverse of :func:`instance_to_csv_dict`."""
    result = ConcreteInstance()
    for relation, text in tables.items():
        result.add_all(relation_from_csv(relation, text).facts())
    return result
