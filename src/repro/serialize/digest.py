"""Content-addressed digests of exchange inputs (salt-free by design).

The server's chase cache (:mod:`repro.server.cache`) keys cached chase
outcomes by *what was chased*: the data exchange setting, the source
instance, and the chase parameters that shape the output.  Two requests
with equal inputs must map to the same key **in any process, on any
day** — so the digest is built exclusively from canonical serialized
content and :func:`hashlib.sha256`, never from Python's per-process
salted ``hash()`` (the TDX005 invariant; this module is listed in the
analyzer's persist-module set).

Canonicality comes for free from the repository's value types:

* :meth:`ConcreteInstance.__iter__` yields facts sorted by
  ``(relation, ConcreteFact.sort_key)``, so
  :func:`~repro.serialize.jsonio.concrete_instance_to_json` is already a
  content-determined encoding — two equal instances built in any
  insertion order serialize identically;
* :func:`~repro.serialize.jsonio.setting_to_json` renders dependencies
  in their declaration order, which is part of a setting's identity
  (tgd order never changes the chase result, but distinct declarations
  are distinct settings — a conservative key can only cause a miss,
  never a false hit);
* ``json.dumps(..., sort_keys=True, separators=(",", ":"))`` fixes the
  byte stream.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

from repro.concrete.concrete_instance import ConcreteInstance
from repro.dependencies.mapping import DataExchangeSetting
from repro.serialize.jsonio import concrete_instance_to_json, setting_to_json

__all__ = [
    "canonical_json_bytes",
    "chase_request_digest",
    "instance_digest",
    "setting_digest",
]


def canonical_json_bytes(payload: Any) -> bytes:
    """*payload* as canonical JSON bytes: sorted keys, minimal separators."""
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), ensure_ascii=True
    ).encode("ascii")


def _hexdigest(payload: Any) -> str:
    return hashlib.sha256(canonical_json_bytes(payload)).hexdigest()


def instance_digest(instance: ConcreteInstance) -> str:
    """A stable hex digest of a concrete instance's content."""
    return _hexdigest(concrete_instance_to_json(instance))


def setting_digest(setting: DataExchangeSetting) -> str:
    """A stable hex digest of a data exchange setting."""
    return _hexdigest(setting_to_json(setting))


def chase_request_digest(
    setting: DataExchangeSetting,
    source: ConcreteInstance,
    *,
    normalization: str = "conjunction",
    variant: str = "standard",
    engine: str = "delta",
) -> str:
    """The content address of one c-chase request.

    Every parameter that can change the chased target participates in
    the key; parameters that are provably output-neutral (the join
    engine, replay state — both byte-identical by contract) do not, so
    a warm cache keeps serving across them.
    """
    return _hexdigest(
        {
            "kind": "c-chase",
            "setting": setting_to_json(setting),
            "source": concrete_instance_to_json(source),
            "normalization": normalization,
            "variant": variant,
            "engine": engine,
        }
    )
