"""JSON round-tripping of the library's value types.

The wire format is explicit about term kinds so decoding is lossless::

    {"kind": "const", "value": "Ada"}
    {"kind": "null", "name": "N1"}                         # labeled null
    {"kind": "anull", "base": "N1", "interval": "[2, 5)"}  # annotated null

Intervals serialize as their surface syntax (``"[2, 5)"``, ``"[4, inf)"``)
and instances as fact lists.  Schema mappings serialize dependencies in
the textual syntax of :mod:`repro.relational.parser`, which the decoder
re-parses — keeping the JSON readable and the codec small.
"""

from __future__ import annotations

import json
from typing import Any

from repro.errors import SerializationError
from repro.concrete.concrete_fact import ConcreteFact
from repro.concrete.concrete_instance import ConcreteInstance
from repro.dependencies.dependency import EGD, SourceToTargetTGD
from repro.dependencies.mapping import DataExchangeSetting
from repro.relational.fact import Fact
from repro.relational.instance import Instance
from repro.relational.schema import RelationSchema, Schema
from repro.relational.terms import (
    AnnotatedNull,
    Constant,
    GroundTerm,
    LabeledNull,
)
from repro.temporal.interval import Interval

__all__ = [
    "term_to_json",
    "term_from_json",
    "concrete_instance_to_json",
    "concrete_instance_from_json",
    "instance_to_json",
    "instance_from_json",
    "setting_to_json",
    "setting_from_json",
    "dumps",
    "loads",
]


# -- terms ---------------------------------------------------------------------


def term_to_json(term: GroundTerm) -> dict[str, Any]:
    if isinstance(term, Constant):
        return {"kind": "const", "value": term.value}
    if isinstance(term, LabeledNull):
        return {"kind": "null", "name": term.name}
    if isinstance(term, AnnotatedNull):
        return {
            "kind": "anull",
            "base": term.base,
            "interval": str(term.annotation),
        }
    raise SerializationError(f"cannot serialize term {term!r}")


def term_from_json(payload: dict[str, Any]) -> GroundTerm:
    kind = payload.get("kind")
    if kind == "const":
        return Constant(payload["value"])
    if kind == "null":
        return LabeledNull(payload["name"])
    if kind == "anull":
        return AnnotatedNull(payload["base"], Interval.parse(payload["interval"]))
    raise SerializationError(f"unknown term kind {kind!r} in {payload!r}")


# -- concrete instances -----------------------------------------------------------


def concrete_fact_to_json(item: ConcreteFact) -> dict[str, Any]:
    return {
        "relation": item.relation,
        "data": [term_to_json(value) for value in item.data],
        "interval": str(item.interval),
    }


def concrete_fact_from_json(payload: dict[str, Any]) -> ConcreteFact:
    try:
        return ConcreteFact(
            payload["relation"],
            tuple(term_from_json(value) for value in payload["data"]),
            Interval.parse(payload["interval"]),
        )
    except KeyError as exc:
        raise SerializationError(f"missing field {exc} in concrete fact") from exc


# repro: ordered-output
def concrete_instance_to_json(instance: ConcreteInstance) -> dict[str, Any]:
    return {"facts": [concrete_fact_to_json(item) for item in instance]}


def concrete_instance_from_json(payload: dict[str, Any]) -> ConcreteInstance:
    facts = payload.get("facts")
    if facts is None:
        raise SerializationError("concrete instance payload lacks 'facts'")
    return ConcreteInstance(concrete_fact_from_json(item) for item in facts)


# -- snapshot instances --------------------------------------------------------------


# repro: ordered-output
def instance_to_json(instance: Instance) -> dict[str, Any]:
    return {
        "facts": [
            {
                "relation": item.relation,
                "args": [term_to_json(value) for value in item.args],
            }
            for item in instance
        ]
    }


def instance_from_json(payload: dict[str, Any]) -> Instance:
    facts = payload.get("facts")
    if facts is None:
        raise SerializationError("instance payload lacks 'facts'")
    return Instance(
        Fact(
            item["relation"],
            tuple(term_from_json(value) for value in item["args"]),
        )
        for item in facts
    )


# -- schemas and settings ----------------------------------------------------------------


def schema_to_json(schema: Schema) -> dict[str, Any]:
    return {
        "relations": [
            {"name": rel.name, "attributes": list(rel.attributes)}
            for rel in schema
        ]
    }


def schema_from_json(payload: dict[str, Any]) -> Schema:
    return Schema(
        RelationSchema(entry["name"], tuple(entry["attributes"]))
        for entry in payload["relations"]
    )


def setting_to_json(setting: DataExchangeSetting) -> dict[str, Any]:
    return {
        "source_schema": schema_to_json(setting.source_schema),
        "target_schema": schema_to_json(setting.target_schema),
        "st_tgds": [
            {"name": tgd.name, "rule": _tgd_text(tgd)} for tgd in setting.st_tgds
        ],
        "egds": [
            {"name": egd.name, "rule": _egd_text(egd)} for egd in setting.egds
        ],
    }


def _atom_text(atom) -> str:
    parts = []
    for arg in atom.args:
        if isinstance(arg, Constant):
            value = arg.value
            parts.append(f"'{value}'" if isinstance(value, str) else str(value))
        else:
            parts.append(str(arg))
    return f"{atom.relation}({', '.join(parts)})"


def _conjunction_text(conjunction) -> str:
    return " & ".join(_atom_text(atom) for atom in conjunction.atoms)


def _tgd_text(tgd: SourceToTargetTGD) -> str:
    rhs = _conjunction_text(tgd.rhs)
    if tgd.existential_variables:
        bound = ", ".join(str(v) for v in tgd.existential_variables)
        rhs = f"EXISTS {bound} . {rhs}"
    return f"{_conjunction_text(tgd.lhs)} -> {rhs}"


def _egd_text(egd: EGD) -> str:
    return (
        f"{_conjunction_text(egd.lhs)} -> "
        f"{egd.left_variable} = {egd.right_variable}"
    )


def setting_from_json(payload: dict[str, Any]) -> DataExchangeSetting:
    try:
        return DataExchangeSetting(
            source_schema=schema_from_json(payload["source_schema"]),
            target_schema=schema_from_json(payload["target_schema"]),
            st_tgds=tuple(
                SourceToTargetTGD.parse(entry["rule"], name=entry.get("name", ""))
                for entry in payload.get("st_tgds", [])
            ),
            egds=tuple(
                EGD.parse(entry["rule"], name=entry.get("name", ""))
                for entry in payload.get("egds", [])
            ),
        )
    except KeyError as exc:
        raise SerializationError(f"missing field {exc} in setting payload") from exc


# -- convenience string forms -------------------------------------------------------------


def dumps(instance: ConcreteInstance, indent: int | None = 2) -> str:
    """A concrete instance as a JSON string."""
    return json.dumps(concrete_instance_to_json(instance), indent=indent)


def loads(text: str) -> ConcreteInstance:
    """Inverse of :func:`dumps`."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SerializationError(f"invalid JSON: {exc}") from exc
    return concrete_instance_from_json(payload)
