"""Exception hierarchy for the temporal data exchange library.

Every error raised by :mod:`repro` derives from :class:`ReproError`, so
callers can catch library failures without catching programming errors.
The chase-specific errors mirror the paper's failure modes: an egd chase
step that tries to equate two distinct constants makes the whole exchange
fail (Definition 16; Theorem 19, part 2).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class TemporalError(ReproError):
    """Invalid temporal value, e.g. an empty or negative interval."""


class SchemaError(ReproError):
    """Schema violation: unknown relation, wrong arity, or name clash."""


class FormulaError(ReproError):
    """Malformed formula or dependency (unsafe variables, bad sorts)."""


class ParseError(ReproError):
    """The textual syntax for atoms/dependencies/queries failed to parse."""

    def __init__(self, message: str, text: str = "", position: int | None = None):
        self.text = text
        self.position = position
        if position is not None:
            message = f"{message} (at offset {position} in {text!r})"
        super().__init__(message)


class InstanceError(ReproError):
    """Invalid instance construction, e.g. a variable used as a fact value."""


class ChaseFailureError(ReproError):
    """An egd chase step equated two distinct constants.

    Per the paper (Definition 16 and Theorem 19, part 2) this means the
    source instance has *no solution* under the given schema mapping.
    The offending values and the dependency are retained for diagnosis.
    """

    def __init__(self, dependency, left, right, context: str = ""):
        self.dependency = dependency
        self.left = left
        self.right = right
        self.context = context
        detail = f"egd chase step failed: cannot equate constants {left!r} and {right!r}"
        if context:
            detail = f"{detail} ({context})"
        super().__init__(detail)


class RemoteShardError(ReproError):
    """An exception raised inside a worker process of the ``processes``
    executor, carried across the process boundary as *(type name,
    message)* — the original exception object cannot be shipped
    faithfully, so this stand-in becomes the ``__cause__`` of the
    :class:`ShardExecutionError` the parent raises."""

    def __init__(self, exc_type: str, message: str):
        self.exc_type = exc_type
        self.message = message
        super().__init__(f"{exc_type}: {message}")

    def __reduce__(self):
        return (type(self), (self.exc_type, self.message))


class ShardExecutionError(ReproError):
    """A region chase raised inside the abstract chase's region scheduler.

    Distinct from :class:`ChaseFailureError` (which is a *result* of the
    chase — no solution exists): this wraps an unexpected exception so
    the failing shard index and region interval are surfaced instead of
    the executor's bare first exception.  The original exception is
    chained as ``__cause__``; exceptions that crossed a process boundary
    arrive as :class:`RemoteShardError` stand-ins.  *stage* overrides
    the context phrase for failures outside any region chase — the
    process executor uses it when a worker dies before returning a
    result.
    """

    def __init__(
        self,
        shard: int,
        region,
        cause: BaseException,
        stage: str | None = None,
    ):
        self.shard = shard
        self.region = region
        self.stage = stage
        summary = (
            str(cause)
            if isinstance(cause, RemoteShardError)
            else f"{type(cause).__name__}: {cause}"
        )
        if stage is not None:
            detail = f"shard {shard} {stage}: {summary}"
        elif region is not None:
            detail = (
                f"region chase raised in shard {shard}, "
                f"snapshots {region}: {summary}"
            )
        else:
            detail = (
                f"region chase raised in shard {shard}, while advancing "
                f"the region sweep: {summary}"
            )
        super().__init__(detail)
        self.__cause__ = cause

    def __reduce__(self):
        # Exception.__reduce__ would replay our message string as the
        # shard argument; rebuild from the real fields instead, demoting
        # an unpicklable cause to its RemoteShardError stand-in.
        import pickle

        cause = self.__cause__
        try:
            pickle.dumps(cause)
        except Exception:
            cause = RemoteShardError(type(cause).__name__, str(cause))
        return (type(self), (self.shard, self.region, cause, self.stage))


class NotNormalizedError(ReproError):
    """An operation required a normalized concrete instance but got one
    violating the empty intersection property (Definition 10)."""


class SolutionError(ReproError):
    """A purported solution fails the schema mapping it claims to satisfy."""


class SerializationError(ReproError):
    """JSON/CSV payload cannot be decoded into library objects."""


class DeltaError(ReproError):
    """A source delta is malformed or cannot be strictly applied.

    Raised by :class:`repro.deltas.SourceDelta` when a delta's fact sets
    conflict (a fact both added and removed), when its JSON form cannot
    be decoded, or when a strict :meth:`~repro.deltas.SourceDelta.apply`
    would remove an absent fact or add a duplicate."""


class EventError(ReproError):
    """An event record is malformed.

    Raised by :mod:`repro.events` for unparseable event lines, unknown
    event types, missing required fields, timestamps before the
    mapping's epoch, and non-scalar payload values under mapped
    columns.  History inconsistencies (updating an entity nobody
    created, say) are *not* errors — compilation parks such events as
    pending until the missing history arrives."""
