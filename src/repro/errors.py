"""Exception hierarchy for the temporal data exchange library.

Every error raised by :mod:`repro` derives from :class:`ReproError`, so
callers can catch library failures without catching programming errors.
The chase-specific errors mirror the paper's failure modes: an egd chase
step that tries to equate two distinct constants makes the whole exchange
fail (Definition 16; Theorem 19, part 2).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class TemporalError(ReproError):
    """Invalid temporal value, e.g. an empty or negative interval."""


class SchemaError(ReproError):
    """Schema violation: unknown relation, wrong arity, or name clash."""


class FormulaError(ReproError):
    """Malformed formula or dependency (unsafe variables, bad sorts)."""


class ParseError(ReproError):
    """The textual syntax for atoms/dependencies/queries failed to parse."""

    def __init__(self, message: str, text: str = "", position: int | None = None):
        self.text = text
        self.position = position
        if position is not None:
            message = f"{message} (at offset {position} in {text!r})"
        super().__init__(message)


class InstanceError(ReproError):
    """Invalid instance construction, e.g. a variable used as a fact value."""


class ChaseFailureError(ReproError):
    """An egd chase step equated two distinct constants.

    Per the paper (Definition 16 and Theorem 19, part 2) this means the
    source instance has *no solution* under the given schema mapping.
    The offending values and the dependency are retained for diagnosis.
    """

    def __init__(self, dependency, left, right, context: str = ""):
        self.dependency = dependency
        self.left = left
        self.right = right
        self.context = context
        detail = f"egd chase step failed: cannot equate constants {left!r} and {right!r}"
        if context:
            detail = f"{detail} ({context})"
        super().__init__(detail)


class ShardExecutionError(ReproError):
    """A region chase raised inside the abstract chase's region scheduler.

    Distinct from :class:`ChaseFailureError` (which is a *result* of the
    chase — no solution exists): this wraps an unexpected exception so
    the failing shard index and region interval are surfaced instead of
    the executor's bare first exception.  The original exception is
    chained as ``__cause__``.
    """

    def __init__(self, shard: int, region, cause: BaseException):
        self.shard = shard
        self.region = region
        context = (
            f"snapshots {region}"
            if region is not None
            else "while advancing the region sweep"
        )
        super().__init__(
            f"region chase raised in shard {shard}, {context}: "
            f"{type(cause).__name__}: {cause}"
        )
        self.__cause__ = cause


class NotNormalizedError(ReproError):
    """An operation required a normalized concrete instance but got one
    violating the empty intersection property (Definition 10)."""


class SolutionError(ReproError):
    """A purported solution fails the schema mapping it claims to satisfy."""


class SerializationError(ReproError):
    """JSON/CSV payload cannot be decoded into library objects."""
