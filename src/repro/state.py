"""Load/attach/persist lifecycle for pickled replay state.

Three consumers chain recorded-replay state across runs: ``repro chase
--norm-log`` and ``repro query --query-log`` persist one pickle per
chain between CLI invocations, and the resident server
(:mod:`repro.server`) keeps the same objects warm in memory and
snapshots whole sessions to disk.  Before this module each consumer
hand-rolled the identical load/validate/save dance inline; now they
share one implementation, so the CLI and the server cannot drift — a
ledger file written by one is readable by the other (regression-tested
in ``tests/integration/test_server.py``).

Trust boundary (the ``--norm-log`` warning, generalized): these files
are **pickles** — they hold live fact/conjunction objects, and
unpickling runs code.  Only load state files this software wrote for
you; never one from an untrusted source.  The server applies the same
rule by only loading session snapshots from its own spool directory.
"""

from __future__ import annotations

import pickle
from pathlib import Path

from repro.concrete import CChaseReplayState
from repro.errors import ReproError
from repro.query import QueryLog

__all__ = [
    "StateError",
    "load_chase_state",
    "load_query_log",
    "save_chase_state",
    "save_query_log",
]


class StateError(ReproError):
    """A replay-state file could not be read, parsed, or written."""


def _load_pickle(path: str | Path, expected: type, what: str) -> object:
    try:
        with open(path, "rb") as handle:
            state = pickle.load(handle)
    except Exception as exc:  # pickle raises a zoo of types
        raise StateError(f"cannot read {what} from {path}: {exc}") from exc
    if not isinstance(state, expected):
        raise StateError(f"{path} does not contain a {what}")
    return state


def _save_pickle(path: str | Path, state: object, what: str) -> None:
    try:
        with open(path, "wb") as handle:
            pickle.dump(state, handle)
    except OSError as exc:
        raise StateError(f"cannot write {what} to {path}: {exc}") from exc


def load_chase_state(path: str | Path) -> CChaseReplayState | bool:
    """The previous c-chase replay state at *path*, or ``True`` if absent.

    ``True`` asks :func:`~repro.concrete.c_chase` to record this run's
    state without replaying anything — the first run of a chain.  The
    return value feeds ``c_chase(..., incremental=)`` directly.
    """
    if not Path(path).exists():
        return True
    state = _load_pickle(path, CChaseReplayState, "normalization log")
    return state  # type: ignore[return-value]


def save_chase_state(path: str | Path, state: CChaseReplayState | None) -> None:
    """Persist *state* for the next run; a ``None`` state is a no-op."""
    if state is None:
        return
    _save_pickle(path, state, "normalization log")


def load_query_log(path: str | Path) -> QueryLog:
    """The previous query log at *path*, or a fresh one when absent.

    A fresh log records this run's state without replaying anything —
    the first run of a chain.
    """
    if not Path(path).exists():
        return QueryLog()
    return _load_pickle(path, QueryLog, "query log")  # type: ignore[return-value]


def save_query_log(path: str | Path, log: QueryLog) -> None:
    """Persist *log* for the next run."""
    _save_pickle(path, log, "query log")
