"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``chase``      — run the c-chase on a source instance and a mapping;
* ``normalize``  — normalize an instance w.r.t. a mapping's lhs sets;
* ``query``      — certain answers for a conjunctive query;
* ``verify``     — check the Figure 10 correspondence on an input;
* ``figures``    — print every regenerated figure of the paper;
* ``serve``      — run the resident chase daemon (chase-as-a-service);
* ``client``     — talk to a running daemon (create/delta/query/…);
* ``ingest``     — compile a JSON-lines event log into a source
  instance or delta, or follow it into a server session.

Instances and mappings travel as JSON in the :mod:`repro.serialize`
format.  Exit status: 0 on success, 1 on chase failure (no solution),
2 on bad input.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.concrete import CChaseReplayState, c_chase, naive_normalize, normalize
from repro.correspondence import verify_correspondence
from repro.errors import ReproError
from repro.query import (
    ConjunctiveQuery,
    QueryLog,
    UnionQuery,
    certain_answers_concrete,
)
from repro.relational.homomorphism import set_join_mode
from repro.serialize import (
    concrete_instance_from_json,
    concrete_instance_to_json,
    render_concrete_instance,
    setting_from_json,
)
from repro.state import (
    StateError,
    load_chase_state,
    load_query_log,
    save_chase_state,
    save_query_log,
)

__all__ = ["main", "build_parser"]


def _load_json(path: str) -> dict:
    try:
        return json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise SystemExit(f"error: cannot read JSON from {path}: {exc}") from exc


def _load_instance(path: str):
    return concrete_instance_from_json(_load_json(path))


def _load_setting(path: str):
    return setting_from_json(_load_json(path))


# The state round-trip lives in repro.state (shared with the resident
# server, so the two persistence paths cannot drift); the CLI's only
# added behavior is turning a StateError into the usual SystemExit.


def _load_norm_log(path: str) -> "CChaseReplayState | bool":
    try:
        return load_chase_state(path)
    except StateError as exc:
        raise SystemExit(f"error: {exc}") from exc


def _save_norm_log(path: str, state: CChaseReplayState | None) -> None:
    try:
        save_chase_state(path, state)
    except StateError as exc:
        raise SystemExit(f"error: {exc}") from exc


def _load_query_log(path: str) -> QueryLog:
    try:
        return load_query_log(path)
    except StateError as exc:
        raise SystemExit(f"error: {exc}") from exc


def _save_query_log(path: str, log: QueryLog) -> None:
    try:
        save_query_log(path, log)
    except StateError as exc:
        raise SystemExit(f"error: {exc}") from exc


def _write_instance(instance, out: str | None, pretty: bool) -> None:
    payload = json.dumps(concrete_instance_to_json(instance), indent=2)
    if out:
        Path(out).write_text(payload + "\n")
    elif pretty:
        print(render_concrete_instance(instance))
    else:
        print(payload)


def _print_shard_reports(abstract_result) -> None:
    for shard in abstract_result.shard_reports:
        reuse = ""
        if shard.reuse is not None:
            total = shard.reuse.replayed_matches + shard.reuse.live_matches
            if total:
                percent = 100.0 * shard.reuse.replayed_matches / total
                reuse = f", {percent:.0f}% replayed"
        print(
            f"shard {shard.shard}: {shard.regions} regions, "
            f"{shard.nulls_issued} nulls, {shard.seconds * 1000:.2f} ms{reuse}",
            file=sys.stderr,
        )


def _cmd_chase(args: argparse.Namespace) -> int:
    set_join_mode(args.join)
    setting = _load_setting(args.mapping)
    source = _load_instance(args.source)
    if args.via == "abstract":
        from repro.abstract_view import abstract_chase, semantics
        from repro.serialize import render_abstract_snapshots

        for flag, given in (
            ("--out", bool(args.out)),
            ("--pretty", args.pretty),
            ("--coalesce", args.coalesce),
            ("--normalization", args.normalization != "conjunction"),
            ("--norm-log", bool(args.norm_log)),
        ):
            if given:
                raise SystemExit(
                    f"error: {flag} applies to the concrete c-chase only; "
                    "the abstract chase result is printed as snapshot tables"
                )
        abstract_result = abstract_chase(
            semantics(source),
            setting,
            variant=args.variant,
            engine=args.engine,
            shards=args.shards,
            executor=args.executor,
            incremental=args.incremental != "off",
            workers=args.workers,
        )
        if args.shards > 1:
            _print_shard_reports(abstract_result)
        if abstract_result.error is not None:
            # A region chase raised: surface shard + region + cause, not
            # a bogus "chase failed" verdict.
            raise abstract_result.error
        if abstract_result.failed:
            print(f"chase failed: {abstract_result.failure}", file=sys.stderr)
            return 1
        target = abstract_result.unwrap()
        points = sorted(
            {template.interval.start for template in target.templates}
        )
        print(render_abstract_snapshots(target, points))
        if args.trace:
            steps = sum(
                len(result.trace)
                for result in abstract_result.region_results.values()
            )
            print(f"-- {steps} chase steps across regions --", file=sys.stderr)
        return 0
    for flag, given in (
        ("--shards", args.shards != 1),
        ("--executor", args.executor != "serial"),
        ("--workers", args.workers is not None),
    ):
        if given:
            raise SystemExit(
                f"error: {flag} configures the abstract chase's region "
                "scheduler; add --via abstract to use it"
            )
    # For the concrete c-chase, --incremental gates the fragment-level
    # normalization replay chained through --norm-log (on the abstract
    # path it selects the cross-region replay instead).  An explicit
    # --incremental without a replay chain to act on would silently do
    # nothing — refuse it with guidance instead.
    if args.incremental is not None and not args.norm_log:
        raise SystemExit(
            "error: --incremental configures replay chains; on the "
            "concrete c-chase it needs --norm-log FILE (or add "
            "--via abstract for cross-region replay)"
        )
    if args.norm_log and args.normalization == "naive":
        raise SystemExit(
            "error: --norm-log records Algorithm 1's group decisions; "
            "the naive normalization has none to replay "
            "(drop --norm-log or use --normalization conjunction)"
        )
    incremental = None
    if args.norm_log and args.incremental != "off":
        incremental = _load_norm_log(args.norm_log)
    result = c_chase(
        source,
        setting,
        normalization=args.normalization,
        variant=args.variant,
        coalesce_result=args.coalesce,
        engine=args.engine,
        incremental=incremental,
    )
    if args.norm_log and args.incremental != "off":
        _save_norm_log(args.norm_log, result.replay_state)
    if result.failed:
        print(f"chase failed: {result.failure}", file=sys.stderr)
        return 1
    _write_instance(result.target, args.out, args.pretty)
    if args.trace:
        print(f"-- {len(result.trace)} chase steps --", file=sys.stderr)
        for step in result.trace.steps:
            print(f"   {step}", file=sys.stderr)
    return 0


def _cmd_normalize(args: argparse.Namespace) -> int:
    source = _load_instance(args.source)
    if args.naive:
        normalized = naive_normalize(source)
    else:
        setting = _load_setting(args.mapping)
        conjunctions = (
            setting.lifted_egd_lhs_conjunctions()
            if args.phase == "egd"
            else setting.lifted_st_lhs_conjunctions()
        )
        normalized = normalize(source, conjunctions)
    _write_instance(normalized, args.out, args.pretty)
    print(
        f"{len(source)} facts -> {len(normalized)} facts",
        file=sys.stderr,
    )
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    # The replay chain mirrors chase's --norm-log contract: both flags
    # travel together, and a dangling half would silently do nothing —
    # refuse it with guidance instead.
    if args.incremental and not args.query_log:
        raise SystemExit(
            "error: --incremental replays a recorded query log; "
            "it needs --query-log FILE to chain runs through"
        )
    if args.query_log and not args.incremental:
        raise SystemExit(
            "error: --query-log only records when replay is enabled; "
            "add --incremental to use the chain"
        )
    if args.incremental and args.engine == "scan":
        raise SystemExit(
            "error: --incremental requires --engine indexed; the scan "
            "reference engine re-evaluates from scratch by design"
        )
    set_join_mode(args.join)
    setting = _load_setting(args.mapping)
    source = _load_instance(args.source)
    rules = [rule for rule in args.query.split(";") if rule.strip()]
    query: ConjunctiveQuery | UnionQuery
    if len(rules) == 1:
        query = ConjunctiveQuery.parse(rules[0])
    else:
        query = UnionQuery.of(*rules)
    log = _load_query_log(args.query_log) if args.incremental else None
    mark = log.answers.counters() if log is not None else None
    answers = certain_answers_concrete(
        query, source, setting, engine=args.engine, log=log
    )
    if log is not None:
        _save_query_log(args.query_log, log)
        # The ledger's counters are cumulative across the pickled chain;
        # report this run's share only.
        replayed, evaluated = log.answers.delta_since(mark)
        print(
            f"query log: {replayed} replayed, {evaluated} evaluated",
            file=sys.stderr,
        )
    for row, support in answers:
        values = ", ".join(str(v) for v in row)
        print(f"({values})\t{support}")
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    set_join_mode(args.join)
    setting = _load_setting(args.mapping)
    source = _load_instance(args.source)
    # --incremental gates both replay layers here: the abstract chase's
    # cross-region reuse and the c-chase's --norm-log chain (mirroring
    # the chase command's concrete path).
    use_norm_log = bool(args.norm_log) and args.incremental != "off"
    cchase_incremental = _load_norm_log(args.norm_log) if use_norm_log else None
    report = verify_correspondence(
        source,
        setting,
        engine=args.engine,
        shards=args.shards,
        executor=args.executor,
        incremental=args.incremental != "off",
        workers=args.workers,
        cchase_incremental=cchase_incremental,
    )
    if use_norm_log:
        _save_norm_log(args.norm_log, report.concrete_result.replay_state)
    if args.shards > 1:
        _print_shard_reports(report.abstract_result)
    if report.both_failed:
        print("both chases fail: no solution exists (square commutes)")
        return 0
    if report.holds:
        print("correspondence holds: ⟦c-chase(Ic)⟧ ∼ chase(⟦Ic⟧)")
        return 0
    print("CORRESPONDENCE VIOLATION — this is a bug, please report it")
    return 1


def _cmd_figures(_args: argparse.Namespace) -> int:
    from repro.abstract_view import abstract_chase, semantics
    from repro.serialize import render_abstract_snapshots
    from repro.workloads import (
        algorithm1_example_conjunctions,
        algorithm1_example_instance,
        employment_setting,
        employment_source_concrete,
        salary_conjunction,
    )

    setting = employment_setting()
    source = employment_source_concrete()
    print("== Figure 1: abstract snapshots of ⟦Ic⟧ ==")
    print(render_abstract_snapshots(semantics(source), range(2012, 2019)))
    print("\n== Figure 4: concrete source instance Ic ==")
    print(render_concrete_instance(source, setting.lifted_source_schema()))
    print("\n== Figure 5: Algorithm 1 normalization ==")
    print(
        render_concrete_instance(
            normalize(source, [salary_conjunction()]),
            setting.lifted_source_schema(),
        )
    )
    print("\n== Figure 6: naive normalization ==")
    print(
        render_concrete_instance(
            naive_normalize(source), setting.lifted_source_schema()
        )
    )
    print("\n== Figures 7/8: Example 14 ==")
    example = algorithm1_example_instance()
    print(render_concrete_instance(example))
    print("   -- normalizes to --")
    print(
        render_concrete_instance(
            normalize(example, algorithm1_example_conjunctions())
        )
    )
    print("\n== Figure 9: c-chase(Ic) ==")
    result = c_chase(source, setting)
    print(render_concrete_instance(result.target, setting.lifted_target_schema()))
    print("\n== Figure 3: chase(⟦Ic⟧) snapshots ==")
    print(
        render_abstract_snapshots(
            abstract_chase(semantics(source), setting).unwrap(),
            range(2012, 2019),
        )
    )
    print("\n== Figure 10: correspondence ==")
    print("holds:", verify_correspondence(source, setting).holds)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.server import serve

    serve(
        host=args.host,
        port=args.port,
        workers=args.workers,
        snapshot_dir=args.snapshot_dir,
        cache_entries=args.cache_entries,
    )
    return 0


def _load_fact_list(path: str | None, flag: str) -> list:
    if path is None:
        return []
    payload = _load_json(path)
    if not isinstance(payload, list):
        raise SystemExit(f"error: {flag} file must hold a JSON list of facts")
    return payload


def _cmd_client(args: argparse.Namespace) -> int:
    from repro.server import ClientError, ServerClient

    def need_session() -> str:
        if not args.session:
            raise SystemExit(f"error: client {args.action} requires --session NAME")
        return args.session

    client = ServerClient(host=args.host, port=args.port)
    try:
        if args.action == "health":
            result = client.healthz()
        elif args.action == "stats":
            result = client.stats()
        elif args.action == "sessions":
            result = {"sessions": client.sessions()}
        elif args.action == "create":
            if not args.mapping or not args.source:
                raise SystemExit(
                    "error: client create requires --mapping and --source"
                )
            result = client.create(
                need_session(),
                _load_json(args.mapping),
                _load_json(args.source),
                replace=args.replace,
            )
        elif args.action == "delta":
            if not args.add and not args.remove:
                raise SystemExit(
                    "error: client delta requires --add and/or --remove "
                    "(JSON files holding fact lists)"
                )
            result = client.delta(
                need_session(),
                add=_load_fact_list(args.add, "--add"),
                remove=_load_fact_list(args.remove, "--remove"),
            )
        elif args.action == "query":
            if not args.query:
                raise SystemExit("error: client query requires --query RULE")
            result = client.query(need_session(), args.query, engine=args.engine)
        elif args.action in ("target", "source"):
            getter = client.target if args.action == "target" else client.source
            payload = getter(need_session())
            if args.pretty:
                print(render_concrete_instance(
                    concrete_instance_from_json(payload)
                ))
                return 0
            result = payload
        elif args.action == "info":
            result = client.info(need_session())
        elif args.action == "snapshot":
            result = client.snapshot(need_session())
        elif args.action == "load":
            result = client.load(need_session())
        elif args.action == "evict":
            result = client.evict(need_session(), snapshot=args.snapshot)
        else:  # pragma: no cover - argparse restricts the choices
            raise SystemExit(f"error: unknown client action {args.action!r}")
    except ClientError as exc:
        print(f"error: server returned {exc.status}: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        print(
            f"error: cannot reach server at {args.host}:{args.port}: {exc}",
            file=sys.stderr,
        )
        return 2
    finally:
        client.close()
    print(json.dumps(result, indent=2))
    return 0


def _when(value: str | None) -> "int | str | None":
    """Parse a ``--at``/``--since``/``--until`` value.

    Bare integers are time points on the mapping's scale; anything else
    is handed to the mapping's ISO-8601 parser.
    """
    if value is None:
        return None
    try:
        return int(value)
    except ValueError:
        return value


def _cmd_ingest(args: argparse.Namespace) -> int:
    from repro.events import EventLog, EventMapping

    mapping = EventMapping.from_json(_load_json(args.event_mapping))
    if args.events == "-":
        text = sys.stdin.read()
    else:
        try:
            text = Path(args.events).read_text()
        except OSError as exc:
            raise SystemExit(
                f"error: cannot read events from {args.events}: {exc}"
            ) from exc
    lines = [line for line in text.splitlines() if line.strip()]

    if args.follow:
        if not args.session:
            raise SystemExit("error: ingest --follow requires --session NAME")
        from repro.server import ClientError, ServerClient

        client = ServerClient(host=args.host, port=args.port)
        batch = max(1, args.batch)
        mapping_json = mapping.to_json()
        try:
            for number, start in enumerate(range(0, len(lines), batch)):
                chunk = lines[start : start + batch]
                result = client.events(
                    args.session,
                    chunk,
                    mapping=mapping_json if start == 0 else None,
                )
                ingest = result["ingest"]
                diff = result["diff"]
                print(
                    f"batch {number}: {ingest['accepted']} new events, "
                    f"{ingest['corrections']} corrections, "
                    f"{ingest['duplicates']} duplicates, "
                    f"{ingest['out_of_order']} out of order, "
                    f"{ingest['pending']} pending; "
                    f"target +{len(diff['add'])}/-{len(diff['remove'])}",
                    file=sys.stderr,
                )
            info = client.info(args.session)
        except ClientError as exc:
            print(f"error: server returned {exc.status}: {exc}", file=sys.stderr)
            return 2
        except OSError as exc:
            print(
                f"error: cannot reach server at {args.host}:{args.port}: {exc}",
                file=sys.stderr,
            )
            return 2
        finally:
            client.close()
        print(json.dumps(info, indent=2))
        return 0

    log = EventLog(mapping)
    report = log.ingest(lines)
    print(
        f"ingested {len(lines)} lines: {report.accepted} events, "
        f"{report.corrections} corrections, {report.duplicates} duplicates, "
        f"{report.pending} pending; horizon {log.horizon}",
        file=sys.stderr,
    )
    if args.since is not None:
        delta = log.delta_between(_when(args.since), _when(args.until))
        print(json.dumps(delta.to_json(), indent=2))
        return 0
    instance = log.snapshot_at(_when(args.at))
    _write_instance(instance, args.out, args.pretty)
    return 0


def _shard_count(value: str) -> int:
    """Argparse type for ``--shards``: a clean error instead of a traceback."""
    try:
        parsed = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid int value: {value!r}") from None
    if parsed < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {parsed}")
    return parsed


def _add_join_flag(command: argparse.ArgumentParser) -> None:
    """The join-engine selector, shared by chase/query/verify.

    Both engines enumerate byte-identical rows in the identical order,
    so the flag only changes how long the run takes — ``auto`` picks the
    worst-case-optimal join for large-enough cyclic ≥3-atom bodies and
    the flat written-order join everywhere else.
    """
    command.add_argument(
        "--join",
        choices=["auto", "flat", "wcoj"],
        default="auto",
        help="join algorithm for multi-atom rule bodies and queries: "
        "auto (default) uses the worst-case-optimal join for cyclic "
        "bodies of three or more atoms over large-enough relations and "
        "the flat join elsewhere; flat/wcoj force one engine (the "
        "answers are identical either way — only the runtime differs)",
    )


def _add_scheduler_flags(command: argparse.ArgumentParser) -> None:
    """The abstract chase's region-scheduler flags, shared by chase/verify."""
    command.add_argument(
        "--shards",
        type=_shard_count,
        default=1,
        help="partition the abstract chase's regions across N shards "
        "(per-shard null namespaces; prints per-shard timing)",
    )
    command.add_argument(
        "--executor",
        choices=["serial", "threads", "processes"],
        default="serial",
        help="how sharded region blocks run: one at a time (default), a "
        "thread pool (GIL-bound), or a process pool (true parallelism; "
        "shards travel in the shard-codec wire format)",
    )
    command.add_argument(
        "--workers",
        type=_shard_count,
        default=None,
        help="pool size for --executor threads/processes "
        "(default: one per shard, processes capped at the CPU count)",
    )
    command.add_argument(
        "--incremental",
        choices=["on", "off"],
        default=None,
        help="reuse recorded chase work (byte-identical to 'off'; "
        "default on): adjacent region snapshots for the abstract "
        "chase, the --norm-log replay chain for the concrete c-chase",
    )
    command.add_argument(
        "--norm-log",
        metavar="FILE",
        help="persist the c-chase's fragment-level normalization replay "
        "state: when FILE exists it seeds replay of unchanged "
        "value-equivalence groups, and the run's state is written back "
        "(a pickle — only load files this tool wrote for you; "
        "concrete c-chase with Algorithm 1 normalization only)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Temporal data exchange (Golshanara & Chomicki)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    chase = commands.add_parser("chase", help="run the c-chase")
    chase.add_argument("--mapping", required=True, help="mapping JSON file")
    chase.add_argument("--source", required=True, help="source instance JSON file")
    chase.add_argument("--out", help="write the solution JSON here")
    chase.add_argument("--pretty", action="store_true", help="print ASCII tables")
    chase.add_argument("--trace", action="store_true", help="print chase steps")
    chase.add_argument(
        "--normalization",
        choices=["conjunction", "naive"],
        default="conjunction",
    )
    chase.add_argument(
        "--variant", choices=["standard", "oblivious"], default="standard"
    )
    chase.add_argument("--coalesce", action="store_true")
    chase.add_argument(
        "--engine",
        choices=["delta", "rescan"],
        default="delta",
        help="egd fixpoint strategy: semi-naive delta rounds (default) "
        "or full re-enumeration per round",
    )
    chase.add_argument(
        "--via",
        choices=["concrete", "abstract"],
        default="concrete",
        help="chase procedure: the c-chase on the concrete instance "
        "(default) or the abstract chase over region snapshots "
        "(prints snapshot tables; honors --shards/--executor/--incremental)",
    )
    _add_scheduler_flags(chase)
    _add_join_flag(chase)
    chase.set_defaults(handler=_cmd_chase)

    norm = commands.add_parser("normalize", help="normalize an instance")
    norm.add_argument("--source", required=True)
    norm.add_argument("--mapping", help="mapping JSON (required unless --naive)")
    norm.add_argument("--phase", choices=["st", "egd"], default="st")
    norm.add_argument("--naive", action="store_true")
    norm.add_argument("--out")
    norm.add_argument("--pretty", action="store_true")
    norm.set_defaults(handler=_cmd_normalize)

    query = commands.add_parser("query", help="certain answers")
    query.add_argument("--mapping", required=True)
    query.add_argument("--source", required=True)
    query.add_argument(
        "--query",
        required=True,
        help="rule(s) like \"q(n,s) :- Emp(n,c,s)\"; ';'-separated for unions",
    )
    query.add_argument(
        "--engine",
        choices=["indexed", "scan"],
        default="indexed",
        help="evaluation engine: indexed plan probing (default) or the "
        "scan reference mode",
    )
    query.add_argument(
        "--incremental",
        action="store_true",
        help="replay the recorded query log (chase state, normalization "
        "plans and per-disjunct answers); needs --query-log",
    )
    query.add_argument(
        "--query-log",
        metavar="FILE",
        help="query replay chain: read the recorded log here (if present) "
        "and write this run's state back.  Pickle format — only reuse "
        "files this tool wrote",
    )
    _add_join_flag(query)
    query.set_defaults(handler=_cmd_query)

    verify = commands.add_parser(
        "verify", help="check the Figure 10 correspondence"
    )
    verify.add_argument("--mapping", required=True)
    verify.add_argument("--source", required=True)
    verify.add_argument(
        "--engine",
        choices=["delta", "rescan"],
        default="delta",
        help="chase engine mode for both procedures",
    )
    _add_scheduler_flags(verify)
    _add_join_flag(verify)
    verify.set_defaults(handler=_cmd_verify)

    figures = commands.add_parser(
        "figures", help="print every regenerated paper figure"
    )
    figures.set_defaults(handler=_cmd_figures)

    server = commands.add_parser(
        "serve",
        help="run the resident chase daemon (see docs/server.md)",
    )
    server.add_argument("--host", default="127.0.0.1", help="bind address")
    server.add_argument("--port", type=int, default=8765, help="listen port")
    server.add_argument(
        "--workers",
        type=_shard_count,
        default=None,
        help="process-pool size for sharded abstract chases "
        "(default: one per shard, capped at the CPU count)",
    )
    server.add_argument(
        "--snapshot-dir",
        metavar="DIR",
        help="spool directory for session snapshot/load "
        "(pickles — treat it like the CLI's --norm-log files)",
    )
    server.add_argument(
        "--cache-entries",
        type=_shard_count,
        default=64,
        help="capacity of the content-addressed chase cache (default 64)",
    )
    server.set_defaults(handler=_cmd_serve)

    client = commands.add_parser(
        "client",
        help="talk to a running daemon",
        description="One request against a running `repro serve` daemon; "
        "responses print as JSON.",
    )
    client.add_argument(
        "action",
        choices=[
            "health",
            "stats",
            "sessions",
            "create",
            "delta",
            "query",
            "target",
            "source",
            "info",
            "snapshot",
            "load",
            "evict",
        ],
        help="which endpoint to call",
    )
    client.add_argument("--host", default="127.0.0.1")
    client.add_argument("--port", type=int, default=8765)
    client.add_argument("--session", metavar="NAME", help="session name")
    client.add_argument("--mapping", help="mapping JSON file (create)")
    client.add_argument("--source", help="source instance JSON file (create)")
    client.add_argument(
        "--replace",
        action="store_true",
        help="create: rebuild the session if it already exists",
    )
    client.add_argument(
        "--add", metavar="FILE", help="delta: JSON file with a list of facts to add"
    )
    client.add_argument(
        "--remove",
        metavar="FILE",
        help="delta: JSON file with a list of facts to remove",
    )
    client.add_argument(
        "--query",
        help="query: rule(s) like \"q(n,s) :- Emp(n,c,s)\"; "
        "';'-separated for unions",
    )
    client.add_argument(
        "--engine",
        choices=["indexed", "scan"],
        default="indexed",
        help="query evaluation engine (indexed replays the session's "
        "answer ledger)",
    )
    client.add_argument(
        "--pretty",
        action="store_true",
        help="target/source: print ASCII tables instead of JSON",
    )
    client.add_argument(
        "--snapshot",
        action="store_true",
        help="evict: snapshot the session to the spool directory first",
    )
    client.set_defaults(handler=_cmd_client)

    ingest = commands.add_parser(
        "ingest",
        help="compile a JSON-lines event log (see docs/api.md)",
        description="Compile an event log through an event mapping: print "
        "the snapshot-at-T source instance (default), a SourceDelta "
        "between two times (--since/--until), or follow the log into a "
        "running server session in batches (--follow).",
    )
    ingest.add_argument(
        "--events",
        required=True,
        metavar="FILE",
        help="JSON-lines event file, or '-' for stdin",
    )
    ingest.add_argument(
        "--event-mapping",
        required=True,
        metavar="FILE",
        help="event mapping JSON (time scale + entity/relationship rules)",
    )
    ingest.add_argument(
        "--at",
        metavar="T",
        help="snapshot time: a time point or ISO-8601 timestamp "
        "(default: the log's horizon)",
    )
    ingest.add_argument(
        "--since",
        metavar="T0",
        help="emit the SourceDelta from snapshot_at(T0) instead of a snapshot",
    )
    ingest.add_argument(
        "--until",
        metavar="T1",
        help="end time for --since (default: the log's horizon)",
    )
    ingest.add_argument("--out", help="write the snapshot JSON here")
    ingest.add_argument("--pretty", action="store_true", help="print ASCII tables")
    ingest.add_argument(
        "--follow",
        action="store_true",
        help="stream the log into a server session via POST /events "
        "(requires --session; the session becomes a live materialized "
        "view of the log)",
    )
    ingest.add_argument("--session", metavar="NAME", help="target session name")
    ingest.add_argument("--host", default="127.0.0.1")
    ingest.add_argument("--port", type=int, default=8765)
    ingest.add_argument(
        "--batch",
        type=_shard_count,
        default=64,
        help="events per request in --follow mode (default 64)",
    )
    ingest.set_defaults(handler=_cmd_ingest)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "command", None) == "normalize":
        if not args.naive and not args.mapping:
            parser.error("normalize requires --mapping unless --naive is given")
    try:
        return args.handler(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
