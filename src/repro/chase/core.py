"""Core computation for universal solutions (extension; Fagin-Kolaitis-Popa).

The paper lists revisiting the *core* in the temporal setting as future
work (Section 7).  We provide the classical snapshot-level building block:
the core of an instance with nulls is its smallest retract — the unique
(up to isomorphism) smallest universal solution.  The oblivious chase
variant produces redundant nulls, and this module removes them; the
ablation benchmark ``bench_ablation_chase_variants`` measures the effect.

The algorithm repeatedly looks for a *proper endomorphism*: a homomorphism
``h : J → J`` (identity on constants) whose image is a proper subinstance.
Each application strictly shrinks the instance, so the loop terminates in
at most ``|J|`` iterations; the search for an endomorphism is complete
(plain backtracking over null assignments), so on termination no proper
endomorphism exists and the result is the core.
"""

from __future__ import annotations

from typing import Iterator

from repro.relational.fact import Fact
from repro.relational.instance import Instance
from repro.relational.terms import (
    Constant,
    GroundTerm,
    Term,
)

__all__ = ["core_of", "is_core", "find_proper_endomorphism"]


def _iter_endomorphisms(instance: Instance) -> Iterator[dict[Term, GroundTerm]]:
    """All endomorphisms of *instance* (identity on constants).

    Backtracks over the facts in deterministic order, unifying each fact
    with a candidate image fact; null bindings accumulate.  The identity
    is among the yielded maps.
    """
    facts = sorted(instance.facts(), key=Fact.sort_key)
    mapping: dict[Term, GroundTerm] = {}

    def bindings_for(item: Fact) -> dict[int, GroundTerm]:
        bound: dict[int, GroundTerm] = {}
        for position, arg in enumerate(item.args):
            if isinstance(arg, Constant):
                bound[position] = arg
            elif arg in mapping:
                bound[position] = mapping[arg]
        return bound

    def try_extend(item: Fact, image: Fact) -> list[Term] | None:
        added: list[Term] = []
        for arg, value in zip(item.args, image.args, strict=True):
            if isinstance(arg, Constant):
                if arg != value:
                    return None
            else:
                current = mapping.get(arg)
                if current is None:
                    mapping[arg] = value
                    added.append(arg)
                elif current != value:
                    for rollback in added:
                        del mapping[rollback]
                    return None
        return added

    def search(position: int) -> Iterator[dict[Term, GroundTerm]]:
        if position == len(facts):
            yield dict(mapping)
            return
        item = facts[position]
        candidates = instance.lookup(item.relation, bindings_for(item))
        for candidate in sorted(candidates, key=Fact.sort_key):
            added = try_extend(item, candidate)
            if added is None:
                continue
            yield from search(position + 1)
            for rollback in added:
                del mapping[rollback]

    yield from search(0)


def find_proper_endomorphism(instance: Instance) -> dict[Term, GroundTerm] | None:
    """An endomorphism whose image is a proper subinstance, or ``None``."""
    all_facts = instance.facts()
    for mapping in _iter_endomorphisms(instance):
        if not mapping:
            continue  # no nulls at all: only the identity exists
        image = {item.substitute(mapping) for item in all_facts}
        if image != all_facts:
            return mapping
    return None


def core_of(instance: Instance) -> Instance:
    """The core of *instance*: its smallest retract.

    For a universal solution this is the smallest universal solution.
    Instances without nulls are their own core.
    """
    current = instance.copy()
    while True:
        if current.is_complete:
            return current
        folding = find_proper_endomorphism(current)
        if folding is None:
            return current
        current = current.substitute(folding)


def is_core(instance: Instance) -> bool:
    """``True`` iff *instance* admits no proper endomorphism."""
    return find_proper_endomorphism(instance) is None
