"""Union-find over ground terms with constants as forced representatives.

The egd phases of both chases resolve whole *batches* of equations
through this structure: every egd match on the current instance is merged
here first, and only then is a single substitution pass applied (one per
round instead of one per equation).  Each equivalence class tracks
whether it contains a constant, in which case the constant is the class
representative (nulls are always replaced *by* constants, never the
other way around — Definition 16).  Attempting to merge two classes with
distinct constants raises :class:`ConstantClashError`, which the chase
translates into a failure result.

For the c-chase, construct with ``check_annotations=True``: merging two
interval-annotated nulls whose annotations differ then raises
:class:`AnnotationMismatchError` — on an instance normalized w.r.t.
``Σ+eg`` both sides of an egd equation always carry the stamp of the
match, so a mismatch means the caller skipped normalization.
"""

from __future__ import annotations

from typing import Dict, Hashable, TypeVar

from repro.errors import ReproError
from repro.relational.terms import (
    AnnotatedNull,
    Constant,
    GroundTerm,
    term_sort_key,
)

__all__ = ["AnnotationMismatchError", "ConstantClashError", "TermUnionFind"]

T = TypeVar("T", bound=Hashable)


class ConstantClashError(ReproError):
    """Two distinct constants were equated — the chase must fail."""

    def __init__(self, left: Constant, right: Constant):
        self.left = left
        self.right = right
        super().__init__(f"cannot equate distinct constants {left} and {right}")


class AnnotationMismatchError(ReproError):
    """Two annotated nulls with different annotations were equated.

    Normalization w.r.t. ``Σ+eg`` guarantees both equated nulls carry the
    stamp of the match, so this signals an egd c-chase step on an
    un-normalized instance — a caller bug, not a chase failure.
    """

    def __init__(self, left: AnnotatedNull, right: AnnotatedNull):
        self.left = left
        self.right = right
        super().__init__(
            "egd c-chase step on un-normalized instance: "
            f"{left} vs {right} carry different annotations"
        )


class TermUnionFind:
    """Union-find over :class:`~repro.relational.terms.GroundTerm` values."""

    def __init__(self, check_annotations: bool = False) -> None:
        self._parent: Dict[GroundTerm, GroundTerm] = {}
        self._check_annotations = check_annotations

    def find(self, term: GroundTerm) -> GroundTerm:
        """Representative of *term*'s class (path-halving compression)."""
        parent = self._parent
        if term not in parent:
            parent[term] = term
            return term
        above = parent[term]
        while above != term:
            grand = parent[above]
            parent[term] = grand
            term = grand
            above = parent[term]
        return term

    def union(self, left: GroundTerm, right: GroundTerm) -> GroundTerm:
        """Merge the classes of *left* and *right*; returns the representative.

        Constants always win representative election; merging classes that
        contain two distinct constants raises :class:`ConstantClashError`.
        When both roots are nulls the smaller under
        :func:`~repro.relational.terms.term_sort_key` wins, keeping chase
        output deterministic.  The class minimum always ends up as root,
        so the final representatives do not depend on merge order.

        With ``check_annotations=True``, merging two annotated-null roots
        whose annotations differ raises :class:`AnnotationMismatchError`.
        """
        root_left = self.find(left)
        root_right = self.find(right)
        if root_left == root_right:
            return root_left

        left_const = isinstance(root_left, Constant)
        right_const = isinstance(root_right, Constant)
        if left_const and right_const:
            raise ConstantClashError(root_left, root_right)  # type: ignore[arg-type]
        if (
            self._check_annotations
            and isinstance(root_left, AnnotatedNull)
            and isinstance(root_right, AnnotatedNull)
            and root_left.annotation != root_right.annotation
        ):
            raise AnnotationMismatchError(root_left, root_right)
        if left_const:
            winner, loser = root_left, root_right
        elif right_const:
            winner, loser = root_right, root_left
        elif term_sort_key(root_left) <= term_sort_key(root_right):
            winner, loser = root_left, root_right
        else:
            winner, loser = root_right, root_left
        self._parent[loser] = winner
        return winner

    def same_class(self, left: GroundTerm, right: GroundTerm) -> bool:
        return self.find(left) == self.find(right)

    def substitution(self) -> dict[GroundTerm, GroundTerm]:
        """The induced replacement map term → representative (non-identity only)."""
        mapping: dict[GroundTerm, GroundTerm] = {}
        for term in self._parent:
            root = self.find(term)
            if root != term:
                mapping[term] = root
        return mapping

    def classes(self) -> tuple[frozenset[GroundTerm], ...]:
        """All non-singleton equivalence classes (for diagnostics)."""
        grouped: dict[GroundTerm, set[GroundTerm]] = {}
        for term in self._parent:
            grouped.setdefault(self.find(term), set()).add(term)
        return tuple(
            frozenset(members)
            for members in grouped.values()
            if len(members) > 1
        )

    def __contains__(self, term: object) -> bool:
        return term in self._parent

    def __len__(self) -> int:
        return len(self._parent)
