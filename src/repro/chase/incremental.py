"""Incremental cross-region snapshot chase: replay work between regions.

The abstract chase visits one representative snapshot per constancy
region, and adjacent region snapshots typically differ by a handful of
facts — yet the from-scratch schedule re-derives every homomorphism and
re-fires every tgd per region.  This module chases a shard's region
block *incrementally*: each region records a replayable log (per-tgd
match streams with firing records), and the next region replays
everything the snapshot diff did not invalidate.  The egd fixpoint runs
the live semi-naive engine unchanged: its round-0 enumeration over the
pre-sorted target indexes is already cheaper than any replay
bookkeeping (measured — see docs/architecture.md), and the target it
runs on is identical either way.

The hard requirement is that the incremental schedule is **byte-identical**
to the from-scratch chase — null numbering, traces and failures included.
Three structural facts make that possible:

1. **Match streams are content-determined and patchable.**  A tgd's lhs
   match enumeration depends only on the facts of the lhs relations, and
   for the two dominant shapes its order is a sorted merge: a single-atom
   lhs enumerates matching facts in ``Fact.sort_key`` order, and an
   unconstrained two-atom lhs enumerates (outer fact, join partner) pairs
   outer-major with both levels sorted.  Removing the diff's dead facts
   and splicing its new facts into the recorded stream therefore
   reproduces the fresh enumeration *order* exactly.  When the
   cardinality rule flips the join orientation, the *pairs* are
   unchanged — re-sorting the recorded stream into the new
   (outer, inner) order reproduces the fresh order without a live
   re-enumeration.  Shapes the patcher does not understand (constants +
   multi-atom, three-plus atom joins) simply re-enumerate live —
   correct, just not accelerated.

2. **Firing replay preserves null numbering.**  A surviving firing mints
   exactly as many fresh nulls as the from-scratch firing would, in the
   same stream position, so :meth:`NullFactory.reissue` replays the
   recorded issuance transcript under the current counter and renames
   the recorded rhs facts — fresh names, identical order.  Facts without
   fresh nulls are reused as objects, hash and sort-key caches intact.

3. **Fire/skip decisions and dedup outcomes replay until the streams
   deviate.**  Up to the first deviation of the region's processed match
   sequence from the recorded one, the target is the recorded target's
   image under the replay renaming ρ, so every recorded decision — the
   fire/skip choice *and* which rhs facts were new to the target — is
   forced and is copied without probing the target at all.  Deviations
   split in two: purely *additive* ones (a diff-introduced match) leave
   the target a superset of the ρ-image, so recorded skips stay forced
   and only recorded firings need a live extension probe; *dropping*
   ones (a dead recorded entry, a re-sorted stream) invalidate
   everything, and every later decision is probed live against the
   current target.  The rhs projection probes are seeded lazily at the
   first live decision, so a fully-replayed region never maintains them.

Failures stay exact by construction, but as a belt-and-braces guarantee a
replay-assisted region that *fails* rewinds the null factory and re-runs
from scratch, so failure records can never drift from the reference
schedule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.chase.engine import RhsProbe, run_egd_fixpoint
from repro.chase.nulls import NullFactory
from repro.chase.standard import (
    ChaseVariant,
    SnapshotChaseResult,
    _SnapshotDomain,
    _SnapshotTgdTask,
    _egd_tasks,
    _snapshot_tgd_tasks,
    chase_snapshot,
)
from repro.chase.trace import ChaseTrace, TgdStepRecord
from repro.dependencies.mapping import DataExchangeSetting
from repro.relational.fact import Fact
from repro.relational.formulas import Atom
from repro.relational.homomorphism import (
    _flat_join_plan,
    find_homomorphisms_with_images,
    has_homomorphism,
    match_atom_against_fact,
)
from repro.relational.instance import Instance
from repro.relational.terms import GroundTerm, Variable

__all__ = [
    "IncrementalRegionChaser",
    "RegionReuseStats",
    "ReplayLedger",
    "chase_source_delta",
]


class ReplayLedger:
    """A signature-checked store of recorded decisions, with accounting.

    The recorded-replay engines of this repository share one contract: a
    decision recorded under some input may be replayed verbatim **only
    while the current input provably matches the recorded one**, and any
    mismatch must fall back to the live computation — never to a guess.
    This class is the small shared mechanism behind that contract: each
    key stores ``(signature, payload)``, and :meth:`recall` hands the
    payload back only on an exact signature match, counting hits and
    misses so callers can report replay coverage (the cross-region
    chaser reports stream reuse through :class:`RegionReuseStats`; the
    normalization engine reports group/component replay counts through
    ``NormalizationReport``).

    Signatures are whatever equality-comparable value captures *all* the
    input a decision depends on — a frozenset of group members, a tuple
    of diff facts — chosen by the caller.  A ledger never expires
    entries; one ledger represents one recorded run.
    """

    __slots__ = ("_records", "hits", "misses")

    def __init__(self) -> None:
        self._records: dict[object, tuple[object, object]] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._records)

    def record(self, key: object, signature: object, payload: object) -> None:
        """Store *payload* for *key*, replayable iff *signature* recurs."""
        self._records[key] = (signature, payload)

    def recall(self, key: object, signature: object) -> object | None:
        """The recorded payload on an exact signature match, else ``None``."""
        entry = self._records.get(key)
        if entry is not None and entry[0] == signature:
            self.hits += 1
            return entry[1]
        self.misses += 1
        return None

    def counters(self) -> tuple[int, int]:
        """The cumulative ``(hits, misses)`` pair.

        A ledger that persists across runs (``--norm-log`` chains, the
        resident server's sessions) accumulates counters over its whole
        lifetime; callers that report *per-run* or *per-request* replay
        coverage take a mark before the run and difference it after with
        :meth:`delta_since`.  This is the public attach/detach surface
        the CLI and :mod:`repro.server` share — neither reaches into the
        counter attributes directly.
        """
        return (self.hits, self.misses)

    def delta_since(self, mark: tuple[int, int]) -> tuple[int, int]:
        """``(hits, misses)`` accrued since *mark* (a prior :meth:`counters`)."""
        return (self.hits - mark[0], self.misses - mark[1])


@dataclass
class RegionReuseStats:
    """How much of a region's chase was replayed vs. run live."""

    replayed_matches: int = 0
    live_matches: int = 0
    replayed_firings: int = 0
    live_firings: int = 0
    streams_reused: int = 0
    streams_patched: int = 0
    streams_rebuilt: int = 0

    def add(self, other: "RegionReuseStats") -> None:
        """Accumulate *other* into this instance (shard-level totals)."""
        self.replayed_matches += other.replayed_matches
        self.live_matches += other.live_matches
        self.replayed_firings += other.replayed_firings
        self.live_firings += other.live_firings
        self.streams_reused += other.streams_reused
        self.streams_patched += other.streams_patched
        self.streams_rebuilt += other.streams_rebuilt

    @property
    def fully_replayed(self) -> bool:
        """``True`` iff no live rule fired and no live match was found."""
        return not self.live_matches and not self.live_firings


class _FiringRecord:
    """One fired tgd step, replayable against a later region."""

    __slots__ = ("record", "facts", "null_fact_indices", "added_indices")

    def __init__(
        self,
        record: TgdStepRecord,
        facts: tuple[Fact, ...],
        null_fact_indices: tuple[int, ...],
        added_indices: tuple[int, ...],
    ) -> None:
        self.record = record          # as traced (assignment, added, fresh)
        self.facts = facts            # full rhs instantiation, pre-dedup
        self.null_fact_indices = null_fact_indices  # facts carrying fresh nulls
        self.added_indices = added_indices  # facts the target actually took


class _MatchEntry:
    """One lhs match of a task's stream: images, assignment, firing-or-None."""

    __slots__ = ("images", "assignment", "firing")

    def __init__(
        self,
        images: tuple[Fact, ...],
        assignment: dict[Variable, GroundTerm],
        firing: _FiringRecord | None,
    ) -> None:
        self.images = images
        self.assignment = assignment
        self.firing = firing


class _RegionRecord:
    """Everything the next region needs to replay this one.

    *egd_clean* marks a region whose egd fixpoint recorded nothing (so
    its target is exactly the tgd pass's output) — the precondition for
    the next region's copy-on-write replay to skip the fixpoint.
    """

    __slots__ = ("task_logs", "outer_choices", "egd_clean", "_totals")

    def __init__(
        self,
        task_logs: list[list[_MatchEntry]],
        outer_choices: list[int | None],
        egd_clean: bool = False,
    ) -> None:
        self.task_logs = task_logs
        self.outer_choices = outer_choices
        self.egd_clean = egd_clean
        self._totals: tuple[int, int, int] | None = None

    def totals(self) -> tuple[int, int, int]:
        """``(matches, firings, fresh nulls)`` across all logs, cached."""
        found = self._totals
        if found is None:
            matches = firings = nulls = 0
            for log in self.task_logs:
                matches += len(log)
                for entry in log:
                    firing = entry.firing
                    if firing is not None:
                        firings += 1
                        nulls += len(firing.record.fresh_nulls)
            self._totals = found = (matches, firings, nulls)
        return found


# ---------------------------------------------------------------------------
# Stream shapes: which enumeration orders the patcher can reproduce
# ---------------------------------------------------------------------------


class _SingleShape:
    """Single-atom lhs: the stream is the atom's matching facts, sorted."""

    __slots__ = ("atom", "relations")

    def __init__(self, atom: Atom) -> None:
        self.atom = atom
        self.relations = frozenset((atom.relation,))

    def assignment_for(self, item: Fact) -> dict[Variable, GroundTerm] | None:
        return match_atom_against_fact(self.atom, item)


class _PairOrientation:
    """Join metadata of a two-atom shape for one choice of outer atom.

    Mirrors the setup of ``homomorphism._iter_pair_matches`` so patched
    streams bind assignments and order partners exactly as the live
    group join does.
    """

    __slots__ = (
        "outer_atom",
        "inner_atom",
        "outer_index",
        "inner_index",
        "outer_key_positions",
        "inner_key_positions",
        "outer_slots",
        "inner_new_slots",
    )

    def __init__(self, atoms: tuple[Atom, Atom], outer_index: int) -> None:
        self.outer_index = outer_index
        self.inner_index = 1 - outer_index
        self.outer_atom = atoms[outer_index]
        self.inner_atom = atoms[self.inner_index]
        outer_positions = {
            arg: pos for pos, arg in enumerate(self.outer_atom.args)
        }
        inner_key: list[int] = []
        outer_key: list[int] = []
        new_slots: list[tuple[Variable, int]] = []
        for position, arg in enumerate(self.inner_atom.args):
            outer_position = outer_positions.get(arg)
            if outer_position is None:
                new_slots.append((arg, position))  # type: ignore[arg-type]
            else:
                inner_key.append(position)
                outer_key.append(outer_position)
        self.inner_key_positions = tuple(inner_key)
        self.outer_key_positions = tuple(outer_key)
        self.outer_slots = tuple(enumerate(self.outer_atom.args))
        self.inner_new_slots = tuple(new_slots)

    def pair(self, outer_fact: Fact, inner_fact: Fact) -> tuple[
        tuple[Fact, ...], dict[Variable, GroundTerm]
    ]:
        """Written-order images and the full assignment of one pair."""
        assignment: dict[Variable, GroundTerm] = {}
        outer_args = outer_fact.args
        for position, variable in self.outer_slots:
            assignment[variable] = outer_args[position]  # type: ignore[index]
        inner_args = inner_fact.args
        for variable, position in self.inner_new_slots:
            assignment[variable] = inner_args[position]
        images = (
            (outer_fact, inner_fact)
            if self.outer_index == 0
            else (inner_fact, outer_fact)
        )
        return images, assignment


class _PairShape:
    """Unconstrained two-atom lhs: outer-major sorted group join."""

    __slots__ = ("atoms", "relations", "orientations")

    def __init__(self, atoms: tuple[Atom, Atom]) -> None:
        self.atoms = atoms
        self.relations = frozenset(atom.relation for atom in atoms)
        self.orientations = (
            _PairOrientation(atoms, 0),
            _PairOrientation(atoms, 1),
        )

    def outer_choice(self, snapshot: Instance) -> int:
        """Replicates the live cardinality rule for the outer atom."""
        counts = [
            snapshot.candidate_count(atom.relation, {}) for atom in self.atoms
        ]
        return 1 if counts[1] < counts[0] else 0


def _insert_all(target: Instance, facts) -> None:
    """Insert *facts* straight into the target's relation buckets.

    The no-drops replay's fast insert: valid only while nothing observes
    the target (no seeded probe, cold ``_index``/``_ordered`` caches —
    the callers check) and the facts are known-new (forced dedup) or
    idempotent re-adds.  Mirrors the parts of :meth:`Instance.add` that
    still apply: bucket membership and the ``_max_arity`` bound (which
    ``facts_with_any_term`` consults later); keep in sync with it.
    """
    buckets = target._facts_by_relation
    max_arity = target._max_arity
    for item in facts:
        bucket = buckets.get(item.relation)
        if bucket is None:
            buckets[item.relation] = bucket = set()
        bucket.add(item)
        if item.arity > max_arity.get(item.relation, 0):
            max_arity[item.relation] = item.arity


class _ReplaySnapshotResult(SnapshotChaseResult):
    """A fully-replayed region's outcome as a copy-on-write view.

    When a region's every stream reuses the recorded log verbatim and
    the recorded egd fixpoint was a no-op, its result is the recorded
    run's image under the replay renaming ρ — determined entirely by the
    recorded log and the null counter at region start.  This view holds
    exactly those two things; the target instance and the renamed trace
    are built on first access, so a caller that never reads them (the
    deferred merge of the parallel scheduler, coverage accounting) skips
    the region's target build and null renaming entirely.

    Mutation goes through the ``target``/``trace`` setters, which
    simply replace the lazy view — copy-on-write at result granularity.
    """

    def __init__(self, record: _RegionRecord, nulls: NullFactory) -> None:
        self._record = record
        self._nulls = nulls  # private clone positioned at region start
        self._target: Instance | None = None
        self._trace: ChaseTrace | None = None
        self.failed = False
        self.failure = None

    def _materialize(self) -> None:
        # Mirrors _replay_log minus the accounting: same task order,
        # same insertion order, same renaming — byte-identical output.
        target = Instance()
        trace = ChaseTrace()
        nulls = self._nulls
        record_step = trace.record
        for log in self._record.task_logs:
            for entry in log:
                recorded = entry.firing
                if recorded is None:
                    continue
                record = recorded.record
                transcript = record.fresh_nulls
                if not transcript:
                    _insert_all(target, record.added_facts)
                    record_step(record)
                    continue
                rename = nulls.reissue(transcript)
                fact_list = list(recorded.facts)
                for index in recorded.null_fact_indices:
                    item = fact_list[index]
                    fact_list[index] = Fact.make(
                        item.relation,
                        tuple(rename.get(arg, arg) for arg in item.args),
                    )
                new_facts = tuple(
                    fact_list[index] for index in recorded.added_indices
                )
                _insert_all(target, new_facts)
                record_step(
                    TgdStepRecord(
                        dependency=record.dependency,
                        assignment=entry.assignment,
                        added_facts=new_facts,
                        fresh_nulls=tuple(rename.values()),
                    )
                )
        if self._target is None:
            self._target = target
        if self._trace is None:
            self._trace = trace

    @property
    def target(self) -> Instance:
        if self._target is None:
            self._materialize()
        return self._target

    @target.setter
    def target(self, value: Instance) -> None:
        self._target = value

    @property
    def trace(self) -> ChaseTrace:
        if self._trace is None:
            self._materialize()
        return self._trace

    @trace.setter
    def trace(self, value: ChaseTrace) -> None:
        self._trace = value

    def __reduce__(self):
        return (
            SnapshotChaseResult,
            (
                self.target,
                self.failed,
                self.failure,
                ChaseTrace(list(self.trace.steps)),
            ),
        )


def _analyze_stream_shape(tgd) -> _SingleShape | _PairShape | None:
    atoms = tuple(tgd.lhs.atoms)
    if len(atoms) == 1:
        return _SingleShape(atoms[0])
    if len(atoms) == 2 and _flat_join_plan(atoms) is not None:
        return _PairShape(atoms)  # type: ignore[arg-type]
    return None


# ---------------------------------------------------------------------------
# The chaser
# ---------------------------------------------------------------------------


class IncrementalRegionChaser:
    """Chases one shard's ascending region block with cross-region reuse.

    Feed it each region's snapshot and net fact diff (from
    :meth:`AbstractInstance.iter_region_deltas`) in timeline order; it
    returns per-region :class:`SnapshotChaseResult`\\ s byte-identical to
    ``chase_snapshot`` under the same shared :class:`NullFactory`.
    """

    def __init__(
        self,
        setting: DataExchangeSetting,
        nulls: NullFactory,
        variant: ChaseVariant = "standard",
        engine: str = "delta",
    ) -> None:
        self.setting = setting
        self.nulls = nulls
        self.variant = variant
        self.engine = engine
        self.tasks = _snapshot_tgd_tasks(setting)
        self.shapes = [
            _analyze_stream_shape(task.tgd) for task in self.tasks
        ]
        self.egd_tasks = _egd_tasks(setting)
        self.previous: _RegionRecord | None = None
        # Divergence state of the region being chased.  ``_deviated``
        # flips at the first deviation of the processed match sequence
        # from the recorded one; until then every recorded fire/skip
        # decision (and dedup outcome) is forced and is copied without
        # probing.  ``_dropped`` flips only on deviations that can
        # *remove* target content relative to the recorded run (a
        # dropped entry, a re-sorted stream); while it stays ``False``
        # the current target is a superset of the recorded target's
        # ρ-image at every position, so recorded *skip* decisions remain
        # forced and only recorded firings need a live probe.
        self._deviated = True
        self._dropped = True
        self._probes_ready = False

    # -- public driver -----------------------------------------------------

    def chase(
        self,
        snapshot: Instance,
        added: Sequence[Fact],
        removed: Sequence[Fact],
    ) -> tuple[SnapshotChaseResult, RegionReuseStats]:
        """Chase one region's snapshot, replaying what the diff allows."""
        counter = self.nulls.state()
        previous = self.previous
        stats = RegionReuseStats()

        diff_relations = {item.relation for item in added}
        diff_relations.update(item.relation for item in removed)
        if previous is not None and previous.egd_clean:
            lazy = self._pure_replay(snapshot, diff_relations, previous, stats)
            if lazy is not None:
                return lazy, stats

        trace = ChaseTrace()
        target = Instance()
        domain = _SnapshotDomain(
            target, source=snapshot, nulls=self.nulls, variant=self.variant
        )
        # Probes are seeded lazily, and only on the *dropping* path: while
        # no recorded content has been dropped, extension checks are
        # answered from the recorded decisions, the region's own
        # deviation additions (the mini probes) and exact target scans,
        # so a region without drops never maintains a projection probe.
        self._probes_ready = False
        self._minis = [
            RhsProbe(probe.relation, probe.arity, probe.slots)
            if (probe := task.rhs_probe) is not None
            else None
            for task in self.tasks
        ]

        removed_set = frozenset(removed)
        self._deviated = self._dropped = previous is None

        task_logs: list[list[_MatchEntry]] = []
        outer_choices: list[int | None] = []
        for task_index, (task, shape) in enumerate(
            zip(self.tasks, self.shapes, strict=True)
        ):
            stream, outer_choice, reuse_log = self._stream(
                task,
                shape,
                snapshot,
                added,
                removed_set,
                diff_relations,
                previous,
                task_index,
                stats,
            )
            if (
                reuse_log is not None
                and not self._deviated
                and not self._dropped
                and not self._probes_ready
                and not target._index
                and not target._ordered
            ):
                # The stream is untouched by the diff and the region has
                # not deviated: every decision and dedup outcome is
                # forced, so the whole log replays in one tight loop.
                entries = self._replay_log(target, reuse_log, stats, trace)
            else:
                entries = []
                for images, assignment, recorded in stream:
                    if recorded is None:
                        stats.live_matches += 1
                    else:
                        stats.replayed_matches += 1
                    entries.append(
                        self._fire(
                            domain,
                            task,
                            task_index,
                            images,
                            assignment,
                            recorded,
                            stats,
                            trace,
                        )
                    )
            task_logs.append(entries)
            outer_choices.append(outer_choice)

        tgd_steps = len(trace.steps)
        if (
            previous is not None
            and previous.egd_clean
            and stats.live_firings == 0
        ):
            # Every target fact is a recorded fact under the (injective)
            # replay renaming: replayed firings rename recorded rhs
            # instantiations, drops and skips only remove content, and
            # no live firing minted anything outside a recorded
            # transcript.  The target is therefore a subset of the
            # renamed recorded target, on which every egd equation was
            # trivially satisfied (the recorded fixpoint merged
            # nothing), and injective renaming preserves every equality
            # an egd can observe — so the fixpoint is a no-op and the
            # seed-round enumeration is skipped outright.
            failure = None
        else:
            failure = run_egd_fixpoint(
                domain, self.egd_tasks, trace, mode=self.engine
            )
        if failure is not None:
            self.previous = None
            if previous is not None:
                # Replay-assisted failure: rewind and reproduce the exact
                # from-scratch failure (trace, partial target and all).
                self.nulls.restore(counter)
                return (
                    chase_snapshot(
                        snapshot,
                        self.setting,
                        null_factory=self.nulls,
                        variant=self.variant,
                        engine=self.engine,  # type: ignore[arg-type]
                    ),
                    stats,
                )
            return (
                SnapshotChaseResult(
                    target=target, failed=True, failure=failure, trace=trace
                ),
                stats,
            )
        self.previous = _RegionRecord(
            task_logs, outer_choices, egd_clean=len(trace.steps) == tgd_steps
        )
        return SnapshotChaseResult(target=target, trace=trace), stats

    def _pure_replay(
        self,
        snapshot: Instance,
        diff_relations: set[str],
        previous: _RegionRecord,
        stats: RegionReuseStats,
    ) -> _ReplaySnapshotResult | None:
        """The whole-region copy-on-write fast path, when it is forced.

        Applicable when every stream would reuse the recorded log
        verbatim — every shape is patchable, no lhs relation is touched
        by the diff, no pair join flips orientation — and the recorded
        egd fixpoint was a no-op.  The region's result is then the
        recorded run's image under the replay renaming (the fixpoint on
        that image is a no-op too: renaming fresh nulls injectively
        preserves every equality an egd can observe), so nothing needs
        to be built now: the null counter advances by the recorded
        issuance count, and a lazy view over the recorded log is
        returned.  The next region replays off the same base log — its
        images and assignments are diff-untouched snapshot content, and
        firing facts are renamed from the base transcripts under
        whatever the counter is by then.
        """
        outer_choices: list[int | None] = []
        for task_index, shape in enumerate(self.shapes):
            if shape is None or (shape.relations & diff_relations):
                return None
            choice: int | None = None
            if isinstance(shape, _PairShape):
                choice = shape.outer_choice(snapshot)
                if choice != previous.outer_choices[task_index]:
                    return None
            outer_choices.append(choice)
        matches, firings, null_count = previous.totals()
        stats.streams_reused += len(self.shapes)
        stats.replayed_matches += matches
        stats.replayed_firings += firings
        start = self.nulls.state()
        self.nulls.advance(null_count)
        self.previous = _RegionRecord(
            previous.task_logs, outer_choices, egd_clean=True
        )
        self.previous._totals = previous._totals
        return _ReplaySnapshotResult(previous, self.nulls.spawn_at(start))

    # -- tgd side ----------------------------------------------------------

    def _stream(
        self,
        task: _SnapshotTgdTask,
        shape: _SingleShape | _PairShape | None,
        snapshot: Instance,
        added: Sequence[Fact],
        removed_set: frozenset[Fact],
        diff_relations: set[str],
        previous: _RegionRecord | None,
        task_index: int,
        stats: RegionReuseStats,
    ) -> tuple[
        Iterable[tuple[tuple[Fact, ...], dict, _MatchEntry | None]],
        int | None,
        list[_MatchEntry] | None,
    ]:
        """The task's match stream over *snapshot*, in live enumeration order.

        Yields ``(images, assignment, previous_entry)`` triples;
        *previous_entry* is the surviving recorded entry (its firing is
        replayable) or ``None`` for a match the diff introduced.  The
        third element is the recorded log when the stream is a pure
        replay of it (enabling the tight-loop fast path), else ``None``.
        """
        if shape is None or previous is None:
            self._deviated = self._dropped = True
            stats.streams_rebuilt += 1
            # Record the pair orientation the live enumeration uses (the
            # same cardinality rule), so the next region does not
            # misread the rebuilt log as an orientation flip.
            rebuilt_choice = (
                shape.outer_choice(snapshot)
                if isinstance(shape, _PairShape)
                else None
            )
            return self._live_stream(task, snapshot), rebuilt_choice, None
        outer_choice: int | None = None
        log = previous.task_logs[task_index]
        if isinstance(shape, _PairShape):
            outer_choice = shape.outer_choice(snapshot)
            if outer_choice != previous.outer_choices[task_index]:
                # The cardinality rule flipped the join orientation: the
                # pairs are unchanged, but their enumeration order is the
                # flipped (outer, inner) sort — re-sort the recorded
                # stream into it.  The processed order now deviates from
                # the recorded one, so recorded decisions stop being
                # forced (dedup may resolve differently).
                self._deviated = self._dropped = True
                orientation = shape.orientations[outer_choice]
                outer_index = orientation.outer_index
                inner_index = orientation.inner_index
                pair = orientation.pair
                # Rebuild the assignments too: their insertion order is
                # part of the recorded trace, and the fresh enumeration
                # binds the (new) outer atom's variables first.
                log = sorted(
                    (
                        _MatchEntry(
                            *pair(
                                entry.images[outer_index],
                                entry.images[inner_index],
                            ),
                            entry.firing,
                        )
                        for entry in log
                    ),
                    key=lambda entry: (
                        entry.images[outer_index].sort_key(),
                        entry.images[inner_index].sort_key(),
                    ),
                )
        if not (shape.relations & diff_relations):
            stats.streams_reused += 1
            return (
                ((entry.images, entry.assignment, entry) for entry in log),
                outer_choice,
                log,
            )
        stats.streams_patched += 1
        if isinstance(shape, _SingleShape):
            return (
                self._patch_single(shape, log, added, removed_set),
                None,
                None,
            )
        return (
            self._patch_pair(
                shape.orientations[outer_choice],
                log,
                snapshot,
                added,
                removed_set,
            ),
            outer_choice,
            None,
        )

    def _replay_log(
        self,
        target: Instance,
        log: list[_MatchEntry],
        stats: RegionReuseStats,
        trace: ChaseTrace,
    ) -> list[_MatchEntry]:
        """Replay a whole recorded stream against a non-deviated region.

        Every fire/skip decision and dedup outcome is forced here (the
        caller checked the region has not deviated, no probe is seeded
        and the target's index caches are cold), so skips reuse their
        entry, ground firings reuse entry *and* trace record, and only
        null-minting firings allocate — the renamed facts and their
        records.
        """
        nulls = self.nulls
        record_step = trace.record
        entries: list[_MatchEntry] = []
        append = entries.append
        firings = 0
        for entry in log:
            recorded = entry.firing
            if recorded is None:
                append(entry)
                continue
            firings += 1
            record = recorded.record
            transcript = record.fresh_nulls
            if not transcript:
                _insert_all(target, record.added_facts)
                record_step(record)
                append(entry)
                continue
            rename = nulls.reissue(transcript)
            fact_list = list(recorded.facts)
            for index in recorded.null_fact_indices:
                item = fact_list[index]
                fact_list[index] = Fact.make(
                    item.relation,
                    tuple(rename.get(arg, arg) for arg in item.args),
                )
            facts = tuple(fact_list)
            added_indices = recorded.added_indices
            new_facts = [facts[index] for index in added_indices]
            _insert_all(target, new_facts)
            new_record = TgdStepRecord(
                dependency=record.dependency,
                assignment=entry.assignment,
                added_facts=tuple(new_facts),
                fresh_nulls=tuple(rename.values()),
            )
            record_step(new_record)
            append(
                _MatchEntry(
                    entry.images,
                    entry.assignment,
                    _FiringRecord(
                        new_record,
                        facts,
                        recorded.null_fact_indices,
                        added_indices,
                    ),
                )
            )
        stats.replayed_matches += len(entries)
        stats.replayed_firings += firings
        return entries

    def _seed_probes(self, domain: _SnapshotDomain) -> None:
        """Late :meth:`_SnapshotDomain.attach_probes`, run at the first
        live fire/skip decision of the region.

        Seeding from the facts already in the target at that point is
        equivalent to observing every earlier addition — so a region
        whose decisions all replay skips probe maintenance entirely.
        """
        for task in self.tasks:
            probe = task.rhs_probe
            if probe is not None:
                probe.projection.clear()
                probe.seed(domain.target.facts_of(probe.relation))
                domain.probes_for.setdefault(probe.relation, []).append(probe)
        self._probes_ready = True

    def _live_stream(
        self, task: _SnapshotTgdTask, snapshot: Instance
    ) -> Iterator[tuple[tuple[Fact, ...], dict, None]]:
        for assignment, images in find_homomorphisms_with_images(
            task.tgd.lhs, snapshot, copy=False
        ):
            yield images, dict(assignment), None

    def _patch_single(
        self,
        shape: _SingleShape,
        log: list[_MatchEntry],
        added: Sequence[Fact],
        removed_set: frozenset[Fact],
    ) -> Iterator[tuple[tuple[Fact, ...], dict, _MatchEntry | None]]:
        """Sorted merge of the surviving recorded stream and the diff's
        new matching facts — the live single-atom enumeration order."""
        fresh: list[tuple[tuple, Fact, dict]] = []
        for item in added:
            if item.relation != shape.atom.relation:
                continue
            assignment = shape.assignment_for(item)
            if assignment is not None:
                fresh.append((item.sort_key(), item, assignment))
        fresh.sort(key=lambda entry: entry[0])
        position = 0
        count = len(fresh)
        for entry in log:
            image = entry.images[0]
            if image in removed_set:
                self._deviated = self._dropped = True
                continue
            key = image.sort_key()
            while position < count and fresh[position][0] < key:
                _key, item, assignment = fresh[position]
                position += 1
                self._deviated = True
                yield (item,), assignment, None
            yield entry.images, entry.assignment, entry
        while position < count:
            _key, item, assignment = fresh[position]
            position += 1
            self._deviated = True
            yield (item,), assignment, None

    def _patch_pair(
        self,
        orientation: _PairOrientation,
        log: list[_MatchEntry],
        snapshot: Instance,
        added: Sequence[Fact],
        removed_set: frozenset[Fact],
    ) -> Iterator[tuple[tuple[Fact, ...], dict, _MatchEntry | None]]:
        """Patched outer-major group join, in live enumeration order.

        Merges three outer-sorted sources without walking the outer
        relation: the recorded runs (one per outer fact, already in
        outer order), the diff's new outer facts (partners come from the
        live snapshot index), and the surviving outer facts that gained
        partners from the diff's new inner facts (found by probing the
        join key of each new inner fact — this also covers outer facts
        that had *no* recorded partners, which the log cannot show).
        """
        outer_index = orientation.outer_index
        inner_index = orientation.inner_index
        outer_atom = orientation.outer_atom
        inner_atom = orientation.inner_atom
        added_outer: set[Fact] = set()
        added_inner: list[Fact] = []
        for item in added:
            if (
                item.relation == outer_atom.relation
                and item.arity == outer_atom.arity
            ):
                added_outer.add(item)
            # An atom may join a relation with itself: one added fact can
            # extend both sides, so these branches are not exclusive.
            if (
                item.relation == inner_atom.relation
                and item.arity == inner_atom.arity
            ):
                added_inner.append(item)

        # Surviving outer facts gaining partners: reverse-probe each new
        # inner fact's join key against the snapshot's outer relation.
        inner_key_positions = orientation.inner_key_positions
        outer_key_positions = orientation.outer_key_positions
        new_partners_of: dict[Fact, list[Fact]] = {}
        for item in sorted(added_inner, key=Fact.sort_key):
            bindings = {
                outer_position: item.args[inner_position]
                for outer_position, inner_position in zip(
                    outer_key_positions, inner_key_positions, strict=True
                )
            }
            for outer_fact in snapshot.lookup_ordered(
                outer_atom.relation, bindings
            ):
                if (
                    outer_fact.arity != outer_atom.arity
                    or outer_fact in added_outer
                ):
                    # New outer facts enumerate all partners live below.
                    continue
                new_partners_of.setdefault(outer_fact, []).append(item)

        # Recorded entries are outer-major (equal outer facts adjacent),
        # so one pass groups them into ordered runs (dict: insertion
        # order is outer order); runs of a removed outer fact drop out
        # here, as the fresh outer loop would skip them.
        runs: dict[Fact, list[_MatchEntry]] = {}
        last_outer: Fact | None = None
        for entry in log:
            outer_fact = entry.images[outer_index]
            if outer_fact == last_outer:
                runs[outer_fact].append(entry)
                continue
            if outer_fact in removed_set:
                self._deviated = self._dropped = True
                last_outer = None
                continue
            runs[outer_fact] = [entry]
            last_outer = outer_fact

        # Outer facts entering the stream with the diff: the new outer
        # facts themselves, plus surviving outer facts that appear only
        # through new inner partners (no recorded run).  Both lists are
        # tiny — splice them into the run walk by sort key (distinct
        # facts have distinct keys, so ties cannot happen).
        extra: list[tuple[tuple, Fact, bool]] = [
            (outer_fact.sort_key(), outer_fact, True)
            for outer_fact in added_outer
        ]
        extra.extend(
            (outer_fact.sort_key(), outer_fact, False)
            for outer_fact in new_partners_of
            if outer_fact not in runs
        )
        extra.sort(key=lambda item: item[0])

        pair = orientation.pair

        def emit_extra(outer_fact: Fact, is_added: bool):
            self._deviated = True
            if is_added:
                # New outer fact: all partners come from the live
                # snapshot index (which already includes the diff's
                # new inner facts — do not add them again).
                bindings = {
                    inner_position: outer_fact.args[outer_position]
                    for outer_position, inner_position in zip(
                        outer_key_positions, inner_key_positions, strict=True
                    )
                }
                partners: Iterable[Fact] = (
                    partner
                    for partner in snapshot.lookup_ordered(
                        inner_atom.relation, bindings
                    )
                    if partner.arity == inner_atom.arity
                )
            else:
                # Survived with no recorded partners: anything it joins
                # now must have entered with the diff.
                partners = new_partners_of.get(outer_fact, ())
            for partner in partners:
                yield pair(outer_fact, partner)

        position = 0
        extra_count = len(extra)
        for outer_fact, entries in runs.items():
            run_key = outer_fact.sort_key()
            while position < extra_count and extra[position][0] < run_key:
                _key, extra_outer, is_added = extra[position]
                position += 1
                for images, assignment in emit_extra(extra_outer, is_added):
                    yield images, assignment, None
            new_partners = new_partners_of.get(outer_fact)
            if new_partners is None:
                for entry in entries:
                    if entry.images[inner_index] in removed_set:
                        self._deviated = self._dropped = True
                        continue
                    yield entry.images, entry.assignment, entry
                continue
            inner_position = 0
            inner_count = len(new_partners)
            for entry in entries:
                inner_fact = entry.images[inner_index]
                if inner_fact in removed_set:
                    self._deviated = self._dropped = True
                    continue
                inner_key = inner_fact.sort_key()
                while (
                    inner_position < inner_count
                    and new_partners[inner_position].sort_key() < inner_key
                ):
                    partner = new_partners[inner_position]
                    inner_position += 1
                    self._deviated = True
                    images, assignment = pair(outer_fact, partner)
                    yield images, assignment, None
                yield entry.images, entry.assignment, entry
            while inner_position < inner_count:
                partner = new_partners[inner_position]
                inner_position += 1
                self._deviated = True
                images, assignment = pair(outer_fact, partner)
                yield images, assignment, None
        while position < extra_count:
            _key, extra_outer, is_added = extra[position]
            position += 1
            for images, assignment in emit_extra(extra_outer, is_added):
                yield images, assignment, None

    def _scan_extension(
        self,
        target: Instance,
        probe: RhsProbe,
        assignment: dict[Variable, GroundTerm],
    ) -> bool:
        """Exact single-atom rhs extension check by scanning the bucket.

        Used for the (few) diff-introduced matches on the no-drops path,
        where neither a full projection probe nor the target index is
        warm; a linear pass over one relation's facts keeps both cold.
        """
        bucket = target._facts_by_relation.get(probe.relation)
        if not bucket:
            return False
        arity = probe.arity
        wanted = [
            (position, value if variable is None else assignment[variable])
            for position, value, variable in probe.slots
        ]
        for item in bucket:
            args = item.args
            if len(args) != arity:
                continue
            if all(args[position] == value for position, value in wanted):
                return True
        return False

    def _fire(
        self,
        domain: _SnapshotDomain,
        task: _SnapshotTgdTask,
        task_index: int,
        images: tuple[Fact, ...],
        assignment: dict[Variable, GroundTerm],
        entry: _MatchEntry | None,
        stats: RegionReuseStats,
        trace: ChaseTrace,
    ) -> _MatchEntry:
        """Decide and (re)apply one match — the replay-aware fire_tgd."""
        tgd = task.tgd
        target = domain.target
        recorded = entry.firing if entry is not None else None
        if self.variant == "standard":
            if not self._dropped:
                # No recorded content has been dropped, so the target is
                # a superset of the recorded target's ρ-image at every
                # stream position.  Decisions then resolve without a
                # full projection probe:
                if recorded is None and entry is not None:
                    # Recorded skip: its rhs extension existed in the
                    # ρ-image, so it still exists — forced.
                    return entry
                if entry is not None:
                    # Recorded firing: its extension was absent in the
                    # ρ-image, and replayed firings cannot create new
                    # extensions — only this region's deviation
                    # additions can, and those are exactly what the
                    # task's mini probe has observed.  Skipping a
                    # recorded firing *removes* its rhs facts relative
                    # to the replay, so it counts as a dropping
                    # deviation for everything after it.
                    mini = self._minis[task_index]
                    if mini is not None:
                        # Empty mini projection: no deviation additions
                        # yet, the recorded firing is forced.
                        if mini.projection and mini.check(assignment):
                            self._deviated = self._dropped = True
                            return _MatchEntry(images, assignment, None)
                    elif self._deviated and has_homomorphism(
                        tgd.rhs, target, initial=assignment
                    ):
                        self._deviated = self._dropped = True
                        return _MatchEntry(images, assignment, None)
                else:
                    # Diff-introduced match: exact check against the
                    # current target (which *is* the fresh prefix state).
                    if task.rhs_probe is not None:
                        if self._scan_extension(
                            target, task.rhs_probe, assignment
                        ):
                            return _MatchEntry(images, assignment, None)
                    elif has_homomorphism(
                        tgd.rhs, target, initial=assignment
                    ):
                        return _MatchEntry(images, assignment, None)
            else:
                if not self._probes_ready:
                    self._seed_probes(domain)
                if task.rhs_probe is not None:
                    if task.rhs_probe.check(assignment):
                        return (
                            entry
                            if entry is not None and recorded is None
                            else _MatchEntry(images, assignment, None)
                        )
                elif has_homomorphism(
                    tgd.rhs, domain.target, initial=assignment
                ):
                    return (
                        entry
                        if entry is not None and recorded is None
                        else _MatchEntry(images, assignment, None)
                    )
        if recorded is not None:
            stats.replayed_firings += 1
            transcript = recorded.record.fresh_nulls
            if not transcript and not self._deviated and (
                not self._probes_ready
                and not target._index
                and not target._ordered
            ):
                # Ground firing replayed pre-deviation: the facts are
                # the very same objects and the dedup outcome is forced,
                # so the recorded trace record — and the whole match
                # entry — are content-identical and are reused without
                # allocating anything.
                _insert_all(target, recorded.record.added_facts)
                trace.record(recorded.record)
                return entry  # type: ignore[return-value]
            if transcript:
                rename = self.nulls.reissue(transcript)
                fresh = tuple(rename.values())
                fact_list = list(recorded.facts)
                for index in recorded.null_fact_indices:
                    item = fact_list[index]
                    fact_list[index] = Fact.make(
                        item.relation,
                        tuple(rename.get(arg, arg) for arg in item.args),
                    )
                facts = tuple(fact_list)
            else:
                fresh = ()
                facts = recorded.facts
            null_fact_indices = recorded.null_fact_indices
        else:
            fresh_list: list[GroundTerm] = []
            if tgd.existential_variables:
                extension = dict(assignment)
                for variable in tgd.existential_variables:
                    null = self.nulls.fresh()
                    extension[variable] = null
                    fresh_list.append(null)
            else:
                extension = assignment
            facts = tuple(
                Fact.make(
                    atom.relation,
                    tuple([extension.get(arg, arg) for arg in atom.args]),
                )
                for atom in tgd.rhs.atoms
            )
            fresh = tuple(fresh_list)
            fresh_set = set(fresh)
            null_fact_indices = tuple(
                index
                for index, item in enumerate(facts)
                if not fresh_set.isdisjoint(item.args)
            )
            stats.live_firings += 1

        if (
            not self._dropped
            and not self._probes_ready
            and not target._index
            and not target._ordered
        ):
            # No-drops fast inserts: nothing observes the target during
            # the tgd pass here (no seeded probe, cold index caches), so
            # facts go straight into the relation buckets.  Pre-deviation
            # the dedup outcome is forced too — exactly the recorded
            # subset of rhs facts is new — and skips the membership test.
            if recorded is not None and not self._deviated:
                added_indices = recorded.added_indices
                new_facts = [facts[index] for index in added_indices]
                _insert_all(target, new_facts)
            else:
                # Post-deviation the dedup outcome is live: membership-
                # checked variant of _insert_all that also collects the
                # genuinely-new facts (keep the invariant in sync).
                buckets = target._facts_by_relation
                max_arity = target._max_arity
                new_facts = []
                added_index_list: list[int] = []
                for index, item in enumerate(facts):
                    bucket = buckets.get(item.relation)
                    if bucket is None:
                        buckets[item.relation] = bucket = set()
                    if item in bucket:
                        continue
                    bucket.add(item)
                    if item.arity > max_arity.get(item.relation, 0):
                        max_arity[item.relation] = item.arity
                    new_facts.append(item)
                    added_index_list.append(index)
                added_indices = tuple(added_index_list)
        else:
            new_facts = []
            added_index_list = []
            probes_for = domain.probes_for
            for index, item in enumerate(facts):
                if target.add(item):
                    new_facts.append(item)
                    added_index_list.append(index)
                    for probe in probes_for.get(item.relation, ()):
                        probe.observe(item)
            added_indices = tuple(added_index_list)
        if recorded is None and not self._dropped and new_facts:
            # Deviation additions are the only facts that can flip a
            # later recorded decision on the no-drops path; the mini
            # probes record their projections.
            for item in new_facts:
                for other in self._minis:
                    if other is not None:
                        other.observe(item)
        record = TgdStepRecord(
            dependency=task.label,
            assignment=assignment,
            added_facts=tuple(new_facts),
            fresh_nulls=fresh,
        )
        trace.record(record)
        return _MatchEntry(
            images,
            assignment,
            _FiringRecord(record, facts, null_fact_indices, added_indices),
        )


def chase_source_delta(
    source,
    delta,
    setting: DataExchangeSetting,
    *,
    state=None,
    **chase_kw,
):
    """Apply a :class:`~repro.deltas.SourceDelta` and re-chase, warm.

    The delta entry point shared by the server's ``/delta``/``/events``
    paths, the event-log examples, and scripts maintaining a target by
    hand: strictly apply *delta* to a copy of *source* (the input is
    never mutated), then run the concrete c-chase with *state* — a
    :class:`~repro.concrete.cchase.CChaseReplayState` from a previous
    result — attached, so every normalization group and query ledger
    the delta left intact replays instead of recomputing.  Returns
    ``(new_source, result)``; feed ``result.replay_state`` back in as
    *state* on the next delta.

    Extra keyword arguments pass through to
    :func:`~repro.concrete.cchase.c_chase` unchanged.
    """
    # Imported lazily: repro.concrete imports this module at package
    # import time, so a top-level import would be circular.
    from repro.concrete.cchase import c_chase

    new_source = delta.applied_to(source)
    result = c_chase(
        new_source,
        setting,
        incremental=state if state is not None else True,
        **chase_kw,
    )
    return new_source, result
