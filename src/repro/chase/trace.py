"""Provenance records for chase runs.

Every chase step is recorded: which dependency fired, under which
homomorphism, and what it did (facts added / terms equated / failure).
Traces make chase behaviour inspectable in examples, power the ablation
benchmarks (step counts), and give tests a precise handle on *how* a
result was produced, not just what it is.

Step records are frozen and may be **shared between traces**: the
incremental cross-region chase (:mod:`repro.chase.incremental`) reuses a
recorded :class:`TgdStepRecord` verbatim in a later region's trace when
the replayed firing is content-identical (same facts, no fresh nulls).
Consumers must treat records — including ``assignment`` mappings and
``added_facts`` tuples — as immutable; mutating one would corrupt every
trace that shares it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.relational.fact import Fact
from repro.relational.terms import GroundTerm, Term, Variable

__all__ = ["TgdStepRecord", "EgdStepRecord", "FailureRecord", "ChaseTrace"]


@dataclass(frozen=True, slots=True)
class TgdStepRecord:
    """One tgd chase step: dependency σ fired with h, adding facts."""

    dependency: str
    assignment: Mapping[Variable, GroundTerm]
    added_facts: tuple[Fact, ...]
    fresh_nulls: tuple[GroundTerm, ...] = ()

    def __str__(self) -> str:
        added = ", ".join(str(item) for item in self.added_facts)
        return f"tgd {self.dependency}: added {{{added}}}"


@dataclass(frozen=True, slots=True)
class EgdStepRecord:
    """One successful egd chase step: *replaced* ↦ *replacement* everywhere."""

    dependency: str
    replaced: Term
    replacement: Term

    def __str__(self) -> str:
        return f"egd {self.dependency}: {self.replaced} ↦ {self.replacement}"


@dataclass(frozen=True, slots=True)
class FailureRecord:
    """A failing egd step: two distinct constants were equated."""

    dependency: str
    left: Term
    right: Term

    def __str__(self) -> str:
        return f"egd {self.dependency} FAILED: {self.left} ≠ {self.right}"


@dataclass
class ChaseTrace:
    """The ordered step log of one chase run."""

    steps: list[TgdStepRecord | EgdStepRecord | FailureRecord] = field(
        default_factory=list
    )

    def record(self, step: TgdStepRecord | EgdStepRecord | FailureRecord) -> None:
        self.steps.append(step)

    @property
    def tgd_steps(self) -> tuple[TgdStepRecord, ...]:
        return tuple(s for s in self.steps if isinstance(s, TgdStepRecord))

    @property
    def egd_steps(self) -> tuple[EgdStepRecord, ...]:
        return tuple(s for s in self.steps if isinstance(s, EgdStepRecord))

    @property
    def failure(self) -> FailureRecord | None:
        for step in self.steps:
            if isinstance(step, FailureRecord):
                return step
        return None

    def facts_added(self) -> int:
        return sum(len(step.added_facts) for step in self.tgd_steps)

    def __len__(self) -> int:
        return len(self.steps)

    def __str__(self) -> str:
        return "\n".join(str(step) for step in self.steps)
