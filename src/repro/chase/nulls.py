"""Deterministic factories for fresh nulls.

Chase runs must be reproducible: the figures in the paper (and our tests
that regenerate them byte-for-byte) name nulls ``N``, ``N'``, ``M`` …;
we name them ``N1, N2, …`` in generation order.  A factory is scoped to
one chase run so that parallel runs never share counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.relational.terms import AnnotatedNull, LabeledNull
from repro.temporal.interval import Interval

__all__ = ["NullFactory"]


@dataclass
class NullFactory:
    """Issues fresh labeled / interval-annotated nulls with sequential names."""

    prefix: str = "N"
    _counter: int = field(default=0, repr=False)

    def fresh_name(self) -> str:
        self._counter += 1
        return f"{self.prefix}{self._counter}"

    def fresh(self) -> LabeledNull:
        """A fresh snapshot-level labeled null."""
        return LabeledNull(self.fresh_name())

    def fresh_annotated(self, annotation: Interval) -> AnnotatedNull:
        """A fresh interval-annotated null ``N^annotation``.

        Used by s-t tgd c-chase steps (Definition 16): each existential
        variable is assigned a fresh null annotated with ``h(t)``.
        """
        return AnnotatedNull(self.fresh_name(), annotation)

    @property
    def issued(self) -> int:
        """How many nulls this factory has produced so far."""
        return self._counter
