"""Deterministic factories for fresh nulls.

Chase runs must be reproducible: the figures in the paper (and our tests
that regenerate them byte-for-byte) name nulls ``N``, ``N'``, ``M`` …;
we name them ``N1, N2, …`` in generation order.  A factory is scoped to
one chase run so that parallel runs never share counters.

For the sharded abstract chase each shard derives its own factory with
:meth:`NullFactory.for_shard`: shard *i* issues names under the
namespace ``<prefix>s<i>_`` (e.g. ``Ns0_1``), so fresh nulls of
different shards can never collide no matter how the shards interleave —
the sharded analogue of "nulls of different snapshots never coincide".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.relational.terms import AnnotatedNull, GroundTerm, LabeledNull
from repro.temporal.interval import Interval

__all__ = ["NullFactory"]


@dataclass
class NullFactory:
    """Issues fresh labeled / interval-annotated nulls with sequential names."""

    prefix: str = "N"
    _counter: int = field(default=0, repr=False)
    # How many sharded generations have been derived from this factory
    # (each sharded abstract chase claims one via new_generation()).
    _generations: int = field(default=0, repr=False)

    def fresh_name(self) -> str:
        self._counter += 1
        return f"{self.prefix}{self._counter}"

    def fresh(self) -> LabeledNull:
        """A fresh snapshot-level labeled null."""
        return LabeledNull(self.fresh_name())

    def fresh_annotated(self, annotation: Interval) -> AnnotatedNull:
        """A fresh interval-annotated null ``N^annotation``.

        Used by s-t tgd c-chase steps (Definition 16): each existential
        variable is assigned a fresh null annotated with ``h(t)``.
        """
        return AnnotatedNull(self.fresh_name(), annotation)

    def new_generation(self) -> int:
        """Claim the next sharded-generation number of this factory.

        The sharded abstract chase claims one generation per run, so two
        sharded runs that *share* one base factory — the documented way
        to keep nulls globally distinct across runs — derive disjoint
        shard namespaces instead of silently repeating names.
        """
        generation = self._generations
        self._generations = generation + 1
        return generation

    def for_shard(self, shard: int, generation: int = 0) -> "NullFactory":
        """A fresh factory whose names live in shard *shard*'s namespace.

        ``N`` becomes ``Ns0_1, Ns0_2, …`` for shard 0, ``Ns1_1, …`` for
        shard 1, and so on; generation ``g > 0`` (see
        :meth:`new_generation`) prepends a ``g<g>`` tag —
        ``Ng1s0_1, …`` — so repeated sharded runs off one base factory
        stay disjoint too.  All such namespaces are pairwise disjoint
        and disjoint from the unsharded ``N1, N2, …`` names, so a
        partitioned run can allocate nulls concurrently without any
        coordination and still never collide.
        """
        tag = f"s{shard}_" if generation == 0 else f"g{generation}s{shard}_"
        return NullFactory(prefix=f"{self.prefix}{tag}")

    # -- replay (incremental cross-region chase) ------------------------------
    def state(self) -> int:
        """The counter position, for later :meth:`restore`.

        The incremental abstract chase snapshots the factory before each
        region so an abandoned replay attempt can rewind and re-issue the
        very same names a from-scratch chase of that region would.
        """
        return self._counter

    def restore(self, state: int) -> None:
        """Rewind the counter to a position captured by :meth:`state`.

        Rewinding is only sound when every null issued past *state* is
        being discarded by the caller (the incremental chase's fallback
        re-runs the whole region, so nothing issued after the snapshot
        survives).
        """
        if state < 0 or state > self._counter:
            raise ValueError(
                f"cannot restore factory counter to {state} "
                f"(currently at {self._counter})"
            )
        self._counter = state

    def advance(self, count: int) -> None:
        """Issue *count* names without materializing any of them.

        Names are a pure function of ``(prefix, counter)``, so a caller
        that defers building its nulls (the incremental chase's
        copy-on-write replay of a fully-reused region) can reserve the
        counter range up front and mint the identical names later from a
        :meth:`spawn_at` clone.
        """
        if count < 0:
            raise ValueError(f"cannot advance factory counter by {count}")
        self._counter += count

    def spawn_at(self, state: int) -> "NullFactory":
        """An independent factory positioned at *state*.

        Issues exactly the names this factory would have issued from
        that position, without touching this factory's counter — the
        deferred half of :meth:`advance`.
        """
        return NullFactory(prefix=self.prefix, _counter=state)

    def fast_forward(self, issued: int) -> None:
        """Adopt a counter position ≥ the current one.

        The process executor reconstructs shard factories in worker
        processes from ``(prefix, counter)`` and, once a worker's report
        comes back, replays its final issuance count onto the parent's
        factory — so a *shared* base factory (``shards=1``) keeps names
        globally distinct across subsequent runs exactly as if the block
        had chased in-process.  Positions behind the counter are ignored
        (never rewinds; that is :meth:`restore`'s job).
        """
        if issued > self._counter:
            self._counter = issued

    # -- pickling --------------------------------------------------------------
    def __getstate__(self):
        """Explicit state: prefix and counters, nothing else.

        Factories cross the process boundary when shard tasks ship; a
        restored factory must issue exactly the names the original would
        (the null-name transcript is part of the byte-identical output
        contract).
        """
        return (self.prefix, self._counter, self._generations)

    def __setstate__(self, state) -> None:
        self.prefix, self._counter, self._generations = state

    def reissue(
        self, transcript: Sequence[LabeledNull]
    ) -> dict[GroundTerm, GroundTerm]:
        """Replay a recorded issuance *transcript* with fresh names.

        For a firing replayed from a previous region's log, the fresh
        chase would mint exactly as many nulls, in the same order, under
        the *current* counter.  ``reissue`` performs that minting and
        returns the renaming ``recorded null ↦ fresh null`` (in issuance
        order), which is how replayed firings reuse the recorded null
        structure while keeping names byte-identical to a from-scratch
        run.
        """
        return {old: self.fresh() for old in transcript}

    @property
    def issued(self) -> int:
        """How many nulls this factory has produced so far."""
        return self._counter
