"""The classical chase machinery used snapshot-wise by both views.

:mod:`repro.chase.engine` hosts the shared delta-driven fixpoint core
(semi-naive egd rounds over in-place substitution deltas) that both
:func:`chase_snapshot` and :func:`repro.concrete.c_chase` run on; see
``docs/architecture.md`` for the layering.
"""

from repro.chase.core import core_of, find_proper_endomorphism, is_core
from repro.chase.engine import EgdTask, EngineMode, run_egd_fixpoint, run_tgd_pass
from repro.chase.incremental import IncrementalRegionChaser, RegionReuseStats
from repro.chase.nulls import NullFactory
from repro.chase.standard import (
    SnapshotChaseResult,
    chase_snapshot,
    snapshot_satisfies,
)
from repro.chase.trace import (
    ChaseTrace,
    EgdStepRecord,
    FailureRecord,
    TgdStepRecord,
)
from repro.chase.union_find import (
    AnnotationMismatchError,
    ConstantClashError,
    TermUnionFind,
)

__all__ = [
    "core_of",
    "find_proper_endomorphism",
    "is_core",
    "EgdTask",
    "EngineMode",
    "run_egd_fixpoint",
    "run_tgd_pass",
    "IncrementalRegionChaser",
    "RegionReuseStats",
    "NullFactory",
    "SnapshotChaseResult",
    "chase_snapshot",
    "snapshot_satisfies",
    "ChaseTrace",
    "EgdStepRecord",
    "FailureRecord",
    "TgdStepRecord",
    "AnnotationMismatchError",
    "ConstantClashError",
    "TermUnionFind",
]
