"""The classical chase machinery used snapshot-wise by both views."""

from repro.chase.core import core_of, find_proper_endomorphism, is_core
from repro.chase.nulls import NullFactory
from repro.chase.standard import (
    SnapshotChaseResult,
    chase_snapshot,
    snapshot_satisfies,
)
from repro.chase.trace import (
    ChaseTrace,
    EgdStepRecord,
    FailureRecord,
    TgdStepRecord,
)
from repro.chase.union_find import (
    AnnotationMismatchError,
    ConstantClashError,
    TermUnionFind,
)

__all__ = [
    "core_of",
    "find_proper_endomorphism",
    "is_core",
    "NullFactory",
    "SnapshotChaseResult",
    "chase_snapshot",
    "snapshot_satisfies",
    "ChaseTrace",
    "EgdStepRecord",
    "FailureRecord",
    "TgdStepRecord",
    "AnnotationMismatchError",
    "ConstantClashError",
    "TermUnionFind",
]
