"""The classical snapshot chase (Fagin et al.), used per snapshot.

Given a relational source instance and a setting ``M = (RS, RT, Σst,
Σeg)``, the chase materializes a target instance in two phases:

1. **s-t tgd phase** — for every tgd ``φ(x) → ∃y ψ(x, y)`` and every
   homomorphism ``h : φ → I`` that has no extension to ``φ ∧ ψ`` over
   ``(I, J)``, add ``ψ(h(x), N)`` with fresh labeled nulls ``N``.  Because
   tgds are source-to-target, a single pass over all homomorphisms
   suffices (new target facts never enable new lhs matches).  The
   *oblivious* variant skips the extension check and always fires — an
   ablation knob that produces a non-core universal solution.
2. **egd phase** — while some egd ``φ(x) → x1 = x2`` has a homomorphism
   with ``h(x1) ≠ h(x2)``: equate them.  Null/term pairs are merged via
   union-find; equating two distinct constants fails the chase, which by
   Theorem 3.3 of Fagin et al. (and Proposition 4 here) means *no solution
   exists*.

A successful chase returns a universal solution for the snapshot.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Literal

from repro.errors import ChaseFailureError
from repro.chase.nulls import NullFactory
from repro.chase.trace import (
    ChaseTrace,
    EgdStepRecord,
    FailureRecord,
    TgdStepRecord,
)
from repro.chase.union_find import ConstantClashError, TermUnionFind
from repro.dependencies.dependency import EGD, SourceToTargetTGD
from repro.dependencies.mapping import DataExchangeSetting
from repro.relational.fact import Fact
from repro.relational.homomorphism import (
    find_homomorphism,
    find_homomorphisms,
    has_homomorphism,
)
from repro.relational.instance import Instance
from repro.relational.terms import Constant, GroundTerm, Variable

__all__ = ["SnapshotChaseResult", "chase_snapshot", "snapshot_satisfies"]

ChaseVariant = Literal["standard", "oblivious"]


@dataclass
class SnapshotChaseResult:
    """Outcome of chasing one snapshot.

    ``failed`` distinguishes chase *failure* (no solution exists) from
    success; on failure ``target`` holds the instance as of the failing
    step, which is useful for diagnosis but is *not* a solution.
    """

    target: Instance
    failed: bool = False
    failure: FailureRecord | None = None
    trace: ChaseTrace = field(default_factory=ChaseTrace)

    @property
    def succeeded(self) -> bool:
        return not self.failed

    def unwrap(self) -> Instance:
        """The universal solution, raising on a failed chase."""
        if self.failed:
            assert self.failure is not None
            raise ChaseFailureError(
                self.failure.dependency, self.failure.left, self.failure.right
            )
        return self.target


def _tgd_label(tgd: SourceToTargetTGD, index: int) -> str:
    return tgd.name or f"σ{index}"


def _egd_label(egd: EGD, index: int) -> str:
    return egd.name or f"ε{index}"


def _run_tgd_phase(
    source: Instance,
    target: Instance,
    setting: DataExchangeSetting,
    nulls: NullFactory,
    variant: ChaseVariant,
    trace: ChaseTrace,
) -> None:
    for index, tgd in enumerate(setting.st_tgds, start=1):
        label = _tgd_label(tgd, index)
        for assignment in find_homomorphisms(tgd.lhs, source):
            if variant == "standard":
                # Skip when h extends to φ ∧ ψ over (I, J): the rhs is
                # target-only, so the extension is a hom of ψ into J that
                # agrees with h on the exported variables.
                if has_homomorphism(tgd.rhs, target, initial=assignment):
                    continue
            extension: dict[Variable, GroundTerm] = dict(assignment)
            fresh: list[GroundTerm] = []
            for variable in tgd.existential_variables:
                null = nulls.fresh()
                extension[variable] = null
                fresh.append(null)
            added = tgd.rhs.instantiate(extension)
            new_facts = tuple(item for item in added if target.add(item))
            trace.record(
                TgdStepRecord(
                    dependency=label,
                    assignment=assignment,
                    added_facts=new_facts,
                    fresh_nulls=tuple(fresh),
                )
            )


def _run_egd_phase(
    target: Instance,
    setting: DataExchangeSetting,
    trace: ChaseTrace,
) -> tuple[Instance, FailureRecord | None]:
    """Chase the egds to fixpoint; returns (instance, failure-or-None)."""
    union_find = TermUnionFind()
    current = target
    changed = True
    while changed:
        changed = False
        for index, egd in enumerate(setting.egds, start=1):
            label = _egd_label(egd, index)
            for assignment in find_homomorphisms(egd.lhs, current):
                left = assignment[egd.left_variable]
                right = assignment[egd.right_variable]
                if left == right:
                    continue
                try:
                    winner = union_find.union(left, right)
                except ConstantClashError as clash:
                    failure = FailureRecord(label, clash.left, clash.right)
                    trace.record(failure)
                    return current, failure
                # left and right come from the already-substituted instance,
                # so both are class representatives and the winner is one of
                # them; the other is replaced everywhere.
                replaced = right if winner == left else left
                current = current.substitute({replaced: winner})
                trace.record(EgdStepRecord(label, replaced, winner))
                changed = True
                break  # homomorphisms must be recomputed on the new instance
            if changed:
                break
    return current, None


def chase_snapshot(
    source: Instance,
    setting: DataExchangeSetting,
    null_factory: NullFactory | None = None,
    variant: ChaseVariant = "standard",
) -> SnapshotChaseResult:
    """Chase one snapshot, producing a universal solution or a failure.

    *variant* selects the s-t tgd firing policy (``"standard"`` checks for
    an existing extension before firing; ``"oblivious"`` always fires).
    """
    nulls = null_factory if null_factory is not None else NullFactory()
    trace = ChaseTrace()
    # Target instances are kept schema-free internally; arity validation
    # already happened at the dependency level where attributes are known.
    target = Instance()
    _run_tgd_phase(source, target, setting, nulls, variant, trace)
    result_instance, failure = _run_egd_phase(target, setting, trace)
    if failure is not None:
        return SnapshotChaseResult(
            target=result_instance, failed=True, failure=failure, trace=trace
        )
    return SnapshotChaseResult(target=result_instance, trace=trace)


# ---------------------------------------------------------------------------
# Dependency satisfaction (solution checking at the snapshot level)
# ---------------------------------------------------------------------------


def _tgd_satisfied(source: Instance, target: Instance, tgd: SourceToTargetTGD) -> bool:
    for assignment in find_homomorphisms(tgd.lhs, source):
        if not has_homomorphism(tgd.rhs, target, initial=assignment):
            return False
    return True


def _egd_satisfied(target: Instance, egd: EGD) -> bool:
    for assignment in find_homomorphisms(egd.lhs, target):
        if assignment[egd.left_variable] != assignment[egd.right_variable]:
            return False
    return True


def snapshot_satisfies(
    source: Instance, target: Instance, setting: DataExchangeSetting
) -> bool:
    """``(db, db') |= Σst ∪ Σeg`` — is *target* a solution for *source*?

    Nulls are treated as ordinary domain elements (naive-table semantics),
    exactly as in the definition of solutions over instances with nulls.
    """
    return all(
        _tgd_satisfied(source, target, tgd) for tgd in setting.st_tgds
    ) and all(_egd_satisfied(target, egd) for egd in setting.egds)
