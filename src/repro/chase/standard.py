"""The classical snapshot chase (Fagin et al.), used per snapshot.

Given a relational source instance and a setting ``M = (RS, RT, Σst,
Σeg)``, the chase materializes a target instance in two phases, both run
on the shared delta-driven engine of :mod:`repro.chase.engine`:

1. **s-t tgd phase** — for every tgd ``φ(x) → ∃y ψ(x, y)`` and every
   homomorphism ``h : φ → I`` that has no extension to ``φ ∧ ψ`` over
   ``(I, J)``, add ``ψ(h(x), N)`` with fresh labeled nulls ``N``.  Because
   tgds are source-to-target, a single pass over all homomorphisms
   suffices (new target facts never enable new lhs matches).  The
   *oblivious* variant skips the extension check and always fires — an
   ablation knob that produces a non-core universal solution.
2. **egd phase** — while some egd ``φ(x) → x1 = x2`` has a homomorphism
   with ``h(x1) ≠ h(x2)``: equate them.  Equations are resolved in
   *batched semi-naive rounds*: every egd match of the round's worklist
   is merged into a fresh :class:`~repro.chase.union_find.TermUnionFind`
   (matched terms are resolved through ``find`` because earlier merges of
   the same round are not yet reflected in the instance), each real merge
   is recorded at representative level, and one in-place substitution
   pass applies the whole round — only the facts mentioning a replaced
   term are rewritten.  Round 0's worklist is the full instance; each
   later round enumerates only the matches touching the facts the
   previous substitution actually added, and the fixpoint is confirmed
   when a round's delta is empty (see the engine module docstring).
   Equating two distinct constants fails the chase, which by Theorem 3.3
   of Fagin et al. (and Proposition 4 here) means *no solution exists*.

   Because the union-find elects the class minimum (constants first) as
   representative, the fixpoint instance — and each recorded
   ``replaced ↦ replacement`` step — is identical to what the classical
   one-equation-at-a-time loop produced; only the re-enumerations are
   gone.

A successful chase returns a universal solution for the snapshot.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Literal

from repro.errors import ChaseFailureError
from repro.chase.engine import (
    EgdTask,
    EngineMode,
    build_rhs_probe,
    run_egd_fixpoint,
    run_tgd_pass,
)
from repro.chase.nulls import NullFactory
from repro.chase.trace import (
    ChaseTrace,
    FailureRecord,
    TgdStepRecord,
)
from repro.dependencies.dependency import EGD, SourceToTargetTGD
from repro.dependencies.mapping import DataExchangeSetting
from repro.relational.fact import Fact
from repro.relational.homomorphism import (
    find_homomorphisms,
    has_homomorphism,
)
from repro.relational.instance import Instance
from repro.relational.terms import GroundTerm, Variable

__all__ = ["SnapshotChaseResult", "chase_snapshot", "snapshot_satisfies"]

ChaseVariant = Literal["standard", "oblivious"]


@dataclass
class SnapshotChaseResult:
    """Outcome of chasing one snapshot.

    ``failed`` distinguishes chase *failure* (no solution exists) from
    success; on failure ``target`` holds the instance as of the failing
    step, which is useful for diagnosis but is *not* a solution.
    """

    target: Instance
    failed: bool = False
    failure: FailureRecord | None = None
    trace: ChaseTrace = field(default_factory=ChaseTrace)

    @property
    def succeeded(self) -> bool:
        return not self.failed

    def unwrap(self) -> Instance:
        """The universal solution, raising on a failed chase."""
        if self.failed:
            assert self.failure is not None
            raise ChaseFailureError(
                self.failure.dependency, self.failure.left, self.failure.right
            )
        return self.target


def _tgd_label(tgd: SourceToTargetTGD, index: int) -> str:
    return tgd.name or f"σ{index}"


def _egd_label(egd: EGD, index: int) -> str:
    return egd.name or f"ε{index}"


class _SnapshotTgdTask:
    """One s-t tgd prepared for the engine's tgd pass."""

    __slots__ = ("label", "tgd", "rhs_probe")

    def __init__(self, label: str, tgd: SourceToTargetTGD) -> None:
        self.label = label
        self.tgd = tgd
        self.rhs_probe = build_rhs_probe(
            tgd.rhs.atoms, tgd.existential_variables
        )


class _SnapshotDomain:
    """:class:`~repro.chase.engine.ChaseDomain` over a plain relational target."""

    check_annotations = False

    def __init__(
        self,
        target: Instance,
        source: Instance | None = None,
        nulls: NullFactory | None = None,
        variant: ChaseVariant = "standard",
    ) -> None:
        self.target = target
        self.source = source
        self.nulls = nulls
        self.variant = variant
        self.probes_for: dict[str, list] = {}

    def attach_probes(self, tasks) -> None:
        """Register and seed the tasks' rhs projection probes."""
        for task in tasks:
            probe = task.rhs_probe
            if probe is not None:
                self.probes_for.setdefault(probe.relation, []).append(probe)
                probe.seed(self.target.facts_of(probe.relation))

    # -- egd side ----------------------------------------------------------
    def match_view(self) -> Instance:
        return self.target

    def apply_substitution(self, mapping) -> list[Fact]:
        return self.target.substitute_in_place(mapping)

    # -- tgd side ----------------------------------------------------------
    def iter_tgd_matches(self, task: _SnapshotTgdTask):
        # copy=False: the live assignment is only read before the iterator
        # resumes; fire_tgd takes the copies it needs.
        assert self.source is not None
        return find_homomorphisms(task.tgd.lhs, self.source, copy=False)

    def fire_tgd(
        self, task: _SnapshotTgdTask, assignment
    ) -> TgdStepRecord | None:
        tgd = task.tgd
        if self.variant == "standard":
            # Skip when h extends to φ ∧ ψ over (I, J): the rhs is
            # target-only, so the extension is a hom of ψ into J that
            # agrees with h on the exported variables.
            if task.rhs_probe is not None:
                if task.rhs_probe.check(assignment):
                    return None
            elif has_homomorphism(tgd.rhs, self.target, initial=assignment):
                return None
        assert self.nulls is not None
        record_assignment: dict[Variable, GroundTerm] = dict(assignment)
        fresh: list[GroundTerm] = []
        if tgd.existential_variables:
            extension = dict(record_assignment)
            for variable in tgd.existential_variables:
                null = self.nulls.fresh()
                extension[variable] = null
                fresh.append(null)
        else:
            extension = record_assignment
        new_facts: list[Fact] = []
        for atom in tgd.rhs.atoms:
            item = Fact.make(
                atom.relation,
                tuple([extension.get(arg, arg) for arg in atom.args]),
            )
            if self.target.add(item):
                new_facts.append(item)
                for probe in self.probes_for.get(item.relation, ()):
                    probe.observe(item)
        return TgdStepRecord(
            dependency=task.label,
            assignment=record_assignment,
            added_facts=tuple(new_facts),
            fresh_nulls=tuple(fresh),
        )


def _egd_tasks(setting: DataExchangeSetting) -> tuple[EgdTask, ...]:
    # Cached on the setting: tasks are immutable and shared across runs —
    # the abstract chase calls chase_snapshot once per region.
    cached = getattr(setting, "_snapshot_egd_tasks", None)
    if cached is None:
        cached = tuple(
            EgdTask(
                _egd_label(egd, index),
                egd.lhs.atoms,
                egd.left_variable,
                egd.right_variable,
            )
            for index, egd in enumerate(setting.egds, start=1)
        )
        try:
            object.__setattr__(setting, "_snapshot_egd_tasks", cached)
        except AttributeError:
            # The setting grew __slots__: just rebuild per call.
            pass
    return cached


def _snapshot_tgd_tasks(setting: DataExchangeSetting) -> list[_SnapshotTgdTask]:
    """The setting's s-t tgds prepared for the engine's tgd pass.

    Each call returns *fresh* tasks: the rhs projection probes they carry
    are per-run mutable state, so tasks are never shared between
    concurrent chases (the sharded abstract chase runs one
    :class:`~repro.chase.incremental.IncrementalRegionChaser` — and
    therefore one task list — per shard).
    """
    return [
        _SnapshotTgdTask(_tgd_label(tgd, index), tgd)
        for index, tgd in enumerate(setting.st_tgds, start=1)
    ]


def _run_tgd_phase(
    source: Instance,
    target: Instance,
    setting: DataExchangeSetting,
    nulls: NullFactory,
    variant: ChaseVariant,
    trace: ChaseTrace,
) -> None:
    domain = _SnapshotDomain(target, source=source, nulls=nulls, variant=variant)
    tasks = _snapshot_tgd_tasks(setting)
    domain.attach_probes(tasks)
    run_tgd_pass(domain, tasks, trace)


def _run_egd_phase(
    target: Instance,
    setting: DataExchangeSetting,
    trace: ChaseTrace,
    mode: EngineMode = "delta",
) -> tuple[Instance, FailureRecord | None]:
    """Chase the egds to fixpoint; returns (instance, failure-or-None).

    A thin wrapper over :func:`repro.chase.engine.run_egd_fixpoint` with
    the snapshot domain; the instance is mutated in place and returned.
    """
    domain = _SnapshotDomain(target)
    failure = run_egd_fixpoint(domain, _egd_tasks(setting), trace, mode=mode)
    return target, failure


def chase_snapshot(
    source: Instance,
    setting: DataExchangeSetting,
    null_factory: NullFactory | None = None,
    variant: ChaseVariant = "standard",
    engine: EngineMode = "delta",
) -> SnapshotChaseResult:
    """Chase one snapshot, producing a universal solution or a failure.

    *variant* selects the s-t tgd firing policy (``"standard"`` checks for
    an existing extension before firing; ``"oblivious"`` always fires).
    *engine* selects the egd fixpoint strategy (``"delta"`` enumerates
    each round against the previous round's delta only; ``"rescan"``
    re-enumerates the full instance every round — the reference mode).
    """
    nulls = null_factory if null_factory is not None else NullFactory()
    trace = ChaseTrace()
    # Target instances are kept schema-free internally; arity validation
    # already happened at the dependency level where attributes are known.
    target = Instance()
    _run_tgd_phase(source, target, setting, nulls, variant, trace)
    result_instance, failure = _run_egd_phase(target, setting, trace, mode=engine)
    if failure is not None:
        return SnapshotChaseResult(
            target=result_instance, failed=True, failure=failure, trace=trace
        )
    return SnapshotChaseResult(target=result_instance, trace=trace)


# ---------------------------------------------------------------------------
# Dependency satisfaction (solution checking at the snapshot level)
# ---------------------------------------------------------------------------


def _tgd_satisfied(source: Instance, target: Instance, tgd: SourceToTargetTGD) -> bool:
    for assignment in find_homomorphisms(tgd.lhs, source):
        if not has_homomorphism(tgd.rhs, target, initial=assignment):
            return False
    return True


def _egd_satisfied(target: Instance, egd: EGD) -> bool:
    for assignment in find_homomorphisms(egd.lhs, target):
        if assignment[egd.left_variable] != assignment[egd.right_variable]:
            return False
    return True


def snapshot_satisfies(
    source: Instance, target: Instance, setting: DataExchangeSetting
) -> bool:
    """``(db, db') |= Σst ∪ Σeg`` — is *target* a solution for *source*?

    Nulls are treated as ordinary domain elements (naive-table semantics),
    exactly as in the definition of solutions over instances with nulls.
    """
    return all(
        _tgd_satisfied(source, target, tgd) for tgd in setting.st_tgds
    ) and all(_egd_satisfied(target, egd) for egd in setting.egds)
