"""The classical snapshot chase (Fagin et al.), used per snapshot.

Given a relational source instance and a setting ``M = (RS, RT, Σst,
Σeg)``, the chase materializes a target instance in two phases:

1. **s-t tgd phase** — for every tgd ``φ(x) → ∃y ψ(x, y)`` and every
   homomorphism ``h : φ → I`` that has no extension to ``φ ∧ ψ`` over
   ``(I, J)``, add ``ψ(h(x), N)`` with fresh labeled nulls ``N``.  Because
   tgds are source-to-target, a single pass over all homomorphisms
   suffices (new target facts never enable new lhs matches).  The
   *oblivious* variant skips the extension check and always fires — an
   ablation knob that produces a non-core universal solution.
2. **egd phase** — while some egd ``φ(x) → x1 = x2`` has a homomorphism
   with ``h(x1) ≠ h(x2)``: equate them.  Equations are resolved in
   *batched rounds*: every egd match on the current instance is merged
   into a fresh :class:`~repro.chase.union_find.TermUnionFind` (matched
   terms are resolved through ``find`` because earlier merges of the same
   round are not yet reflected in the instance), each real merge is
   recorded at representative level, and one substitution pass applies
   the whole round.  Rounds repeat until no merge happens, so equations
   that only appear on the substituted instance are still found.
   Equating two distinct constants fails the chase, which by Theorem 3.3
   of Fagin et al. (and Proposition 4 here) means *no solution exists*.

   Because the union-find elects the class minimum (constants first) as
   representative, the fixpoint instance — and each recorded
   ``replaced ↦ replacement`` step — is identical to what the classical
   one-equation-at-a-time loop produced; only the re-enumeration after
   every single equation is gone.

A successful chase returns a universal solution for the snapshot.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Literal

from repro.errors import ChaseFailureError
from repro.chase.nulls import NullFactory
from repro.chase.trace import (
    ChaseTrace,
    EgdStepRecord,
    FailureRecord,
    TgdStepRecord,
)
from repro.chase.union_find import ConstantClashError, TermUnionFind
from repro.dependencies.dependency import EGD, SourceToTargetTGD
from repro.dependencies.mapping import DataExchangeSetting
from repro.relational.fact import Fact
from repro.relational.homomorphism import (
    find_homomorphism,
    find_homomorphisms,
    has_homomorphism,
    iter_egd_equations,
)
from repro.relational.instance import Instance
from repro.relational.terms import Constant, GroundTerm, Variable

__all__ = ["SnapshotChaseResult", "chase_snapshot", "snapshot_satisfies"]

ChaseVariant = Literal["standard", "oblivious"]


@dataclass
class SnapshotChaseResult:
    """Outcome of chasing one snapshot.

    ``failed`` distinguishes chase *failure* (no solution exists) from
    success; on failure ``target`` holds the instance as of the failing
    step, which is useful for diagnosis but is *not* a solution.
    """

    target: Instance
    failed: bool = False
    failure: FailureRecord | None = None
    trace: ChaseTrace = field(default_factory=ChaseTrace)

    @property
    def succeeded(self) -> bool:
        return not self.failed

    def unwrap(self) -> Instance:
        """The universal solution, raising on a failed chase."""
        if self.failed:
            assert self.failure is not None
            raise ChaseFailureError(
                self.failure.dependency, self.failure.left, self.failure.right
            )
        return self.target


def _tgd_label(tgd: SourceToTargetTGD, index: int) -> str:
    return tgd.name or f"σ{index}"


def _egd_label(egd: EGD, index: int) -> str:
    return egd.name or f"ε{index}"


def _run_tgd_phase(
    source: Instance,
    target: Instance,
    setting: DataExchangeSetting,
    nulls: NullFactory,
    variant: ChaseVariant,
    trace: ChaseTrace,
) -> None:
    for index, tgd in enumerate(setting.st_tgds, start=1):
        label = _tgd_label(tgd, index)
        # copy=False: the live assignment is only read before the iterator
        # resumes; the trace record takes an explicit copy below.
        for assignment in find_homomorphisms(tgd.lhs, source, copy=False):
            if variant == "standard":
                # Skip when h extends to φ ∧ ψ over (I, J): the rhs is
                # target-only, so the extension is a hom of ψ into J that
                # agrees with h on the exported variables.
                if has_homomorphism(tgd.rhs, target, initial=assignment):
                    continue
            extension: dict[Variable, GroundTerm] = dict(assignment)
            fresh: list[GroundTerm] = []
            for variable in tgd.existential_variables:
                null = nulls.fresh()
                extension[variable] = null
                fresh.append(null)
            added = tgd.rhs.instantiate(extension)
            new_facts = tuple(item for item in added if target.add(item))
            trace.record(
                TgdStepRecord(
                    dependency=label,
                    assignment=dict(assignment),
                    added_facts=new_facts,
                    fresh_nulls=tuple(fresh),
                )
            )


def _run_egd_phase(
    target: Instance,
    setting: DataExchangeSetting,
    trace: ChaseTrace,
) -> tuple[Instance, FailureRecord | None]:
    """Chase the egds to fixpoint; returns (instance, failure-or-None).

    Equations are resolved in batched rounds (see module docstring).  A
    fresh union-find per round keeps representatives in sync with the
    instance: matched terms may be stale (already merged earlier in the
    same round), so both sides are resolved through ``find`` before the
    merge is judged, and the recorded step equates the two *class
    representatives* — never a term a previous step already replaced.
    """
    current = target
    while True:
        union_find = TermUnionFind()
        merged = False
        for index, egd in enumerate(setting.egds, start=1):
            label = _egd_label(egd, index)
            for left, right in iter_egd_equations(
                egd.lhs.atoms, egd.left_variable, egd.right_variable, current
            ):
                if left == right:
                    continue
                root_left = union_find.find(left)
                root_right = union_find.find(right)
                if root_left == root_right:
                    continue
                try:
                    winner = union_find.union(root_left, root_right)
                except ConstantClashError as clash:
                    failure = FailureRecord(label, clash.left, clash.right)
                    trace.record(failure)
                    # Report the instance with every merge recorded so far
                    # applied, exactly as the per-equation loop left it.
                    pending = union_find.substitution()
                    if pending:
                        current = current.substitute(pending)
                    return current, failure
                replaced = root_right if winner == root_left else root_left
                trace.record(EgdStepRecord(label, replaced, winner))
                merged = True
        if not merged:
            return current, None
        current = current.substitute(union_find.substitution())


def chase_snapshot(
    source: Instance,
    setting: DataExchangeSetting,
    null_factory: NullFactory | None = None,
    variant: ChaseVariant = "standard",
) -> SnapshotChaseResult:
    """Chase one snapshot, producing a universal solution or a failure.

    *variant* selects the s-t tgd firing policy (``"standard"`` checks for
    an existing extension before firing; ``"oblivious"`` always fires).
    """
    nulls = null_factory if null_factory is not None else NullFactory()
    trace = ChaseTrace()
    # Target instances are kept schema-free internally; arity validation
    # already happened at the dependency level where attributes are known.
    target = Instance()
    _run_tgd_phase(source, target, setting, nulls, variant, trace)
    result_instance, failure = _run_egd_phase(target, setting, trace)
    if failure is not None:
        return SnapshotChaseResult(
            target=result_instance, failed=True, failure=failure, trace=trace
        )
    return SnapshotChaseResult(target=result_instance, trace=trace)


# ---------------------------------------------------------------------------
# Dependency satisfaction (solution checking at the snapshot level)
# ---------------------------------------------------------------------------


def _tgd_satisfied(source: Instance, target: Instance, tgd: SourceToTargetTGD) -> bool:
    for assignment in find_homomorphisms(tgd.lhs, source):
        if not has_homomorphism(tgd.rhs, target, initial=assignment):
            return False
    return True


def _egd_satisfied(target: Instance, egd: EGD) -> bool:
    for assignment in find_homomorphisms(egd.lhs, target):
        if assignment[egd.left_variable] != assignment[egd.right_variable]:
            return False
    return True


def snapshot_satisfies(
    source: Instance, target: Instance, setting: DataExchangeSetting
) -> bool:
    """``(db, db') |= Σst ∪ Σeg`` — is *target* a solution for *source*?

    Nulls are treated as ordinary domain elements (naive-table semantics),
    exactly as in the definition of solutions over instances with nulls.
    """
    return all(
        _tgd_satisfied(source, target, tgd) for tgd in setting.st_tgds
    ) and all(_egd_satisfied(target, egd) for egd in setting.egds)
