"""The delta-driven chase engine core shared by both chase procedures.

The snapshot chase (Section 3) and the c-chase (Section 4) are the same
fixpoint computation over different instance kinds.  This module owns
that computation once; :mod:`repro.chase.standard` and
:mod:`repro.concrete.cchase` supply a *domain* adapter each and keep
only their phase wiring.

Structure:

* a **tgd pass** — s-t tgds are source-to-target, so a single pass over
  all lhs matches suffices (new target facts never enable new lhs
  matches); the domain decides how matches are found and how a firing
  instantiates the rhs.
* an **egd fixpoint** in *semi-naive rounds*.  Round 0 enumerates every
  egd match of the instance (seeding the worklist with the full
  instance); each substitution pass then mutates the instance **in
  place** — only the facts mentioning a replaced term are discarded and
  re-added — and returns the facts that are genuinely new, the **delta**.
  Round ``k+1`` enumerates only the matches touching the delta: a match
  among untouched facts existed in round ``k`` and was already resolved
  there, so it can only yield a trivial or already-merged equation (see
  :func:`repro.relational.homomorphism.iter_egd_equations_delta`).  The
  fixpoint confirmation is therefore "the delta is empty" — the historic
  full re-scan round is gone, along with the fresh instance allocated
  per round.

``mode="rescan"`` restores the full re-enumeration every round (still
with in-place substitution); it exists as the reference the property
tests compare the delta mode against, and as a CLI escape hatch.

Within each round, equations feed one
:class:`~repro.chase.union_find.TermUnionFind` and one substitution pass
applies the whole round, exactly as before this engine existed; round 0
enumerates in the same order as the historic full scans, so chase
traces are byte-identical on every scenario whose merges resolve in one
round (all goldens do).  Later delta rounds enumerate anchor-by-anchor
rather than full-scan order — the recorded *merges* are the same set,
but their order within such a round may differ from the pre-engine
implementation (trace format v2; see docs/architecture.md).
"""

from __future__ import annotations

from typing import Iterable, Literal, Protocol, Sequence

from repro.chase.trace import ChaseTrace, EgdStepRecord, FailureRecord, TgdStepRecord
from repro.chase.union_find import ConstantClashError, TermUnionFind
from repro.relational.fact import Fact
from repro.relational.formulas import Atom
from repro.relational.homomorphism import (
    iter_egd_equations,
    iter_egd_equations_delta,
)
from repro.relational.instance import Instance
from repro.relational.terms import Term, Variable

__all__ = [
    "EngineMode",
    "EgdTask",
    "ChaseDomain",
    "RhsProbe",
    "build_rhs_probe",
    "run_tgd_pass",
    "run_egd_fixpoint",
]

EngineMode = Literal["delta", "rescan"]


class RhsProbe:
    """Precomputed single-atom rhs extension check as a projection set.

    For a tgd whose rhs is one atom with pairwise-distinct unbound
    (existential) variables, "does ``h`` extend to the rhs over the
    target" only depends on the target's *projection* onto the atom's
    bound positions.  The probe keeps that projection as a hash set,
    maintained by the tgd pass on every fact it adds — so a check is one
    tuple build and one set lookup, no index, no backtracking search, no
    per-match ``initial`` dict.  A pleasant side effect: because nothing
    probes the target's ``(position, value)`` index during the tgd pass,
    that index is first built *after* the pass, in one sorted batch,
    instead of being maintained insert-by-insert.

    :func:`build_rhs_probe` returns ``None`` for shapes that still need
    the generic search (multi-atom rhs, repeated existentials).
    """

    __slots__ = ("relation", "arity", "slots", "positions", "projection")

    def __init__(
        self,
        relation: str,
        arity: int,
        slots: tuple[tuple[int, object, Variable | None], ...],
    ) -> None:
        self.relation = relation
        self.arity = arity
        # (position, constant, None) or (position, None, variable) —
        # ordered by position; these are the atom's bound positions.
        self.slots = slots
        self.positions = tuple(slot[0] for slot in slots)
        self.projection: set[tuple] = set()

    def seed(self, facts: Iterable[Fact]) -> None:
        """Load the projection from facts already in the target."""
        for item in facts:
            self.observe(item)

    def observe(self, item: Fact) -> None:
        """Record a fact the tgd pass just added to the target."""
        if item.relation == self.relation and len(item.args) == self.arity:
            args = item.args
            self.projection.add(
                tuple([args[position] for position in self.positions])
            )

    def check(self, assignment) -> bool:
        """``True`` iff the rhs extension exists under *assignment*
        (which must bind every non-existential variable)."""
        return (
            tuple(
                [
                    value if variable is None else assignment[variable]
                    for _position, value, variable in self.slots
                ]
            )
            in self.projection
        )


# Capped so a process generating unboundedly many distinct tgd shapes
# cannot grow the cache forever (clearing only re-analyzes, never breaks).
_probe_specs: dict[tuple, tuple | None] = {}
_PROBE_SPEC_CAP = 4096


def build_rhs_probe(
    atoms: Sequence[Atom], unbound: Iterable[Variable]
) -> RhsProbe | None:
    """A fresh :class:`RhsProbe` for a single-atom rhs, or ``None``.

    *unbound* lists the variables the lhs match does not bind (the tgd's
    existentials).  A repeated unbound variable within the atom needs the
    generic search (the probe cannot express the equality), as does a
    multi-atom rhs.  The shape analysis is cached per (atoms, unbound);
    the returned probe's projection state is always fresh — it belongs to
    one chase run.
    """
    key = (tuple(atoms), tuple(unbound))
    try:
        spec = _probe_specs[key]
    except KeyError:
        if len(_probe_specs) >= _PROBE_SPEC_CAP:
            _probe_specs.clear()
        spec = _analyze_rhs_probe(key[0], key[1])
        _probe_specs[key] = spec
    if spec is None:
        return None
    return RhsProbe(*spec)


def _analyze_rhs_probe(
    atoms: tuple[Atom, ...], unbound: tuple[Variable, ...]
) -> tuple | None:
    if len(atoms) != 1:
        return None
    atom = atoms[0]
    unbound_set = set(unbound)
    slots: list[tuple[int, object, Variable | None]] = []
    seen: set[Variable] = set()
    for position, arg in enumerate(atom.args):
        if isinstance(arg, Variable):
            if arg in unbound_set:
                if arg in seen:
                    return None
                seen.add(arg)
            else:
                slots.append((position, None, arg))
        else:
            slots.append((position, arg, None))
    return (atom.relation, atom.arity, tuple(slots))


class EgdTask:
    """One egd prepared for the engine: label, match-view atoms, equated pair."""

    __slots__ = ("label", "atoms", "left_variable", "right_variable")

    def __init__(
        self,
        label: str,
        atoms: Sequence[Atom],
        left_variable: Variable,
        right_variable: Variable,
    ) -> None:
        self.label = label
        self.atoms = tuple(atoms)
        self.left_variable = left_variable
        self.right_variable = right_variable


class ChaseDomain(Protocol):
    """What the engine needs to know about an instance kind.

    Implemented by ``standard._SnapshotDomain`` (plain relational target)
    and ``cchase._ConcreteDomain`` (concrete target matched through its
    lifted view).  ``match_view`` is the relational instance egd matches
    are enumerated on; ``apply_substitution`` rewrites the underlying
    target in place and returns the *match-view* facts that are new — the
    delta of the next round.
    """

    check_annotations: bool

    def match_view(self) -> Instance: ...

    def apply_substitution(self, mapping: dict[Term, Term]) -> list[Fact]: ...

    def iter_tgd_matches(self, task: object) -> Iterable[dict]: ...

    def fire_tgd(self, task: object, assignment: dict) -> TgdStepRecord | None: ...


def run_tgd_pass(domain: ChaseDomain, tasks: Iterable[object], trace: ChaseTrace) -> None:
    """One pass of s-t tgd steps (no rounds needed: tgds are source-to-target).

    The domain enumerates matches and decides per match whether the step
    fires (``fire_tgd`` returns ``None`` for matches whose rhs extension
    already exists — the *standard* variant's check); fired steps are
    recorded in match order, which fixes fresh-null numbering.
    """
    for task in tasks:
        for assignment in domain.iter_tgd_matches(task):
            record = domain.fire_tgd(task, assignment)
            if record is not None:
                trace.record(record)


def run_egd_fixpoint(
    domain: ChaseDomain,
    tasks: Sequence[EgdTask],
    trace: ChaseTrace,
    mode: EngineMode = "delta",
) -> FailureRecord | None:
    """Chase the egds to fixpoint in batched semi-naive rounds.

    Returns ``None`` on success, the recorded :class:`FailureRecord` when
    two distinct constants were equated (no solution exists).  The
    domain's target is mutated in place either way; on failure it holds
    every merge recorded before the clash, exactly as the historic
    per-equation loop left it.
    """
    delta: list[Fact] | None = None  # None = seed round over the full instance
    while True:
        union_find = TermUnionFind(check_annotations=domain.check_annotations)
        find = union_find.find
        record = trace.record
        merged = False
        view = domain.match_view()
        for task in tasks:
            if delta is None:
                equations = iter_egd_equations(
                    task.atoms, task.left_variable, task.right_variable, view
                )
            else:
                equations = iter_egd_equations_delta(
                    task.atoms,
                    task.left_variable,
                    task.right_variable,
                    view,
                    delta,
                )
            for left, right in equations:
                if left == right:
                    continue
                root_left = find(left)
                root_right = find(right)
                if root_left == root_right:
                    continue
                try:
                    winner = union_find.union(root_left, root_right)
                except ConstantClashError as clash:
                    failure = FailureRecord(task.label, clash.left, clash.right)
                    trace.record(failure)
                    # Apply every merge recorded before the clash, exactly
                    # as the per-equation loop left the instance.
                    pending = union_find.substitution()
                    if pending:
                        domain.apply_substitution(pending)
                    return failure
                replaced = root_right if winner == root_left else root_left
                record(EgdStepRecord(task.label, replaced, winner))
                merged = True
        if not merged:
            return None
        added = domain.apply_substitution(union_find.substitution())
        if mode == "rescan":
            delta = None
        elif not added:
            # Nothing new entered the instance (every image merged into
            # an existing fact): no new matches are possible, so the
            # fixpoint is confirmed without another enumeration round.
            return None
        else:
            delta = added
