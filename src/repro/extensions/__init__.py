"""Extensions beyond the paper's core results (its Section 7 directions)."""

from repro.extensions.temporal_mappings import (
    PastChaseResult,
    PastTGD,
    past_chase,
    satisfies_always_past,
    satisfies_past_tgd,
)

__all__ = [
    "PastChaseResult",
    "PastTGD",
    "past_chase",
    "satisfies_always_past",
    "satisfies_past_tgd",
]
