"""Beyond the paper: s-t tgds with temporal modal operators (Section 7).

The paper's conclusion sketches richer schema mappings with modalities,
e.g. *every PhD graduate was sometime earlier a PhD candidate with an
adviser and a topic*::

    ∀n, t  PhDgrad(n, t) → ∃adv, top, t'  PhDCan(n, adv, top, t') ∧ t' < t

and explicitly leaves open how a chase should pick the witnessing past
snapshot.  This module implements that future-work direction for the
**sometime-in-the-past (♦⁻)** operator:

* :class:`PastTGD` — an s-t tgd whose right-hand side must hold at *some
  strictly earlier* snapshot;
* :func:`satisfies_past_tgd` — the satisfaction check on abstract
  instances;
* :func:`past_chase` — a chase policy that answers the paper's open
  question pragmatically: one witness is materialized at the snapshot
  *immediately before the earliest firing* of each left-hand-side match.
  A single witness placed there serves every later firing of the same
  match, which keeps the result small; a match already firing at time 0
  has no past to put a witness in, so the chase fails (no solution).

An always-in-the-past (■⁻) *checker* is included for symmetry; chasing ■⁻
rhs would require witnesses in every earlier snapshot and is out of scope,
exactly the kind of design question the paper defers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import FormulaError
from repro.abstract_view.abstract_instance import AbstractInstance, TemplateFact
from repro.chase.nulls import NullFactory
from repro.dependencies.dependency import SourceToTargetTGD
from repro.relational.formulas import Conjunction
from repro.relational.homomorphism import find_homomorphisms, has_homomorphism
from repro.relational.parser import parse_implication
from repro.relational.terms import GroundTerm, Variable
from repro.temporal.interval import Interval

__all__ = [
    "PastTGD",
    "satisfies_past_tgd",
    "satisfies_always_past",
    "PastChaseResult",
    "past_chase",
]


@dataclass(frozen=True)
class PastTGD:
    """``φ(x) → ♦⁻ ∃y ψ(x, y)``: the rhs held at some earlier snapshot."""

    lhs: Conjunction
    rhs: Conjunction
    existential_variables: tuple[Variable, ...] = ()
    name: str = ""

    def __post_init__(self) -> None:
        # Reuse the classical tgd's safety validation wholesale.
        SourceToTargetTGD(
            self.lhs, self.rhs, self.existential_variables, self.name
        )

    @property
    def exported_variables(self) -> tuple[Variable, ...]:
        rhs_vars = self.rhs.variable_set()
        return tuple(var for var in self.lhs.variables() if var in rhs_vars)

    @classmethod
    def parse(cls, text: str, name: str = "") -> "PastTGD":
        """Parse the same surface syntax as ordinary tgds."""
        skeleton = parse_implication(text)
        if skeleton.is_equality or skeleton.rhs is None:
            raise FormulaError(f"not a tgd shape: {text!r}")
        return cls(
            lhs=skeleton.lhs,
            rhs=skeleton.rhs,
            existential_variables=skeleton.existential_variables,
            name=name,
        )

    def __str__(self) -> str:
        return f"{self.lhs} → ♦⁻ {self.rhs}"


def _probe_points(source: AbstractInstance, target: AbstractInstance) -> list[int]:
    """All region representatives of both instances plus one tail point."""
    points = sorted(set(source.breakpoints()) | set(target.breakpoints()))
    return [*points, points[-1] + 1]


def satisfies_past_tgd(
    source: AbstractInstance,
    target: AbstractInstance,
    dependency: PastTGD,
) -> bool:
    """Does every lhs match have an rhs witness strictly in its past?

    Checked at every probe point ℓ; for each homomorphism of the lhs into
    ``source.snapshot(ℓ)`` some snapshot ``i < ℓ`` of the target must
    extend it to the rhs.  Probing earlier snapshots only needs the
    breakpoint representatives of the past (homogeneity).
    """
    probes = _probe_points(source, target)
    for point in probes:
        snapshot = source.snapshot(point)
        for assignment in find_homomorphisms(dependency.lhs, snapshot):
            exported = {
                var: assignment[var] for var in dependency.exported_variables
            }
            past_points = sorted({p for p in probes if p < point} | set(range(max(0, point - 1), point)))
            if not any(
                has_homomorphism(
                    dependency.rhs, target.snapshot(past), initial=exported
                )
                for past in past_points
            ):
                return False
    return True


def satisfies_always_past(
    source: AbstractInstance,
    target: AbstractInstance,
    dependency: PastTGD,
) -> bool:
    """The ■⁻ reading: the rhs must hold at *every* earlier snapshot."""
    probes = _probe_points(source, target)
    for point in probes:
        snapshot = source.snapshot(point)
        for assignment in find_homomorphisms(dependency.lhs, snapshot):
            exported = {
                var: assignment[var] for var in dependency.exported_variables
            }
            past_points = {p for p in probes if p < point} | set(
                range(max(0, point - 1), point)
            )
            for past in sorted(past_points):
                if not has_homomorphism(
                    dependency.rhs, target.snapshot(past), initial=exported
                ):
                    return False
    return True


@dataclass
class PastChaseResult:
    """Outcome of the ♦⁻ chase."""

    target: AbstractInstance
    failed: bool = False
    unsatisfiable_at_zero: tuple[str, ...] = ()
    witnesses_placed: int = 0

    @property
    def succeeded(self) -> bool:
        return not self.failed


def past_chase(
    source: AbstractInstance,
    dependencies: tuple[PastTGD, ...] | list[PastTGD],
    null_factory: NullFactory | None = None,
) -> PastChaseResult:
    """Materialize ♦⁻ witnesses: one per lhs match, placed just before the
    match's earliest firing.

    For each dependency and each distinct exported-variable binding, find
    the earliest time ℓ0 at which the lhs fires; place the rhs (with fresh
    per-snapshot nulls for existential variables) at ``[ℓ0 − 1, ℓ0)``.
    Firing at ℓ0 = 0 has an empty past: the chase fails.
    """
    nulls = null_factory if null_factory is not None else NullFactory()
    templates: list[TemplateFact] = []
    failures: list[str] = []
    witnesses = 0

    for dep_index, dependency in enumerate(dependencies, start=1):
        label = dependency.name or f"♦{dep_index}"
        earliest: dict[tuple, int] = {}
        for region in source.regions():
            snapshot = source.snapshot(region.start)
            for assignment in find_homomorphisms(dependency.lhs, snapshot):
                key = tuple(
                    assignment[var] for var in dependency.exported_variables
                )
                if key not in earliest or region.start < earliest[key]:
                    earliest[key] = region.start
        for key, first_fire in sorted(earliest.items(), key=lambda kv: str(kv[0])):
            if first_fire == 0:
                failures.append(label)
                continue
            stamp = Interval(first_fire - 1, first_fire)
            extension: dict[Variable, GroundTerm] = dict(
                zip(dependency.exported_variables, key, strict=True)
            )
            for variable in dependency.existential_variables:
                extension[variable] = nulls.fresh_annotated(stamp)
            for atom in dependency.rhs.atoms:
                witness = atom.instantiate(extension)
                templates.append(
                    TemplateFact(witness.relation, witness.args, stamp)
                )
            witnesses += 1

    return PastChaseResult(
        target=AbstractInstance(templates),
        failed=bool(failures),
        unsatisfiable_at_zero=tuple(failures),
        witnesses_placed=witnesses,
    )
