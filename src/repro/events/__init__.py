"""Event-sourced ingestion: compile live event logs into source deltas.

The subsystem has three layers, bottom-up:

- :mod:`repro.events.model` — the event records themselves
  (:class:`Event`) and the calendar → time-point bridge
  (:class:`TimeScale`).
- :mod:`repro.events.mapping` — per-setting schema mappings
  (:class:`EventMapping` built from :class:`EntityRule` /
  :class:`RelationshipRule`) that say which relations an entity or
  relationship type projects onto.
- :mod:`repro.events.log` — the :class:`EventLog` itself: atomic
  ingestion, ``snapshot_at`` compilation, ``delta_between`` diffs, and
  the :class:`FollowCursor` that feeds live consumers canonical
  :class:`~repro.deltas.SourceDelta` objects.

See ``docs/architecture.md`` §"Event-sourced ingestion (PR 10)" for the
design rationale and the invariants (permutation-invariant compilation,
atomic batches, coalesced output) the test suite pins down.
"""

from repro.events.log import EventLog, FollowCursor, IngestReport
from repro.events.mapping import EntityRule, EventMapping, RelationshipRule
from repro.events.model import EVENT_TYPES, Event, TimeScale

__all__ = [
    "EVENT_TYPES",
    "EntityRule",
    "Event",
    "EventLog",
    "EventMapping",
    "FollowCursor",
    "IngestReport",
    "RelationshipRule",
    "TimeScale",
]
