"""``EventMapping`` — how a setting reads an event stream.

An event log knows entities and relationships; an exchange setting
knows relations over constants.  The mapping is the bridge, declared
per setting: each :class:`EntityRule` projects the live state of one
entity type onto a source relation, each :class:`RelationshipRule`
projects one relationship type.  Compilation (in
:mod:`repro.events.log`) walks the resolved event sequence, maintains
entity state, and emits one interval-stamped fact per maximal span over
which a rule's projected values are constant — i.e. the compiled source
is coalesced by construction, matching the paper's assumption on
inputs.

Column templates are plain strings: for entities, ``"$id"`` takes the
entity id and any other name reads that field of the entity's current
state; for relationships, ``"$from"``/``"$to"`` take the two entity
ids and other names read relationship properties.  An entity segment
in which a referenced field is absent (or ``None``) simply emits no
fact for that rule — partial state is not an error, it is an entity
that is not yet visible through that relation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.errors import EventError
from repro.events.model import TimeScale

__all__ = ["EntityRule", "RelationshipRule", "EventMapping"]


def _check_columns(columns: tuple, what: str) -> tuple[str, ...]:
    if not columns:
        raise EventError(f"{what} must project at least one column")
    out = []
    for column in columns:
        if not isinstance(column, str) or not column:
            raise EventError(f"{what} column names must be non-empty strings")
        out.append(column)
    return tuple(out)


@dataclass(frozen=True)
class EntityRule:
    """Project the live state of one entity type onto a relation.

    Each column is ``"$id"`` or the name of a state field (as built up
    by ``created``/``updated`` payloads).
    """

    entity_type: str
    relation: str
    columns: tuple[str, ...]

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "columns",
            _check_columns(tuple(self.columns), f"entity rule for {self.relation!r}"),
        )

    def values(self, entity_id: str, state: Mapping[str, Any]):
        """The projected tuple, or ``None`` if a referenced field is unset."""
        row = []
        for column in self.columns:
            value = entity_id if column == "$id" else state.get(column)
            if value is None:
                return None
            row.append(value)
        return tuple(row)

    def to_json(self) -> dict[str, Any]:
        return {
            "type": self.entity_type,
            "relation": self.relation,
            "columns": list(self.columns),
        }


@dataclass(frozen=True)
class RelationshipRule:
    """Project one relationship type onto a relation.

    Columns are ``"$from"`` (the owning entity's id), ``"$to"`` (the
    other entity's id), or names of relationship properties from the
    ``relationship_added`` payload.
    """

    rel_type: str
    relation: str
    columns: tuple[str, ...]

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "columns",
            _check_columns(
                tuple(self.columns), f"relationship rule for {self.relation!r}"
            ),
        )

    def values(self, from_id: str, to_id: str, properties: Mapping[str, Any]):
        """The projected tuple, or ``None`` if a referenced property is unset."""
        row = []
        for column in self.columns:
            if column == "$from":
                value = from_id
            elif column == "$to":
                value = to_id
            else:
                value = properties.get(column)
            if value is None:
                return None
            row.append(value)
        return tuple(row)

    def to_json(self) -> dict[str, Any]:
        return {
            "type": self.rel_type,
            "relation": self.relation,
            "columns": list(self.columns),
        }


@dataclass(frozen=True)
class EventMapping:
    """A complete event-stream → source-schema mapping for one setting."""

    entities: tuple[EntityRule, ...] = ()
    relationships: tuple[RelationshipRule, ...] = ()
    scale: TimeScale = field(default_factory=TimeScale)

    def __post_init__(self) -> None:
        object.__setattr__(self, "entities", tuple(self.entities))
        object.__setattr__(self, "relationships", tuple(self.relationships))
        if not self.entities and not self.relationships:
            raise EventError("an event mapping needs at least one rule")

    def entity_rules(self, entity_type: str) -> tuple[EntityRule, ...]:
        return tuple(
            rule for rule in self.entities if rule.entity_type == entity_type
        )

    def relationship_rules(self, rel_type: str) -> tuple[RelationshipRule, ...]:
        return tuple(
            rule for rule in self.relationships if rule.rel_type == rel_type
        )

    # -- codec -------------------------------------------------------------

    def to_json(self) -> dict[str, Any]:
        """The canonical JSON form (rule order is preserved)."""
        return {
            "time": self.scale.to_json(),
            "entities": [rule.to_json() for rule in self.entities],
            "relationships": [rule.to_json() for rule in self.relationships],
        }

    @classmethod
    def from_json(cls, payload: Any) -> "EventMapping":
        if not isinstance(payload, Mapping):
            raise EventError(
                f"an event mapping must be a JSON object, got {payload!r}"
            )
        unknown = set(payload) - {"time", "entities", "relationships"}
        if unknown:
            raise EventError(
                f"unknown event-mapping field(s) {sorted(unknown)!r}"
            )
        scale = (
            TimeScale.from_json(payload["time"])
            if "time" in payload
            else TimeScale()
        )
        entities = []
        for index, entry in enumerate(payload.get("entities", [])):
            entities.append(
                _rule_from_json(entry, f"entities[{index}]", EntityRule)
            )
        relationships = []
        for index, entry in enumerate(payload.get("relationships", [])):
            relationships.append(
                _rule_from_json(entry, f"relationships[{index}]", RelationshipRule)
            )
        return cls(
            entities=tuple(entities),
            relationships=tuple(relationships),
            scale=scale,
        )


def _rule_from_json(entry: Any, where: str, rule_cls):
    if not isinstance(entry, Mapping):
        raise EventError(f"{where} must be a rule object")
    unknown = set(entry) - {"type", "relation", "columns"}
    if unknown:
        raise EventError(f"{where} has unknown field(s) {sorted(unknown)!r}")
    for key in ("type", "relation"):
        if not isinstance(entry.get(key), str) or not entry.get(key):
            raise EventError(f"{where} field {key!r} must be a non-empty string")
    columns = entry.get("columns")
    if not isinstance(columns, list):
        raise EventError(f"{where} field 'columns' must be a list of names")
    return rule_cls(entry["type"], entry["relation"], tuple(columns))
