"""``EventLog`` — ingest event streams, compile temporal source instances.

The log is the system of record: an id-keyed set of resolved
:class:`~repro.events.model.Event` objects.  Everything else is
*derived* by compilation — :meth:`EventLog.snapshot_at` replays the
events up to a time point into a full concrete source instance,
:meth:`EventLog.delta_between` diffs two such snapshots into a
:class:`~repro.deltas.SourceDelta`, and :meth:`EventLog.follow` hands
out a cursor that turns each ingested batch into the delta a live
consumer (a server session, an incremental chase) should apply next.

Because compilation is a pure function of the resolved event *set*,
the derived artifacts are independent of arrival order: ingesting a
log's lines in any permutation — late arrivals, interleaved sources,
corrections before the events they correct — yields byte-identical
snapshots.  Out-of-order arrival therefore needs no buffering beyond
the log itself; the re-sequencing happens inside compile, via
:meth:`Event.order_key`.

Events whose *history precondition* does not (yet) hold — an update or
delete of an entity nobody created, a removal of an inactive
relationship, a creation while the entity is alive — are **pending**:
compile skips them deterministically (the replay walk is in canonical
order, so which events are pending is itself a pure function of the
event set) and they take effect automatically once the missing history
arrives.  That is what makes genuinely late arrival safe: a
``relationship_removed`` delivered a batch before its
``relationship_added`` parks in the pending set and both land on the
next compile.  :meth:`EventLog.pending_events` lists what is still
parked — after a producer believes delivery is complete, a non-empty
pending set is how an inconsistent history shows up.

Ingestion is **atomic per batch**: the batch is parsed and the merged
log trial-compiled before anything is committed, so a batch containing
a malformed line (bad JSON, unknown event type, missing fields, a
timestamp before the epoch, a non-scalar value under a mapped column)
leaves the log exactly as it was.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Iterable, Iterator, Mapping

from repro.concrete.concrete_fact import concrete_fact
from repro.concrete.concrete_instance import ConcreteInstance
from repro.deltas import SourceDelta
from repro.errors import EventError
from repro.events.mapping import EventMapping
from repro.events.model import Event
from repro.temporal.interval import interval

__all__ = ["EventLog", "FollowCursor", "IngestReport"]


@dataclass(frozen=True)
class IngestReport:
    """What one :meth:`EventLog.ingest` batch did.

    ``accepted`` counts genuinely new event ids, ``corrections`` counts
    ids whose winning revision changed, ``duplicates`` counts
    re-deliveries and stale (superseded) revisions, and ``out_of_order``
    counts committed events that landed behind the log's pre-batch
    horizon — informational only, since compilation re-sequences.
    """

    accepted: int = 0
    corrections: int = 0
    duplicates: int = 0
    out_of_order: int = 0
    #: Events parked in the whole log after this batch (not per-batch):
    #: their history precondition does not hold yet.
    pending: int = 0

    def to_json(self) -> dict[str, int]:
        return {
            "accepted": self.accepted,
            "corrections": self.corrections,
            "duplicates": self.duplicates,
            "out_of_order": self.out_of_order,
            "pending": self.pending,
        }


def _normalize_batch(lines: object) -> list[object]:
    """Flatten the accepted ingest shapes into a list of raw records."""
    if isinstance(lines, (str, bytes)):
        text = lines.decode() if isinstance(lines, bytes) else lines
        return [line for line in text.splitlines() if line.strip()]
    if isinstance(lines, Mapping):
        raise EventError(
            "ingest() takes a batch of events; wrap a single event in a list"
        )
    try:
        return list(lines)  # type: ignore[arg-type]
    except TypeError:
        raise EventError(
            f"ingest() expects text or an iterable of events, got {lines!r}"
        ) from None


class EventLog:
    """A resolved event set plus the mapping that compiles it.

    The only mutable state is the id → winning-event map and a
    generation counter bumped on every committed batch; compiled
    instances are a per-generation cache, never part of the log's
    identity (and never pickled).
    """

    def __init__(self, mapping: EventMapping):
        if not isinstance(mapping, EventMapping):
            raise EventError(f"EventLog needs an EventMapping, got {mapping!r}")
        self.mapping = mapping
        self._events: dict[str, Event] = {}
        self._generation = 0
        self._compiled: dict[object, _Compiled] = {}

    # -- identity ----------------------------------------------------------

    def __getstate__(self) -> dict:
        # Identity only: the compile cache is derived state.
        return {
            "mapping": self.mapping,
            "events": dict(sorted(self._events.items())),
            "generation": self._generation,
        }

    def __setstate__(self, state: dict) -> None:
        self.mapping = state["mapping"]
        self._events = dict(state["events"])
        self._generation = state["generation"]
        self._compiled = {}

    @property
    def generation(self) -> int:
        """Bumped once per committed ingest batch."""
        return self._generation

    @property
    def horizon(self) -> int | None:
        """The latest time point any event mentions (``None`` when empty)."""
        if not self._events:
            return None
        return max(event.point for event in self._events.values())

    def events(self) -> tuple[Event, ...]:
        """The resolved log in its canonical replay order."""
        return tuple(sorted(self._events.values(), key=Event.order_key))

    def __len__(self) -> int:
        return len(self._events)

    # -- ingestion ---------------------------------------------------------

    def ingest(self, lines: object) -> IngestReport:
        """Merge a batch of events into the log (atomic; see module doc).

        *lines* may be a JSON-lines text blob, an iterable of line
        strings, an iterable of decoded event dicts, or already-built
        :class:`Event` objects — mixes are fine.
        """
        scale = self.mapping.scale
        staged = dict(self._events)
        accepted = corrections = duplicates = 0
        before = self.horizon
        landed: list[Event] = []
        for record in _normalize_batch(lines):
            if isinstance(record, Event):
                event = record
            elif isinstance(record, str):
                event = Event.parse_line(record, scale)
            else:
                event = Event.from_json(record, scale)
            existing = staged.get(event.id)
            if existing is None:
                staged[event.id] = event
                accepted += 1
                landed.append(event)
            elif event.revision == existing.revision and (
                event.content_key() == existing.content_key()
            ):
                duplicates += 1
            elif event.supersedes(existing):
                staged[event.id] = event
                corrections += 1
                landed.append(event)
            else:
                # A revision we have already superseded — e.g. the
                # original arriving after its correction.
                duplicates += 1
        out_of_order = (
            sum(1 for event in landed if event.point < before)
            if before is not None
            else 0
        )
        # Trial-compile before committing so a bad batch cannot poison
        # the log; the result seeds the new generation's cache.
        compiled = _compile(staged.values(), self.mapping, horizon=None)
        self._events = staged
        self._generation += 1
        self._compiled = {None: compiled}
        return IngestReport(
            accepted=accepted,
            corrections=corrections,
            duplicates=duplicates,
            out_of_order=out_of_order,
            pending=len(compiled.pending),
        )

    def ingest_lines(self, lines: Iterable[str]) -> IngestReport:
        """Alias of :meth:`ingest` for explicit JSON-lines input."""
        return self.ingest(lines)

    # -- derivation --------------------------------------------------------

    def _compile_at(self, horizon: int | None) -> "_Compiled":
        cached = self._compiled.get(horizon)
        if cached is None:
            events: Iterable[Event] = self._events.values()
            if horizon is not None:
                events = [e for e in self._events.values() if e.point <= horizon]
            cached = _compile(events, self.mapping, horizon=horizon)
            self._compiled[horizon] = cached
        return cached

    def pending_events(self) -> tuple[Event, ...]:
        """Events whose history precondition does not hold yet.

        Non-empty after a producer believes delivery is complete means
        the history really is inconsistent (see the module doc).
        """
        return self._compile_at(None).pending

    def snapshot_at(self, when: object = None) -> ConcreteInstance:
        """The full source instance as of time *when*.

        *when* is a time point or ISO-8601 timestamp; ``None`` means the
        log's horizon (everything).  Events after *when* are simply not
        replayed, so facts still open at *when* extend to infinity —
        the snapshot is "what the source says now", not "what it will
        have said".  Returns a fresh instance the caller may mutate.
        """
        horizon = None if when is None else self.mapping.scale.point(when)
        return self._compile_at(horizon).instance.copy()

    def delta_between(self, since: object, until: object = None) -> SourceDelta:
        """The canonical delta from ``snapshot_at(since)`` to
        ``snapshot_at(until)``."""
        return SourceDelta.between(
            self._compile_at(
                None if since is None else self.mapping.scale.point(since)
            ).instance,
            self._compile_at(
                None if until is None else self.mapping.scale.point(until)
            ).instance,
        )

    def follow(self) -> "FollowCursor":
        """A cursor yielding the deltas a live consumer should apply.

        The baseline is the *empty* instance, so the first
        :meth:`~FollowCursor.advance` delivers the whole current
        snapshot as additions — a consumer starting from an empty
        session needs no separate bootstrap path.
        """
        return FollowCursor(self)


class FollowCursor:
    """Tracks how much of an :class:`EventLog` a consumer has applied.

    ``advance()`` returns the :class:`SourceDelta` from the consumer's
    last-seen snapshot to the log's current one (empty if nothing was
    ingested since), and composing every delta a cursor ever returned
    reconstructs ``snapshot_at(now)`` exactly — that equivalence is what
    makes a chased server session fed by a cursor a true materialized
    view of the log.
    """

    def __init__(self, log: EventLog):
        self._log = log
        self._seen = ConcreteInstance()
        self._seen_generation: int | None = None

    @property
    def pending(self) -> bool:
        """Whether the log has advanced past this cursor."""
        return self._seen_generation != self._log.generation

    def peek(self) -> SourceDelta:
        """The pending delta, *without* marking it applied.

        Consumers whose apply step can fail (a chase that conflicts,
        say) peek first and :meth:`advance` only once the delta has
        actually landed — a failed apply then leaves the cursor pending
        and the next advance retries the same delta.
        """
        if self._seen_generation == self._log.generation:
            return SourceDelta.empty()
        return SourceDelta.between(self._seen, self._log._compile_at(None).instance)

    def advance(self) -> SourceDelta:
        """The delta from the last-applied snapshot to the current one."""
        generation = self._log.generation
        if generation == self._seen_generation:
            return SourceDelta.empty()
        current = self._log._compile_at(None).instance
        delta = SourceDelta.between(self._seen, current)
        self._seen = current.copy()
        self._seen_generation = generation
        return delta

    def __iter__(self) -> Iterator[SourceDelta]:
        """Drain: yield the pending delta, if any (non-blocking)."""
        if self.pending:
            delta = self.advance()
            if delta:
                yield delta


# -- compilation -----------------------------------------------------------


_SCALARS = (str, int, float, bool)


def _check_value(value: object, where: str) -> object:
    if not isinstance(value, _SCALARS):
        raise EventError(
            f"{where} projects non-scalar value {value!r}; event payload "
            "fields used in mapping columns must be strings or numbers"
        )
    return value


class _SpanTracker:
    """Emits one coalesced fact per maximal constant-valued span.

    Keyed by (rule index, subject); ``shift`` closes the open span when
    the projected tuple changes and transparently re-opens a span whose
    predecessor ended at the very point it starts with the same values —
    so delete-and-recreate with unchanged fields compiles to a single
    fact, keeping the source coalesced as the paper assumes.
    """

    def __init__(self) -> None:
        self._open: dict[tuple, tuple[tuple, int]] = {}
        self._closed: dict[tuple, list[tuple[int, int, tuple]]] = {}

    def shift(self, key: tuple, values: tuple | None, point: int) -> None:
        current = self._open.get(key)
        if current is not None:
            have, since = current
            if have == values:
                return
            del self._open[key]
            if since < point:
                self._closed.setdefault(key, []).append((since, point, have))
        if values is not None:
            start = point
            history = self._closed.get(key)
            if history and history[-1][1] == point and history[-1][2] == values:
                start = history.pop()[0]
            self._open[key] = (values, start)

    def emit(self, instance: ConcreteInstance, rules: list) -> None:
        for key, (values, since) in self._open.items():
            self._closed.setdefault(key, []).append((since, None, values))
        for key, spans in self._closed.items():
            relation = rules[key[0]].relation
            for since, until, values in spans:
                span = (
                    interval(since)
                    if until is None
                    else interval(since, until)
                )
                instance.add(concrete_fact(relation, *values, interval=span))


@dataclass(frozen=True)
class _Compiled:
    """One compilation result: the instance plus what got parked."""

    instance: ConcreteInstance
    pending: tuple[Event, ...]


def _compile(
    events: Iterable[Event], mapping: EventMapping, horizon: int | None
) -> _Compiled:
    """Replay *events* (already filtered to the horizon) into an instance.

    Events whose history precondition fails are collected as *pending*
    and skipped; the walk is in canonical order, so the pending set is a
    pure function of the event set (see the module doc).
    """
    ordered = sorted(events, key=Event.order_key)
    pending: list[Event] = []
    entity_rules = list(mapping.entities)
    rel_rules = list(mapping.relationships)
    entity_spans = _SpanTracker()
    rel_spans = _SpanTracker()
    state: dict[str, dict] = {}  # live entities only
    rel_props: dict[tuple[str, str, str], dict] = {}  # live relationships

    def project_entity(entity_id: str, point: int) -> None:
        current = state.get(entity_id)
        for index, rule in enumerate(entity_rules):
            values = None
            if current is not None and current.get("type") == rule.entity_type:
                row = rule.values(entity_id, current)
                if row is not None:
                    values = tuple(
                        _check_value(v, f"entity rule for {rule.relation!r}")
                        for v in row
                    )
            entity_spans.shift((index, entity_id), values, point)

    def project_rel(rel_key: tuple[str, str, str], point: int) -> None:
        properties = rel_props.get(rel_key)
        entity_id, rel_type, other = rel_key
        for index, rule in enumerate(rel_rules):
            values = None
            if properties is not None and rel_type == rule.rel_type:
                row = rule.values(entity_id, other, properties)
                if row is not None:
                    values = tuple(
                        _check_value(
                            v, f"relationship rule for {rule.relation!r}"
                        )
                        for v in row
                    )
            rel_spans.shift((index, rel_key), values, point)

    for event in ordered:
        entity_id = event.entity_id
        kind = event.event_type
        if kind == "created":
            if entity_id in state:
                pending.append(event)
                continue
            state[entity_id] = dict(event.payload)
            project_entity(entity_id, event.point)
        elif kind == "updated":
            if entity_id not in state:
                pending.append(event)
                continue
            state[entity_id].update(event.payload)
            project_entity(entity_id, event.point)
        elif kind == "deleted":
            if entity_id not in state:
                pending.append(event)
                continue
            del state[entity_id]
            project_entity(entity_id, event.point)
        elif kind == "relationship_added":
            payload = dict(event.payload)
            rel_key = (entity_id, payload.pop("type"), payload.pop("other"))
            # Re-adding an active relationship is a property change:
            # the tracker closes the old span only if the values moved.
            rel_props[rel_key] = payload
            project_rel(rel_key, event.point)
        elif kind == "relationship_removed":
            rel_key = (
                entity_id,
                event.payload["type"],
                event.payload["other"],
            )
            if rel_key not in rel_props:
                pending.append(event)
                continue
            del rel_props[rel_key]
            project_rel(rel_key, event.point)

    instance = ConcreteInstance()
    entity_spans.emit(instance, entity_rules)
    rel_spans.emit(instance, rel_rules)
    return _Compiled(instance=instance, pending=tuple(pending))
