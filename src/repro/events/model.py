"""The event model: immutable change records over a discrete time scale.

Follows the temporal-event-model shape: an event records *that*
something changed at a specific time — never why, or whether it
matters.  Five event types cover everything::

    created               entity now exists; payload is its initial state
    updated               payload holds the changed fields (partial merge)
    deleted               entity no longer exists
    relationship_added    payload names the relationship type + other entity
    relationship_removed  payload names which relationship ended

Events are **immutable**: a producer that got something wrong emits a
*correction* — a new event with the same ``id`` and a higher
``revision`` — rather than editing the old one.  Resolution (which
revision of an id wins) is a pure function of the event *set*, so any
arrival order yields the same resolved log (see
:meth:`Event.supersedes`).

Timestamps arrive as ISO-8601 strings (or bare integers already on the
time-point domain); a :class:`TimeScale` maps them onto the paper's
discrete ``N0`` time points.  Nothing here ever reads the wall clock —
"now" is always the log's own horizon.
"""

from __future__ import annotations

import datetime
import json
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.errors import EventError

__all__ = ["EVENT_TYPES", "RELATIONSHIP_TYPES", "Event", "TimeScale"]

#: The complete list.  Anything else is a variant of ``updated`` with a
#: different payload structure — by design, not by omission.
EVENT_TYPES = (
    "created",
    "updated",
    "deleted",
    "relationship_added",
    "relationship_removed",
)
RELATIONSHIP_TYPES = ("relationship_added", "relationship_removed")

_UNITS = {
    "seconds": datetime.timedelta(seconds=1),
    "minutes": datetime.timedelta(minutes=1),
    "hours": datetime.timedelta(hours=1),
    "days": datetime.timedelta(days=1),
}

#: Same-point application order: a deletion at point ``p`` applies
#: before a (re-)creation at ``p``, which applies before updates at
#: ``p`` — so "replace an entity at p" expressed as deleted+created
#: works, and an update issued together with a create lands on the new
#: state.  Relationship removals likewise apply before re-adds.
_TYPE_RANK = {
    "deleted": 0,
    "created": 1,
    "updated": 2,
    "relationship_removed": 0,
    "relationship_added": 1,
}


@dataclass(frozen=True)
class TimeScale:
    """Maps ISO-8601 timestamps onto the paper's ``N0`` time points.

    Point ``p`` covers the half-open wall interval
    ``[epoch + p·unit, epoch + (p+1)·unit)``.  Timestamps before the
    epoch have no point and raise :class:`EventError`; bare non-negative
    integers pass through as points unchanged, so synthetic logs can
    skip the calendar entirely.
    """

    epoch: str = "1970-01-01T00:00:00+00:00"
    unit: str = "days"

    def __post_init__(self) -> None:
        if self.unit not in _UNITS:
            raise EventError(
                f"unknown time unit {self.unit!r}: expected one of "
                f"{', '.join(sorted(_UNITS))}"
            )
        # Validate eagerly so a bad epoch fails at mapping-build time,
        # not on the first event.
        self._parse_instant(self.epoch, role="epoch")

    @staticmethod
    def _parse_instant(text: str, role: str) -> datetime.datetime:
        raw = text.strip()
        if raw.endswith(("Z", "z")):
            raw = raw[:-1] + "+00:00"
        try:
            instant = datetime.datetime.fromisoformat(raw)
        except ValueError as exc:
            raise EventError(f"cannot parse {role} {text!r}: {exc}") from exc
        if instant.tzinfo is None:
            # The event model mandates timezones ("use UTC if in doubt");
            # be forgiving on input but pin the meaning.
            instant = instant.replace(tzinfo=datetime.timezone.utc)
        return instant

    def point(self, timestamp: object) -> int:
        """The time point covering *timestamp* (int points pass through)."""
        if isinstance(timestamp, bool):
            raise EventError(f"timestamp must be an ISO-8601 string, got {timestamp!r}")
        if isinstance(timestamp, int):
            if timestamp < 0:
                raise EventError(f"integer time point must be >= 0, got {timestamp}")
            return timestamp
        if not isinstance(timestamp, str):
            raise EventError(
                f"timestamp must be an ISO-8601 string or a time point, "
                f"got {timestamp!r}"
            )
        instant = self._parse_instant(timestamp, role="timestamp")
        origin = self._parse_instant(self.epoch, role="epoch")
        delta = instant - origin
        point, _ = divmod(delta, _UNITS[self.unit])
        if point < 0:
            raise EventError(
                f"timestamp {timestamp!r} is before the mapping epoch "
                f"{self.epoch!r}"
            )
        return point

    def timestamp(self, point: int) -> str:
        """The ISO-8601 instant opening time point *point* (inverse of
        :meth:`point` up to sub-unit truncation) — used by the event
        generators to stamp synthetic logs."""
        if not isinstance(point, int) or isinstance(point, bool) or point < 0:
            raise EventError(f"time point must be a non-negative int, got {point!r}")
        origin = self._parse_instant(self.epoch, role="epoch")
        return (origin + point * _UNITS[self.unit]).isoformat()

    def to_json(self) -> dict[str, Any]:
        return {"epoch": self.epoch, "unit": self.unit}

    @classmethod
    def from_json(cls, payload: Any) -> "TimeScale":
        if not isinstance(payload, Mapping):
            raise EventError(
                f"time scale must be an object with 'epoch'/'unit', got {payload!r}"
            )
        unknown = set(payload) - {"epoch", "unit"}
        if unknown:
            raise EventError(f"unknown time-scale field(s) {sorted(unknown)!r}")
        return cls(
            epoch=payload.get("epoch", cls.epoch),
            unit=payload.get("unit", cls.unit),
        )


def _require_str(payload: Mapping, key: str, what: str) -> str:
    value = payload.get(key)
    if not isinstance(value, str) or not value:
        raise EventError(f"{what} field {key!r} must be a non-empty string")
    return value


@dataclass(frozen=True)
class Event:
    """One immutable, resolved change record.

    ``point`` is the event's position on the log's :class:`TimeScale`;
    the original ``timestamp`` string is retained for rendering.
    ``revision`` orders corrections sharing an ``id``; ``source`` and
    ``correlation_id`` are carried through untouched (the model does not
    interpret them — multi-source logs just merge on ingestion).
    """

    id: str
    entity_id: str
    event_type: str
    point: int
    timestamp: object
    payload: Mapping[str, Any] = field(default_factory=dict)
    revision: int = 0
    source: str | None = None
    correlation_id: str | None = None

    def __post_init__(self) -> None:
        if self.event_type not in EVENT_TYPES:
            raise EventError(
                f"unknown event type {self.event_type!r} in event "
                f"{self.id!r}: expected one of {', '.join(EVENT_TYPES)}"
            )
        if self.event_type in RELATIONSHIP_TYPES:
            _require_str(self.payload, "type", f"event {self.id!r} payload")
            _require_str(self.payload, "other", f"event {self.id!r} payload")
        elif self.event_type == "created":
            # The initial state must say what kind of entity this is —
            # the mapping layer matches rules on it.
            _require_str(self.payload, "type", f"event {self.id!r} payload")

    # -- parsing -----------------------------------------------------------

    @classmethod
    def from_json(cls, payload: Any, scale: TimeScale) -> "Event":
        """Decode one event object (one JSON-lines record)."""
        if not isinstance(payload, Mapping):
            raise EventError(f"an event must be a JSON object, got {payload!r}")
        event_id = _require_str(payload, "id", "event")
        entity_id = _require_str(payload, "entity_id", f"event {event_id!r}")
        event_type = _require_str(payload, "event_type", f"event {event_id!r}")
        if "timestamp" not in payload:
            raise EventError(f"event {event_id!r} lacks a timestamp")
        timestamp = payload["timestamp"]
        body = payload.get("payload", {})
        if not isinstance(body, Mapping):
            raise EventError(f"event {event_id!r} payload must be an object")
        revision = payload.get("revision", 0)
        if not isinstance(revision, int) or isinstance(revision, bool) or revision < 0:
            raise EventError(
                f"event {event_id!r} revision must be a non-negative int, "
                f"got {revision!r}"
            )
        for optional in ("source", "correlation_id"):
            value = payload.get(optional)
            if value is not None and not isinstance(value, str):
                raise EventError(
                    f"event {event_id!r} field {optional!r} must be a string"
                )
        known = {
            "id",
            "entity_id",
            "event_type",
            "timestamp",
            "payload",
            "revision",
            "source",
            "correlation_id",
            "evidence",
            "metadata",
        }
        unknown = set(payload) - known
        if unknown:
            raise EventError(
                f"event {event_id!r} has unknown field(s) {sorted(unknown)!r}"
            )
        return cls(
            id=event_id,
            entity_id=entity_id,
            event_type=event_type,
            point=scale.point(timestamp),
            timestamp=timestamp,
            payload=dict(body),
            revision=revision,
            source=payload.get("source"),
            correlation_id=payload.get("correlation_id"),
        )

    @classmethod
    def parse_line(cls, line: str, scale: TimeScale) -> "Event":
        """Decode one JSON-lines record from its raw text."""
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as exc:
            raise EventError(f"event line is not valid JSON: {exc}") from exc
        return cls.from_json(payload, scale)

    # -- resolution --------------------------------------------------------

    def content_key(self) -> str:
        """A canonical rendering of everything but the revision.

        Two deliveries of the same event compare equal through this key;
        it also breaks the (pathological) tie between two *different*
        corrections claiming the same revision, keeping resolution a
        pure function of the event set.
        """
        return json.dumps(
            {
                "entity_id": self.entity_id,
                "event_type": self.event_type,
                "point": self.point,
                "payload": dict(self.payload),
                "source": self.source,
                "correlation_id": self.correlation_id,
            },
            sort_keys=True,
            separators=(",", ":"),
            default=str,
        )

    def supersedes(self, other: "Event") -> bool:
        """``True`` iff *self* wins resolution against *other* (same id)."""
        return (self.revision, self.content_key()) > (
            other.revision,
            other.content_key(),
        )

    def order_key(self) -> tuple:
        """The resolved log's total order: time, entity, same-point rank, id.

        A pure function of the event's content, so any ingestion order
        sorts the resolved set identically — the permutation-invariance
        guarantee rests on this.
        """
        return (
            self.point,
            self.entity_id,
            _TYPE_RANK[self.event_type],
            self.id,
        )

    def __str__(self) -> str:
        return (
            f"{self.event_type}({self.entity_id!r} @ {self.point}"
            f"{', rev ' + str(self.revision) if self.revision else ''})"
        )
