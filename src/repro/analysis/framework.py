"""Core machinery of the invariant linter: findings, rules, suppressions.

The analyzer is a plain stdlib-``ast`` walk — no third-party parser, no
imports of the code under analysis (rules never execute repository
code, so the linter can run on a broken tree).  Each rule receives a
:class:`ModuleContext` holding the parsed tree, a parent map, the raw
source lines and the module's dotted name, and yields :class:`Finding`
objects; the driver applies ``repro: ignore[...]`` comment
suppressions and reports what survives.

Suppression syntax (checked by the driver itself)::

    frobnicate(x)  # repro: ignore[TDX002]: bootstrap path, validated above

    # repro: ignore[TDX003, TDX005]: applies to the next statement line
    emit(payload)

Every suppression must carry a one-line rationale after the closing
bracket — a suppression without one is itself reported (``TDX000``,
not suppressible), so reviewers always see *why* an invariant was
waived, right where it was waived.
"""

from __future__ import annotations

import ast
import dataclasses
import re
from pathlib import Path
from typing import Iterable, Iterator

__all__ = [
    "Finding",
    "Rule",
    "ModuleContext",
    "register",
    "all_rules",
    "analyze_file",
    "analyze_paths",
    "module_name_for",
    "META_RULE",
]

#: Reserved code for analyzer-integrity findings (malformed suppression,
#: missing rationale, unparseable file).  Never suppressible.
META_RULE = "TDX000"

_SUPPRESS_RE = re.compile(r"#\s*repro:\s*ignore\[(?P<codes>[^\]]*)\](?P<rest>.*)")
_CODE_RE = re.compile(r"^TDX\d{3}$")
_MARKER_RE = re.compile(r"#\s*repro:\s*(?P<name>[a-z][a-z0-9-]*)\b(?!\s*\[)")


@dataclasses.dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)


class Rule:
    """Base class for registered rules.

    Subclasses set ``code`` / ``name`` / ``summary`` and implement
    :meth:`check`.  Rules are stateless: one shared instance is run
    over every module.
    """

    code: str = ""
    name: str = ""
    summary: str = ""

    def check(self, ctx: "ModuleContext") -> Iterator[Finding]:
        raise NotImplementedError


_REGISTRY: dict[str, Rule] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not _CODE_RE.match(cls.code) or cls.code == META_RULE:
        raise ValueError(f"rule code must match TDXnnn (not {META_RULE}): {cls.code!r}")
    if cls.code in _REGISTRY:
        raise ValueError(f"duplicate rule code {cls.code}")
    _REGISTRY[cls.code] = cls()
    return cls


def all_rules() -> tuple[Rule, ...]:
    """Every registered rule, ordered by code."""
    _ensure_rules_loaded()
    return tuple(_REGISTRY[code] for code in sorted(_REGISTRY))


def _ensure_rules_loaded() -> None:
    # The rule module registers itself on import; imported lazily so
    # framework <-> rules stay an acyclic pair.
    if not _REGISTRY:
        from repro.analysis import rules  # noqa: F401  (import-for-effect)


class _Suppressions:
    """Per-line suppression table parsed from the raw source.

    A suppression comment on a code line covers that line; a standalone
    comment line covers the next non-blank, non-comment line.  Findings
    about the suppressions themselves (missing rationale, unknown rule
    code) are collected here and surface as {META_RULE}.
    """

    def __init__(self, lines: list[str], path: str):
        self.by_line: dict[int, set[str]] = {}
        self.meta_findings: list[Finding] = []
        pending: list[tuple[int, set[str]]] = []
        for number, text in enumerate(lines, start=1):
            stripped = text.strip()
            match = _SUPPRESS_RE.search(text)
            if match is None:
                if stripped and not stripped.startswith("#") and pending:
                    covered = self.by_line.setdefault(number, set())
                    for _, codes in pending:
                        covered.update(codes)
                    pending = []
                continue
            codes = {part.strip() for part in match.group("codes").split(",")}
            codes.discard("")
            bad = sorted(
                code for code in codes if not _CODE_RE.match(code) or code == META_RULE
            )
            if not codes or bad:
                self.meta_findings.append(
                    Finding(
                        META_RULE,
                        path,
                        number,
                        match.start() + 1,
                        "suppression lists no valid rule code "
                        f"(got {sorted(codes) or '[]'}); use e.g. "
                        "# repro: ignore[TDX001]: <rationale>",
                    )
                )
                continue
            rest = match.group("rest").strip()
            if not rest.startswith(":") or not rest.lstrip(": \t"):
                self.meta_findings.append(
                    Finding(
                        META_RULE,
                        path,
                        number,
                        match.start() + 1,
                        "suppression carries no rationale; every "
                        "repro: ignore[...] comment must end with "
                        "': <one-line reason>'",
                    )
                )
                continue
            if stripped.startswith("#"):
                pending.append((number, codes))
            else:
                self.by_line.setdefault(number, set()).update(codes)

    def covers(self, line: int, code: str) -> bool:
        return code in self.by_line.get(line, ())


def module_name_for(path: Path) -> str:
    """Dotted module name, anchored at the last ``repro`` path segment.

    ``src/repro/temporal/interval.py`` -> ``repro.temporal.interval``;
    files outside a ``repro`` tree (e.g. test fixtures) use their stem,
    so module-scoped exemptions never apply to them.
    """
    parts = list(path.parts)
    name_parts = [*parts[:-1], path.stem]
    if path.stem == "__init__":
        name_parts = parts[:-1]
    for index in range(len(name_parts) - 1, -1, -1):
        if name_parts[index] == "repro":
            return ".".join(name_parts[index:])
    return path.stem


@dataclasses.dataclass
class ModuleContext:
    """Everything a rule may inspect about one module."""

    path: Path
    module: str
    lines: list[str]
    tree: ast.Module
    parents: dict[ast.AST, ast.AST]

    @classmethod
    def parse(cls, path: Path, source: str) -> "ModuleContext":
        tree = ast.parse(source, filename=str(path))
        parents: dict[ast.AST, ast.AST] = {}
        for node in ast.walk(tree):
            for child in ast.iter_child_nodes(node):
                parents[child] = node
        return cls(
            path=path,
            module=module_name_for(path),
            lines=source.splitlines(),
            tree=tree,
            parents=parents,
        )

    # -- navigation -----------------------------------------------------
    def parent_chain(self, node: ast.AST) -> Iterator[ast.AST]:
        """Ancestors of *node*, innermost first."""
        current = self.parents.get(node)
        while current is not None:
            yield current
            current = self.parents.get(current)

    def enclosing_function(
        self, node: ast.AST
    ) -> ast.FunctionDef | ast.AsyncFunctionDef | None:
        for ancestor in self.parent_chain(node):
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return ancestor
        return None

    def iter_functions(
        self,
    ) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
        for node in ast.walk(self.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield node

    def iter_classes(self) -> Iterator[ast.ClassDef]:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.ClassDef):
                yield node

    # -- markers --------------------------------------------------------
    def markers_for(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
        """``# repro: <marker>`` annotations attached to a function.

        A marker counts when it sits on the ``def`` line, on a decorator
        line, or on a comment line directly above the first decorator /
        the ``def``.
        """
        first = min([node.lineno, *(d.lineno for d in node.decorator_list)])
        candidates = range(max(1, first - 1), node.lineno + 1)
        found: set[str] = set()
        for number in candidates:
            text = self.lines[number - 1] if number - 1 < len(self.lines) else ""
            for match in _MARKER_RE.finditer(text):
                if match.group("name") != "ignore":
                    found.add(match.group("name"))
        return found

    def finding(self, node: ast.AST, code: str, message: str) -> Finding:
        return Finding(
            rule=code,
            path=str(self.path),
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
        )


def analyze_file(path: Path, select: Iterable[str] | None = None) -> list[Finding]:
    """Run every (selected) rule over one file; suppressions applied."""
    _ensure_rules_loaded()
    path = Path(path)
    try:
        source = path.read_text(encoding="utf-8")
    except OSError as exc:
        return [Finding(META_RULE, str(path), 1, 1, f"cannot read file: {exc}")]
    try:
        ctx = ModuleContext.parse(path, source)
    except SyntaxError as exc:
        return [
            Finding(
                META_RULE,
                str(path),
                exc.lineno or 1,
                (exc.offset or 0) + 1,
                f"cannot parse file: {exc.msg}",
            )
        ]
    suppressions = _Suppressions(ctx.lines, str(path))
    wanted = set(select) if select is not None else None
    findings: list[Finding] = list(suppressions.meta_findings)
    for rule in all_rules():
        if wanted is not None and rule.code not in wanted:
            continue
        for item in rule.check(ctx):
            if not suppressions.covers(item.line, item.rule):
                findings.append(item)
    findings.sort(key=lambda f: (f.line, f.col, f.rule))
    return findings


def iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    """The .py files under *paths* (files or directories), sorted."""
    for path in paths:
        path = Path(path)
        if path.is_dir():
            yield from sorted(
                candidate
                for candidate in path.rglob("*.py")
                if "__pycache__" not in candidate.parts
                and not any(part.startswith(".") for part in candidate.parts)
            )
        else:
            yield path


def analyze_paths(
    paths: Iterable[Path], select: Iterable[str] | None = None
) -> tuple[list[Finding], int]:
    """Analyze every file under *paths*: (findings, files checked)."""
    findings: list[Finding] = []
    count = 0
    for file_path in iter_python_files(paths):
        count += 1
        findings.extend(analyze_file(file_path, select=select))
    return findings, count
