"""Command-line driver: ``python -m repro.analysis [paths...]``.

Exit codes: 0 clean, 1 findings reported, 2 usage error (argparse).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.analysis.framework import all_rules, analyze_paths


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Repo-specific invariant linter (stdlib-ast static analysis).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to analyze (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (json is one object with a findings array)",
    )
    parser.add_argument(
        "--select",
        action="append",
        metavar="CODE",
        help="run only these rule codes (repeatable, e.g. --select TDX001)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and exit",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.code}  {rule.name}: {rule.summary}")
        return 0
    if args.select:
        known = {rule.code for rule in all_rules()}
        unknown = sorted(set(args.select) - known)
        if unknown:
            print(f"unknown rule code(s): {', '.join(unknown)}", file=sys.stderr)
            return 2
    findings, checked = analyze_paths(
        [Path(p) for p in args.paths], select=args.select
    )
    if args.format == "json":
        print(
            json.dumps(
                {
                    "files_checked": checked,
                    "findings": [finding.to_dict() for finding in findings],
                },
                indent=2,
            )
        )
    else:
        for finding in findings:
            print(finding.render())
        label = "finding" if len(findings) == 1 else "findings"
        print(f"{len(findings)} {label} in {checked} files")
    return 1 if findings else 0


if __name__ == "__main__":
    raise SystemExit(main())
