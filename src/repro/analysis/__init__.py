"""Repo-specific invariant linter (``python -m repro.analysis``).

A stdlib-``ast`` static-analysis pass enforcing the contracts that the
temporal-data-exchange engine's determinism and cross-process replay
guarantees rest on: identity-only pickling of salted-hash caches
(TDX001), the trusted-constructor boundary (TDX002), sorted iteration
on ordered-output paths (TDX003), shared-memory create/close/unlink
pairing (TDX004), no salted hashes in persisted artifacts (TDX005) and
no wall-clock/RNG in the deterministic core (TDX006).  See
docs/architecture.md, "Invariant lint".
"""

from repro.analysis.framework import (
    META_RULE,
    Finding,
    ModuleContext,
    Rule,
    all_rules,
    analyze_file,
    analyze_paths,
    module_name_for,
    register,
)

__all__ = [
    "META_RULE",
    "Finding",
    "ModuleContext",
    "Rule",
    "all_rules",
    "analyze_file",
    "analyze_paths",
    "module_name_for",
    "register",
]
