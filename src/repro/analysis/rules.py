"""The initial rule set: six repo-specific invariant checks.

Each rule encodes a bug class this repository has actually hit (or
defended against by convention only); the architecture notes
(docs/architecture.md, "Invariant lint") tell each rule's war story.

* ``TDX001`` — pickle purity: frozen value types that cache salted
  state (``_hash`` / sort keys / lazy lifted forms) must define
  identity-only ``__getstate__``/``__setstate__``.
* ``TDX002`` — trusted-constructor boundary: validation-skipping
  constructors may only be called from the engine-module allowlist.
* ``TDX003`` — ordered-output discipline: functions marked
  ``# repro: ordered-output`` must not iterate sets in hash order.
* ``TDX004`` — shared-memory lifecycle: every created segment reaches
  ``close()`` on all paths and has exactly one ``unlink()`` owner.
* ``TDX005`` — no salted hashes in persisted artifacts or replay
  signatures.
* ``TDX006`` — no wall-clock / RNG in deterministic core modules.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.framework import Finding, ModuleContext, Rule, register

__all__ = [
    "PicklePurityRule",
    "TrustedConstructorRule",
    "OrderedOutputRule",
    "SharedMemoryLifecycleRule",
    "PersistedHashRule",
    "DeterministicCoreRule",
    "TRUSTED_CALLER_ALLOWLIST",
]


def _call_func_name(node: ast.Call) -> str | None:
    """``foo`` for ``foo(...)``, ``attr`` for ``x.attr(...)``."""
    if isinstance(node.func, ast.Name):
        return node.func.id
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    return None


def _contains_hash_call(node: ast.AST) -> ast.AST | None:
    """The first ``hash(...)`` / ``x.__hash__(...)`` call under *node*."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call):
            if isinstance(sub.func, ast.Name) and sub.func.id == "hash":
                return sub
            if isinstance(sub.func, ast.Attribute) and sub.func.attr == "__hash__":
                return sub
    return None


# ---------------------------------------------------------------------------
# TDX001 — pickle purity
# ---------------------------------------------------------------------------

#: Methods where a cache write is part of construction/restoration, not
#: a lazy mutation that could already have happened before pickling.
_INIT_LIKE = {"__init__", "__post_init__", "__setstate__"}


@register
class PicklePurityRule(Rule):
    """Cached-state classes need identity-only pickling.

    Cached hashes are PYTHONHASHSEED-salted (string hashes feed them),
    and lazily-built derived forms (sort keys, lifted conjunctions,
    search plans) are pure dead weight on the wire — a stale cached
    ``Interval`` hash silently defeated cross-process normalization
    replay in PR 5.  A class counts as *caching* when it declares a
    ``field(init=False, ...)`` dataclass attribute with a leading
    underscore, or writes such an attribute on ``self`` through
    ``object.__setattr__`` outside construction.  Such a class must
    define ``__getstate__`` and ``__setstate__`` (possibly on a
    same-module base class), and the ``__getstate__`` body must not
    mention any cache attribute.
    """

    code = "TDX001"
    name = "pickle-purity"
    summary = (
        "classes caching _hash/sort-key state must pickle identity fields only"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        class_map = {
            node.name: node
            for node in ctx.tree.body
            if isinstance(node, ast.ClassDef)
        }
        for cls in ctx.iter_classes():
            caches = self._cache_attrs(cls)
            if not caches:
                continue
            getstate = self._resolve_method(cls, "__getstate__", class_map)
            setstate = self._resolve_method(cls, "__setstate__", class_map)
            names = ", ".join(sorted(caches))
            if getstate is None or setstate is None:
                missing = " and ".join(
                    name
                    for name, node in (
                        ("__getstate__", getstate),
                        ("__setstate__", setstate),
                    )
                    if node is None
                )
                yield ctx.finding(
                    cls,
                    self.code,
                    f"class {cls.name} caches {names} but defines no {missing}; "
                    "cached hashes are PYTHONHASHSEED-salted and must not cross "
                    "a process boundary — pickle identity fields only",
                )
                continue
            leaked = sorted(self._mentions(getstate, caches))
            if leaked:
                yield ctx.finding(
                    getstate,
                    self.code,
                    f"{cls.name}.__getstate__ mentions cache attribute(s) "
                    f"{', '.join(leaked)}; identity fields only — a cached "
                    "salted hash shipped across processes poisons every "
                    "derived hash on the other side",
                )

    @staticmethod
    def _cache_attrs(cls: ast.ClassDef) -> set[str]:
        found: set[str] = set()
        for stmt in cls.body:
            target = None
            value = None
            if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                target, value = stmt.target.id, stmt.value
            elif (
                isinstance(stmt, ast.Assign)
                and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
            ):
                target, value = stmt.targets[0].id, stmt.value
            if (
                target
                and target.startswith("_")
                and not target.startswith("__")
                and isinstance(value, ast.Call)
                and _call_func_name(value) == "field"
            ):
                for keyword in value.keywords:
                    if (
                        keyword.arg == "init"
                        and isinstance(keyword.value, ast.Constant)
                        and keyword.value.value is False
                    ):
                        found.add(target)
        for method in cls.body:
            if not isinstance(method, ast.FunctionDef):
                continue
            if method.name in _INIT_LIKE:
                continue
            for node in ast.walk(method):
                if not isinstance(node, ast.Call) or len(node.args) < 2:
                    continue
                func = node.func
                if not (
                    isinstance(func, ast.Attribute)
                    and func.attr == "__setattr__"
                    and isinstance(func.value, ast.Name)
                    and func.value.id == "object"
                ):
                    continue
                receiver, attr = node.args[0], node.args[1]
                if (
                    isinstance(receiver, ast.Name)
                    and receiver.id == "self"
                    and isinstance(attr, ast.Constant)
                    and isinstance(attr.value, str)
                    and attr.value.startswith("_")
                    and not attr.value.startswith("__")
                ):
                    found.add(attr.value)
        return found

    @staticmethod
    def _resolve_method(
        cls: ast.ClassDef, name: str, class_map: dict[str, ast.ClassDef]
    ) -> ast.FunctionDef | None:
        seen: set[str] = set()
        stack = [cls]
        while stack:
            current = stack.pop()
            if current.name in seen:
                continue
            seen.add(current.name)
            for stmt in current.body:
                if isinstance(stmt, ast.FunctionDef) and stmt.name == name:
                    return stmt
            for base in current.bases:
                if isinstance(base, ast.Name) and base.id in class_map:
                    stack.append(class_map[base.id])
        return None

    @staticmethod
    def _mentions(func: ast.FunctionDef, caches: set[str]) -> set[str]:
        hits: set[str] = set()
        for node in ast.walk(func):
            if isinstance(node, ast.Attribute) and node.attr in caches:
                hits.add(node.attr)
            elif (
                isinstance(node, ast.Constant)
                and isinstance(node.value, str)
                and node.value in caches
            ):
                hits.add(node.value)
        return hits


# ---------------------------------------------------------------------------
# TDX002 — trusted-constructor boundary
# ---------------------------------------------------------------------------

#: Validation-skipping constructor *names* callable on any receiver.
_TRUSTED_ATTRS = {"trusted", "_from_canonical", "fragment_sorted", "split_at_sorted"}
#: ``.make(...)`` is trusted only on these class names (``make`` alone is
#: too generic to flag everywhere).
_TRUSTED_MAKE_OWNERS = {"Fact", "ConcreteFact", "Interval", "TemplateFact"}

#: Engine modules entitled to skip validation: they construct from
#: values whose invariants hold *by construction* (match bindings,
#: sweep-vetted cut points, wire-decoded canonical data).  Everything
#: else goes through the validating constructors.
TRUSTED_CALLER_ALLOWLIST = frozenset(
    {
        "repro.temporal.interval",
        "repro.temporal.interval_set",
        "repro.relational.fact",
        "repro.concrete.concrete_fact",
        "repro.concrete.normalization",
        "repro.concrete.cchase",
        "repro.chase.standard",
        "repro.chase.engine",
        "repro.chase.incremental",
        "repro.query.answers",
        "repro.query.eval",
        "repro.serialize.shard_codec",
        "repro.abstract_view.abstract_instance",
        "repro.abstract_view.abstract_chase",
    }
)


@register
class TrustedConstructorRule(Rule):
    """Trusted constructors stay behind the engine boundary.

    ``Fact.make`` / ``Interval.make`` / ``ConcreteFact.fragment_sorted``
    / ``IntervalSet._from_canonical`` skip the dataclass validation
    machinery; a call from outside the engine allowlist can build facts
    that violate the construction invariants every downstream pass
    assumes (ground args, annotation == stamp, canonical piece order).
    """

    code = "TDX002"
    name = "trusted-constructor-boundary"
    summary = "validation-skipping constructors callable only from engine modules"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if ctx.module in TRUSTED_CALLER_ALLOWLIST:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            rendered = None
            if func.attr in _TRUSTED_ATTRS:
                rendered = func.attr
            elif (
                func.attr == "make"
                and isinstance(func.value, ast.Name)
                and func.value.id in _TRUSTED_MAKE_OWNERS
            ):
                rendered = f"{func.value.id}.make"
            if rendered is None:
                continue
            yield ctx.finding(
                node,
                self.code,
                f"trusted constructor {rendered}() bypasses validation and is "
                f"only callable from the engine allowlist (module {ctx.module} "
                "is not on repro.analysis.rules.TRUSTED_CALLER_ALLOWLIST); use "
                "the validating constructor instead",
            )


# ---------------------------------------------------------------------------
# TDX003 — ordered-output discipline
# ---------------------------------------------------------------------------

#: Repo methods/properties known to return ``set``/``frozenset``.
_SET_RETURNING_METHODS = {"facts", "facts_of", "variable_set"}
_SET_ATTRS = {"templates"}
_SET_COMBINATORS = {"union", "intersection", "difference", "symmetric_difference"}
#: Consumers whose result does not depend on iteration order.
_ORDER_FREE_SINKS = {"sorted", "min", "max", "sum", "any", "all", "len", "set", "frozenset"}


@register
class OrderedOutputRule(Rule):
    """No hash-order iteration in ``# repro: ordered-output`` functions.

    Set iteration order is salted per process; in a function feeding a
    trace, a merge, or a wire/rendered encoding, it turns byte-identical
    outputs into luck (the PR 4 premerge regression was caught only by
    interleaved A/B benchmarking).  Mark such functions with
    ``# repro: ordered-output`` on or directly above the ``def``; inside
    them, everything this rule can prove to be a set must be iterated
    through ``sorted(...)`` (or consumed order-insensitively).
    """

    code = "TDX003"
    name = "ordered-output-discipline"
    summary = "marked output/merge/encode functions must not iterate sets bare"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for func in ctx.iter_functions():
            if "ordered-output" not in ctx.markers_for(func):
                continue
            set_locals = self._set_locals(func)
            for node in ast.walk(func):
                iterables: list[ast.expr] = []
                if isinstance(node, (ast.For, ast.AsyncFor)):
                    iterables.append(node.iter)
                elif isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
                    if self._order_free_context(ctx, node):
                        continue
                    iterables.extend(gen.iter for gen in node.generators)
                for expr in iterables:
                    if self._is_set_expr(expr, set_locals):
                        yield ctx.finding(
                            expr,
                            self.code,
                            "ordered-output function iterates a set "
                            f"({ast.unparse(expr)}) in salted hash order; wrap "
                            "it in sorted(...) or iterate a recorded order",
                        )

    @classmethod
    def _set_locals(cls, func: ast.AST) -> set[str]:
        known: set[str] = set()
        # Two passes so chained aliases (s2 = s1 | other) resolve.
        for _ in range(2):
            for node in ast.walk(func):
                if (
                    isinstance(node, ast.Assign)
                    and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)
                    and cls._is_set_expr(node.value, known)
                ):
                    known.add(node.targets[0].id)
        return known

    @classmethod
    def _is_set_expr(cls, node: ast.expr, set_locals: set[str]) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return node.id in set_locals
        if isinstance(node, ast.Attribute):
            return node.attr in _SET_ATTRS
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return cls._is_set_expr(node.left, set_locals) or cls._is_set_expr(
                node.right, set_locals
            )
        if isinstance(node, ast.Call):
            name = _call_func_name(node)
            if name in {"set", "frozenset"} and isinstance(node.func, ast.Name):
                return True
            if name in _SET_RETURNING_METHODS and isinstance(node.func, ast.Attribute):
                return True
            if (
                name in _SET_COMBINATORS
                and isinstance(node.func, ast.Attribute)
                and cls._is_set_expr(node.func.value, set_locals)
            ):
                return True
        return False

    @staticmethod
    def _order_free_context(ctx: ModuleContext, node: ast.AST) -> bool:
        parent = ctx.parents.get(node)
        return (
            isinstance(parent, ast.Call)
            and isinstance(parent.func, ast.Name)
            and parent.func.id in _ORDER_FREE_SINKS
            and node in parent.args
        )


# ---------------------------------------------------------------------------
# TDX004 — shared-memory lifecycle
# ---------------------------------------------------------------------------


@register
class SharedMemoryLifecycleRule(Rule):
    """Created segments must be closed and owned by exactly one unlink.

    A ``SharedMemory(create=True)`` that misses ``close()`` on an error
    path leaks a mapping; one that never reaches ``unlink()`` leaves a
    ``/dev/shm`` block behind after the process exits (the PR 7 leak
    class).  Within the creating function this rule requires a
    ``close()`` reached on every control-flow path (``finally`` or an
    unconditional statement) and at least one ``unlink()`` — a function
    that hands ownership to another process (or calls ``give_away``)
    documents that with a suppression naming the owner.
    """

    code = "TDX004"
    name = "shared-memory-lifecycle"
    summary = "SharedMemory(create=True) must reach close() and one unlink() owner"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for func in ctx.iter_functions():
            yield from self._check_function(ctx, func)

    def _check_function(
        self, ctx: ModuleContext, func: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> Iterator[Finding]:
        creations: list[tuple[str | None, ast.AST]] = []
        for node in ast.walk(func):
            if ctx.enclosing_function(node) is not func and node is not func:
                continue
            if isinstance(node, ast.Call) and self._is_create_call(node):
                parent = ctx.parents.get(node)
                if (
                    isinstance(parent, ast.Assign)
                    and len(parent.targets) == 1
                    and isinstance(parent.targets[0], ast.Name)
                ):
                    creations.append((parent.targets[0].id, parent))
                else:
                    creations.append((None, node))
        if not creations:
            return
        hands_off = any(
            isinstance(node, ast.Call) and _call_func_name(node) == "give_away"
            for node in ast.walk(func)
        )
        for name, creation in creations:
            if name is None:
                yield ctx.finding(
                    creation,
                    self.code,
                    "SharedMemory(create=True) result is not bound to a name; "
                    "the segment can never be close()d or unlink()ed",
                )
                continue
            closes = self._method_calls(ctx, func, name, "close")
            unlinks = self._method_calls(ctx, func, name, "unlink")
            creation_frames = self._frames(ctx, creation, func)
            if not closes:
                yield ctx.finding(
                    creation,
                    self.code,
                    f"shared-memory segment {name!r} is created but never "
                    "close()d in this function; unmap it on every path "
                    "(finally block)",
                )
            elif not any(
                self._always_runs(creation_frames, self._frames(ctx, node, func))
                for node in closes
            ):
                yield ctx.finding(
                    creation,
                    self.code,
                    f"close() of shared-memory segment {name!r} is not reached "
                    "on all control-flow paths; move it into a finally block",
                )
            if not unlinks and not hands_off:
                yield ctx.finding(
                    creation,
                    self.code,
                    f"shared-memory segment {name!r} has no unlink() owner in "
                    "this function; unlink it here, give_away() to a "
                    "documented owner, or suppress naming who unlinks",
                )
            elif (
                len(unlinks) > 1
                and sum(
                    self._always_runs(
                        creation_frames, self._frames(ctx, node, func)
                    )
                    for node in unlinks
                )
                > 1
            ):
                yield ctx.finding(
                    creation,
                    self.code,
                    f"shared-memory segment {name!r} is unlink()ed more than "
                    "once on the same path; exactly one owner may unlink",
                )

    @staticmethod
    def _is_create_call(node: ast.Call) -> bool:
        func = node.func
        named = (
            isinstance(func, ast.Name)
            and func.id == "SharedMemory"
            or isinstance(func, ast.Attribute)
            and func.attr == "SharedMemory"
        )
        if not named:
            return False
        return any(
            keyword.arg == "create"
            and isinstance(keyword.value, ast.Constant)
            and keyword.value.value is True
            for keyword in node.keywords
        )

    @staticmethod
    def _method_calls(
        ctx: ModuleContext, func: ast.AST, name: str, method: str
    ) -> list[ast.Call]:
        calls = []
        for node in ast.walk(func):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == method
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == name
            ):
                calls.append(node)
        return calls

    @staticmethod
    def _frames(
        ctx: ModuleContext, node: ast.AST, stop: ast.AST
    ) -> list[tuple[int, str]]:
        """Conditional frames between *stop* and *node*, outermost first.

        Each frame is ``(id(container), role)``; ``finally`` and ``with``
        roles always execute, everything else is conditional.
        """
        chain: list[tuple[int, str]] = []
        current = node
        for ancestor in ctx.parent_chain(node):
            role = None
            if isinstance(ancestor, ast.Try):
                if current in ancestor.finalbody:
                    role = "finally"
                elif current in ancestor.handlers or any(
                    current is h for h in ancestor.handlers
                ):
                    role = "except"
                else:
                    role = "try"
            elif isinstance(ancestor, ast.ExceptHandler):
                role = "except"
            elif isinstance(ancestor, ast.If):
                role = "if"
            elif isinstance(ancestor, (ast.For, ast.AsyncFor, ast.While)):
                role = "loop"
            elif isinstance(ancestor, (ast.With, ast.AsyncWith)):
                role = "with"
            elif isinstance(
                ancestor, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                role = "closure"
            if role is not None:
                chain.append((id(ancestor), role))
            current = ancestor
            if ancestor is stop:
                break
        chain.reverse()
        return chain

    @staticmethod
    def _always_runs(
        creation_frames: list[tuple[int, str]], frames: list[tuple[int, str]]
    ) -> bool:
        """Whether a statement executes whenever the creation did.

        Strip the frames shared with the creation; what remains must be
        unconditional (``finally``/``with`` only).
        """
        shared = 0
        for left, right in zip(creation_frames, frames, strict=False):
            if left != right:
                break
            shared += 1
        return all(role in ("finally", "with") for _, role in frames[shared:])


# ---------------------------------------------------------------------------
# TDX005 — no salted hashes in persisted artifacts
# ---------------------------------------------------------------------------

#: Modules whose output is persisted or crosses process boundaries.
_PERSIST_MODULES = frozenset(
    {
        "repro.serialize.shard_codec",
        "repro.serialize.digest",
        "repro.serialize.jsonio",
        "repro.serialize.csvio",
        "repro.serialize.render",
        "repro.serialize.shm",
    }
)
_SIGNATURE_SINKS = {"record", "recall"}
_SIGNATURE_NAME_HINTS = ("signature", "digest")


@register
class PersistedHashRule(Rule):
    """``hash()`` never flows into wire payloads or replay signatures.

    Python hashes are salted per process (PYTHONHASHSEED); a hash value
    inside a shard-codec payload or a ``ReplayLedger`` signature
    compares unequal on replay in another process, silently turning
    every replay into a cache miss (or worse, a false match under a
    fixed seed).  Use ``term_sort_key``/``sort_key()`` or a stable
    digest (``hashlib``) instead.
    """

    code = "TDX005"
    name = "no-salted-hash-persisted"
    summary = "hash() must not reach shard payloads or ReplayLedger signatures"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if ctx.module in _PERSIST_MODULES:
            for node in ast.walk(ctx.tree):
                found = (
                    _contains_hash_call(node)
                    if isinstance(node, ast.Call)
                    and _contains_hash_call(node) is node
                    else None
                )
                if found is not None:
                    yield ctx.finding(
                        node,
                        self.code,
                        "salted hash() computed in a persistence module "
                        f"({ctx.module}); persisted artifacts need "
                        "process-stable keys (term_sort_key / hashlib)",
                    )
            return
        for func in ctx.iter_functions():
            tainted = self._tainted_names(func)
            in_signature_fn = any(
                hint in func.name.lower() for hint in _SIGNATURE_NAME_HINTS
            )
            for node in ast.walk(func):
                if isinstance(node, ast.Call):
                    name = _call_func_name(node)
                    if name in _SIGNATURE_SINKS and isinstance(
                        node.func, ast.Attribute
                    ):
                        for arg in list(node.args) + [
                            kw.value for kw in node.keywords
                        ]:
                            if self._hashy(arg, tainted):
                                yield ctx.finding(
                                    arg,
                                    self.code,
                                    f"salted hash() flows into .{name}() — "
                                    "ledger signatures must be process-stable "
                                    "(frozensets of facts, sort keys, hashlib "
                                    "digests)",
                                )
                elif isinstance(node, ast.Assign):
                    targets = [
                        t.id for t in node.targets if isinstance(t, ast.Name)
                    ]
                    if any(
                        hint in t.lower()
                        for t in targets
                        for hint in _SIGNATURE_NAME_HINTS
                    ) and self._hashy(node.value, tainted):
                        yield ctx.finding(
                            node,
                            self.code,
                            "salted hash() assigned to a signature/digest "
                            "variable; signatures must be process-stable",
                        )
                elif (
                    isinstance(node, ast.Return)
                    and in_signature_fn
                    and node.value is not None
                    and self._hashy(node.value, tainted)
                ):
                    yield ctx.finding(
                        node,
                        self.code,
                        f"{func.name}() returns a salted hash(); replay "
                        "signatures must be process-stable",
                    )

    @staticmethod
    def _tainted_names(func: ast.AST) -> set[str]:
        tainted: set[str] = set()
        for node in ast.walk(func):
            if (
                isinstance(node, ast.Assign)
                and _contains_hash_call(node.value) is not None
            ):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        tainted.add(target.id)
        return tainted

    @staticmethod
    def _hashy(node: ast.AST, tainted: set[str]) -> bool:
        if _contains_hash_call(node) is not None:
            return True
        return any(
            isinstance(sub, ast.Name) and sub.id in tainted
            for sub in ast.walk(node)
        )


# ---------------------------------------------------------------------------
# TDX006 — deterministic core
# ---------------------------------------------------------------------------

#: Module prefixes exempt from the determinism ban (data generators and
#: scenario builders seed their RNGs explicitly and never run inside the
#: chase; benchmarks live outside ``src/`` entirely).
_NONDETERMINISM_EXEMPT_PREFIXES = ("repro.workloads",)
_BANNED_IMPORTS = {"random", "secrets"}
#: ``from time import ...`` names that read the wall clock.  Monotonic /
#: perf counters measure *durations* for ShardReport timings and stay
#: allowed: they never shape outputs.
_BANNED_TIME_NAMES = {"time", "time_ns", "ctime", "localtime", "gmtime"}
_BANNED_DATETIME_ATTRS = {"now", "utcnow", "today"}
_BANNED_MISC_CALLS = {("os", "urandom"), ("uuid", "uuid1"), ("uuid", "uuid4")}


@register
class DeterministicCoreRule(Rule):
    """Core modules never read the wall clock or an unseeded RNG.

    Byte-identical chase/replay outputs are the repository's core
    guarantee; any wall-clock or RNG read in the engine can leak into
    outputs, traces or replay decisions.  ``time.perf_counter`` /
    ``monotonic`` remain allowed (duration reporting only).  Workload
    generators (``repro.workloads``) are exempt — they own explicitly
    seeded ``random.Random`` instances.
    """

    code = "TDX006"
    name = "deterministic-core"
    summary = "no wall-clock/random in deterministic core modules"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if ctx.module.startswith(_NONDETERMINISM_EXEMPT_PREFIXES):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".")[0]
                    if root in _BANNED_IMPORTS:
                        yield ctx.finding(
                            node,
                            self.code,
                            f"import of {alias.name!r} in deterministic core "
                            f"module {ctx.module}; seed-free randomness breaks "
                            "byte-identical replay (workload generators are "
                            "exempt)",
                        )
            elif isinstance(node, ast.ImportFrom):
                root = (node.module or "").split(".")[0]
                if root in _BANNED_IMPORTS:
                    yield ctx.finding(
                        node,
                        self.code,
                        f"import from {node.module!r} in deterministic core "
                        f"module {ctx.module}",
                    )
                elif root == "time":
                    for alias in node.names:
                        if alias.name in _BANNED_TIME_NAMES:
                            yield ctx.finding(
                                node,
                                self.code,
                                f"wall-clock import time.{alias.name} in "
                                f"deterministic core module {ctx.module}; "
                                "perf_counter/monotonic are the allowed "
                                "duration clocks",
                            )
            elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                func = node.func
                owner = func.value.id if isinstance(func.value, ast.Name) else None
                if owner == "time" and func.attr in _BANNED_TIME_NAMES:
                    yield ctx.finding(
                        node,
                        self.code,
                        f"wall-clock read time.{func.attr}() in deterministic "
                        f"core module {ctx.module}; use perf_counter/monotonic "
                        "for durations",
                    )
                elif (
                    func.attr in _BANNED_DATETIME_ATTRS
                    and owner in {"datetime", "date"}
                ):
                    yield ctx.finding(
                        node,
                        self.code,
                        f"wall-clock read {owner}.{func.attr}() in "
                        f"deterministic core module {ctx.module}",
                    )
                elif (owner, func.attr) in _BANNED_MISC_CALLS:
                    yield ctx.finding(
                        node,
                        self.code,
                        f"nondeterministic call {owner}.{func.attr}() in "
                        f"deterministic core module {ctx.module}",
                    )
