"""End-to-end tests for event ingestion over HTTP (PR 10).

Everything here runs the real stack — daemon thread, persistent
``http.client`` connection, the versioned request envelope — because
the acceptance bar for the ingestion layer is wire-level: replaying an
event log through ``/sessions/{name}/events`` must leave the session
serving a target byte-identical to a from-scratch chase of the log's
final snapshot, with out-of-order batches and corrections in the mix.
"""

import json

import pytest

from repro.chase.incremental import chase_source_delta  # noqa: F401  (doc link)
from repro.concrete import c_chase
from repro.events import EventLog
from repro.serialize import concrete_instance_to_json, setting_to_json
from repro.server import ClientError, ServerClient, ServerThread
from repro.workloads import (
    exchange_setting_org,
    late_arrival_batches,
    org_event_mapping,
    org_event_stream,
)

ORG_SETTING_JSON = setting_to_json(exchange_setting_org())
MAPPING = org_event_mapping()
MAPPING_JSON = MAPPING.to_json()


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    spool = tmp_path_factory.mktemp("spool")
    with ServerThread(snapshot_dir=str(spool)) as thread:
        yield thread


@pytest.fixture
def client(server):
    with ServerClient(port=server.port) as connection:
        yield connection


def canonical(payload) -> str:
    return json.dumps(payload, sort_keys=True)


def hire(eid, who, dept, point, **extra):
    return {
        "id": eid,
        "entity_id": who,
        "event_type": "created",
        "timestamp": point,
        "payload": {"type": "employee", "dept": dept},
        **extra,
    }


class TestEventIngestion:
    def test_late_arrival_stream_serves_cold_chase_target(self, client):
        """The acceptance bar: out-of-order batches + corrections over
        real HTTP end in a target byte-identical to a from-scratch
        chase of ``snapshot_at(now)``."""
        events = org_event_stream(people=14, timeline=48, seed=99)
        batches = late_arrival_batches(events, batches=4, late_fraction=0.3, seed=5)
        client.create("feed", ORG_SETTING_JSON, {"facts": []})
        saw_out_of_order = corrections = 0
        for number, batch in enumerate(batches):
            result = client.events(
                "feed", batch, mapping=MAPPING_JSON if number == 0 else None
            )
            saw_out_of_order += result["ingest"]["out_of_order"]
            corrections += result["ingest"]["corrections"]
        assert saw_out_of_order > 0, "workload must exercise late arrival"
        assert corrections > 0, "workload must exercise corrections"

        log = EventLog(MAPPING)
        log.ingest(events)
        cold = c_chase(log.snapshot_at(None), exchange_setting_org())
        assert canonical(client.target("feed")) == canonical(
            concrete_instance_to_json(cold.target)
        )
        info = client.info("feed")
        assert info["event_log"]["events"] == len(log)
        client.evict("feed")

    def test_first_batch_requires_mapping(self, client):
        client.create("bare", ORG_SETTING_JSON, {"facts": []})
        with pytest.raises(ClientError) as excinfo:
            client.events("bare", [hire("e1", "p1", "d1", 0)])
        assert excinfo.value.status == 400
        client.evict("bare")

    def test_mapping_conflict_is_409(self, client):
        client.create("conflict", ORG_SETTING_JSON, {"facts": []})
        client.events("conflict", [hire("e1", "p1", "d1", 0)], mapping=MAPPING_JSON)
        other = json.loads(json.dumps(MAPPING_JSON))
        other["entities"][0]["relation"] = "Division"
        with pytest.raises(ClientError) as excinfo:
            client.events("conflict", [], mapping=other)
        assert excinfo.value.status == 409
        # Repeating the same mapping verbatim is fine.
        client.events("conflict", [], mapping=MAPPING_JSON)
        client.evict("conflict")

    def test_bad_batch_leaves_session_untouched(self, client):
        client.create("atomic", ORG_SETTING_JSON, {"facts": []})
        client.events("atomic", [hire("e1", "p1", "d1", 0)], mapping=MAPPING_JSON)
        before_source = client.source("atomic")
        before_target = client.target("atomic")
        with pytest.raises(ClientError) as excinfo:
            client.events("atomic", [hire("e2", "p2", "d1", 1), {"id": "broken"}])
        assert excinfo.value.status == 400
        assert client.source("atomic") == before_source
        assert client.target("atomic") == before_target
        # The failed batch is not half-remembered: redelivery works.
        result = client.events("atomic", [hire("e2", "p2", "d1", 1)])
        assert result["ingest"]["accepted"] == 1
        client.evict("atomic")

    def test_noop_batch_skips_the_chase(self, client):
        client.create("noop", ORG_SETTING_JSON, {"facts": []})
        batch = [hire("e1", "p1", "d1", 0)]
        client.events("noop", batch, mapping=MAPPING_JSON)
        result = client.events("noop", batch)  # pure redelivery
        assert result["ingest"]["duplicates"] == 1
        assert result["chased"] is False
        assert result["diff"] == {"add": [], "remove": []}
        client.evict("noop")

    def test_snapshot_load_round_trip_carries_log(self, client):
        client.create("persist", ORG_SETTING_JSON, {"facts": []})
        client.events("persist", [hire("e1", "p1", "d1", 0)], mapping=MAPPING_JSON)
        client.snapshot("persist")
        client.evict("persist")
        client.load("persist")
        # No mapping needed: the log came back with the session.
        result = client.events("persist", [hire("e2", "p2", "d2", 3)])
        assert result["ingest"]["accepted"] == 1
        assert result["applied"]["add"] == 1
        client.evict("persist")


class TestEnvelope:
    def test_unknown_version_is_400(self, client):
        client.create("env", ORG_SETTING_JSON, {"facts": []})
        with pytest.raises(ClientError) as excinfo:
            client.request(
                "POST",
                "/sessions/env/delta",
                {"v": 2, "delta": {"add": [], "remove": []}},
            )
        assert excinfo.value.status == 400
        with pytest.raises(ClientError) as excinfo:
            client.request("POST", "/sessions", {"v": "1", "name": "x"})
        assert excinfo.value.status == 400
        client.evict("env")

    def test_versioned_delta_uses_canonical_codec(self, client):
        client.create("codec", ORG_SETTING_JSON, {"facts": []})
        fact = {
            "relation": "Emp",
            "data": [
                {"kind": "const", "value": "p1"},
                {"kind": "const", "value": "d1"},
            ],
            "interval": "[0, 5)",
        }
        result = client.delta("codec", add=[fact])
        assert set(result["diff"]) == {"add", "remove"}
        client.evict("codec")

    def test_legacy_wire_shape_still_accepted(self, client):
        """Pre-envelope requests (no ``v``, top-level add/remove) keep
        working and get the legacy ``added``/``removed`` diff dialect."""
        client.create("legacy", ORG_SETTING_JSON, {"facts": []})
        fact = {
            "relation": "Emp",
            "data": [
                {"kind": "const", "value": "p9"},
                {"kind": "const", "value": "d9"},
            ],
            "interval": "[0, 5)",
        }
        result = client.request(
            "POST", "/sessions/legacy/delta", {"add": [fact], "remove": []}
        )
        assert set(result["diff"]) == {"added", "removed"}
        client.evict("legacy")


class TestIngestFollowCLI:
    def test_follow_streams_batches_into_session(
        self, server, client, tmp_path, capsys
    ):
        from repro.cli import main

        events = org_event_stream(people=8, timeline=32, seed=13)
        stream = tmp_path / "events.jsonl"
        stream.write_text("\n".join(json.dumps(item) for item in events) + "\n")
        mapping_path = tmp_path / "mapping.json"
        mapping_path.write_text(json.dumps(MAPPING_JSON))

        client.create("cli-feed", ORG_SETTING_JSON, {"facts": []})
        code = main(
            [
                "ingest",
                "--events",
                str(stream),
                "--event-mapping",
                str(mapping_path),
                "--follow",
                "--session",
                "cli-feed",
                "--port",
                str(server.port),
                "--batch",
                "16",
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "batch 0:" in captured.err and "pending" in captured.err
        info = json.loads(captured.out)
        assert info["event_log"]["events"] > 0

        log = EventLog(MAPPING)
        log.ingest(events)
        cold = c_chase(log.snapshot_at(None), exchange_setting_org())
        assert canonical(client.target("cli-feed")) == canonical(
            concrete_instance_to_json(cold.target)
        )
        client.evict("cli-feed")

    def test_follow_requires_session(self, tmp_path, capsys):
        from repro.cli import main

        stream = tmp_path / "events.jsonl"
        stream.write_text("")
        mapping_path = tmp_path / "mapping.json"
        mapping_path.write_text(json.dumps(MAPPING_JSON))
        with pytest.raises(SystemExit):
            main(
                [
                    "ingest",
                    "--events",
                    str(stream),
                    "--event-mapping",
                    str(mapping_path),
                    "--follow",
                ]
            )

    def test_unreachable_server_is_exit_2(self, tmp_path, capsys):
        from repro.cli import main

        stream = tmp_path / "events.jsonl"
        stream.write_text(json.dumps(hire("e1", "p1", "d1", 0)) + "\n")
        mapping_path = tmp_path / "mapping.json"
        mapping_path.write_text(json.dumps(MAPPING_JSON))
        code = main(
            [
                "ingest",
                "--events",
                str(stream),
                "--event-mapping",
                str(mapping_path),
                "--follow",
                "--session",
                "ghost",
                "--port",
                "1",
            ]
        )
        assert code == 2
        assert "cannot reach server" in capsys.readouterr().err


class TestClientReconnect:
    def test_survives_daemon_restart_on_same_port(self):
        """GETs ride out a daemon restart — both over a stale keep-alive
        socket and on the first request after the client reconnected."""
        import socket

        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()

        client = ServerClient(port=port)
        with ServerThread(port=port):
            assert client.healthz()["status"] == "ok"
        # Daemon restarted; the client still holds the dead socket.
        with ServerThread(port=port):
            assert client.healthz()["status"] == "ok"
            client.close()
            # Fresh-connection GET after the restart also works.
            assert client.sessions() == []
        client.close()

    def test_retry_budget_per_method(self, monkeypatch):
        """Fresh-connection failures retry idempotent GETs (up to three
        attempts) but never blind-retry a fresh POST."""
        client = ServerClient(port=1)  # nothing listens here
        calls = []

        def always_down(method, path, payload):
            calls.append(method)
            raise ConnectionError("down")

        monkeypatch.setattr(client, "_request_once", always_down)

        with pytest.raises(ConnectionError):
            client.request("GET", "/healthz")
        assert calls == ["GET", "GET", "GET"]

        calls.clear()
        with pytest.raises(ConnectionError):
            client.request("POST", "/sessions", {"name": "x"})
        assert calls == ["POST"]

        # A reused keep-alive socket may die for any method: one
        # reconnect attempt is allowed before a POST gives up.
        calls.clear()

        class DeadSocket:
            def close(self):
                pass

        client._connection = DeadSocket()
        with pytest.raises(ConnectionError):
            client.request("POST", "/sessions", {"name": "x"})
        assert calls == ["POST", "POST"]
        client._connection = None
